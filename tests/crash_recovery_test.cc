// Crash-injection recovery harness: a scripted interaction trace runs in a
// forked child that dies at randomized points — at op boundaries (simulated
// SIGKILL), mid-frame during a WAL write (torn write), or is survived by a
// log that then gets bit-flipped or truncated. Recovery must never crash,
// must drop exactly the damaged suffix, and must reproduce the reference
// engine's tables (including the provenance trace relation B), pixels, and
// stats bit-identically at the recovered prefix. Labeled `slow` in ctest.

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/dvms.h"
#include "durability/wal.h"
#include "parser/parser.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static int counter = 0;
    path_ = fs::path(::testing::TempDir()) /
            ("dvms_crash_" + tag + "_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  fs::path path_;
};

// DeVIL 4 linked brushing with a BACKWARD TRACE: the trace relation B is
// part of every fingerprint, so recovery is checked against lineage output
// as well as plain view state.
const char* kProgram = R"(
C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U
    RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
           (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);

SPLOT_POINTS = SELECT
    6 AS radius, 'gray' AS fill,
    linear_scale(Sales.revenue, 0, 100, 0, 200) AS center_x,
    linear_scale(Sales.profit, 0, 100, 0, 200) AS center_y
  FROM Sales;

BBOX = SELECT x AS x0, y AS y0, x + dx AS x1, y + dy AS y1
  FROM C ORDER BY t DESC LIMIT 1;

B = BACKWARD TRACE
  FROM SPLOT_POINTS@vnow-1 AS SP, BBOX
  WHERE in_rectangle(SP.center_x, SP.center_y,
                     BBOX.x0, BBOX.y0, BBOX.x1, BBOX.y1)
  TO Sales;

SPLOT_POINTS = SELECT
    6 AS radius, 'red' AS fill,
    linear_scale(B.revenue, 0, 100, 0, 200) AS center_x,
    linear_scale(B.profit, 0, 100, 0, 200) AS center_y
  FROM B
  UNION SELECT
    6 AS radius, 'gray' AS fill,
    linear_scale(S.revenue, 0, 100, 0, 200) AS center_x,
    linear_scale(S.profit, 0, 100, 0, 200) AS center_y
  FROM (Sales MINUS B) AS S;

P = render(SELECT * FROM SPLOT_POINTS);
)";

struct TraceOp {
  std::string label;
  std::function<Status(Dvms&)> run;
};

/// The scripted trace. Every op must succeed, and every op appends exactly
/// one log frame — so op count k maps 1:1 to LSN k and a kill after op k
/// must recover to the reference state after k ops.
std::vector<TraceOp> Workload() {
  std::vector<TraceOp> ops;
  auto push = [](InputEvent e) {
    return [e](Dvms& d) { return d.PushEvent(e); };
  };
  ops.push_back({"create", [](Dvms& d) {
                   return d.CreateBaseTable(
                       "Sales", Schema({{"productId", ValueType::kInt64},
                                        {"profit", ValueType::kDouble},
                                        {"revenue", ValueType::kDouble}}));
                 }});
  ops.push_back({"seed-rows", [](Dvms& d) {
                   return d.Insert(
                       "Sales",
                       {{Value::Int(1), Value::Double(10), Value::Double(10)},
                        {Value::Int(2), Value::Double(30), Value::Double(30)},
                        {Value::Int(3), Value::Double(60), Value::Double(60)},
                        {Value::Int(4), Value::Double(90), Value::Double(90)}});
                 }});
  ops.push_back({"program", [](Dvms& d) { return d.LoadProgram(kProgram); }});
  // Brush 1 selects the middle of the canvas.
  ops.push_back({"b1-down", push(InputEvent::MouseDown(0, 40, 40))});
  ops.push_back({"b1-move", push(InputEvent::MouseMove(1, 140, 140))});
  ops.push_back({"b1-up", push(InputEvent::MouseUp(2, 140, 140))});
  ops.push_back({"insert-5", [](Dvms& d) {
                   return d.Insert("Sales", {{Value::Int(5), Value::Double(45),
                                              Value::Double(45)}});
                 }});
  // Brush 2 overlaps the new point.
  ops.push_back({"b2-down", push(InputEvent::MouseDown(3, 20, 20))});
  ops.push_back({"b2-move", push(InputEvent::MouseMove(4, 100, 100))});
  ops.push_back({"b2-up", push(InputEvent::MouseUp(5, 100, 100))});
  ops.push_back({"delete-2", [](Dvms& d) {
                   auto n = d.Delete("Sales",
                                     ParseExpression("productId = 2").value());
                   return n.ok() ? Status::OK() : n.status();
                 }});
  ops.push_back({"undo", [](Dvms& d) { return d.Undo(); }});
  ops.push_back({"redo", [](Dvms& d) { return d.Redo(); }});
  // Brush 3, across the upper-right cluster.
  ops.push_back({"b3-down", push(InputEvent::MouseDown(6, 110, 110))});
  ops.push_back({"b3-move", push(InputEvent::MouseMove(7, 190, 190))});
  ops.push_back({"b3-up", push(InputEvent::MouseUp(8, 190, 190))});
  ops.push_back({"scale", [](Dvms& d) {
                   return d.CreateScale("sx", 0, 100, 0, 200);
                 }});
  ops.push_back({"insert-6", [](Dvms& d) {
                   return d.Insert("Sales", {{Value::Int(6), Value::Double(75),
                                              Value::Double(25)}});
                 }});
  // Brush 4 left open: kills inside an in-flight interaction exercise
  // matcher-state and @tnow recovery.
  ops.push_back({"b4-down", push(InputEvent::MouseDown(9, 10, 10))});
  ops.push_back({"b4-move", push(InputEvent::MouseMove(10, 60, 60))});
  return ops;
}

Dvms::Options BaseOptions(const std::string& data_dir,
                          size_t snapshot_interval) {
  Dvms::Options options;
  options.canvas_width = 200;
  options.canvas_height = 200;
  options.num_threads = 1;
  options.data_dir = data_dir;
  options.wal_fsync = "always";
  options.snapshot_interval = snapshot_interval;
  return options;
}

std::string Fingerprint(const Dvms& engine) {
  std::ostringstream out;
  for (const std::string& name : engine.catalog().Names()) {
    auto table = engine.GetTable(name);
    if (!table.ok()) continue;
    out << "== " << name << " ==\n";
    const Table* t = table.value();
    for (size_t c = 0; c < t->schema().num_columns(); ++c) {
      out << t->schema().column(c).name << "|";
    }
    out << "\n";
    for (size_t r = 0; r < t->num_rows(); ++r) {
      for (const Value& v : t->row(r)) out << v.ToString() << "|";
      out << "\n";
    }
  }
  return out.str();
}

/// ref[k] = state after the first k ops of an uninterrupted, in-memory run.
struct RefState {
  std::string fingerprint;
  PixelBuffer pixels{1, 1};
};

const std::vector<RefState>& Reference() {
  static const std::vector<RefState>* ref = [] {
    auto* states = new std::vector<RefState>;
    Dvms engine(BaseOptions("", 0));
    states->push_back({Fingerprint(engine), engine.pixels()});
    for (const TraceOp& op : Workload()) {
      Status st = op.run(engine);
      EXPECT_TRUE(st.ok()) << op.label << ": " << st.message();
      states->push_back({Fingerprint(engine), engine.pixels()});
    }
    return states;
  }();
  return *ref;
}

/// Child body: run the first `max_ops` trace ops against a durable engine,
/// then die without cleanup (_exit == the kernel's view of SIGKILL for file
/// state). `wal_byte_budget >= 0` arms the torn-write hook, which _exit(42)s
/// mid-write once the budget is spent.
[[noreturn]] void ChildRun(const std::string& dir, size_t max_ops,
                           int64_t wal_byte_budget, size_t snapshot_interval) {
  if (wal_byte_budget >= 0) {
    durability_testing::CrashAfterWalBytes(wal_byte_budget);
  }
  auto engine = std::make_unique<Dvms>(BaseOptions(dir, snapshot_interval));
  if (!engine->recovery_status().ok()) _exit(6);
  std::vector<TraceOp> ops = Workload();
  for (size_t i = 0; i < std::min(max_ops, ops.size()); ++i) {
    if (!ops[i].run(*engine).ok()) _exit(7);
  }
  _exit(0);
}

/// Forks the child and returns its exit code (asserting it wasn't signaled).
int RunChild(const std::string& dir, size_t max_ops, int64_t wal_byte_budget,
             size_t snapshot_interval) {
  fflush(nullptr);
  pid_t pid = fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) {
    ChildRun(dir, max_ops, wal_byte_budget, snapshot_interval);
  }
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status)) << "child crashed hard, status=" << status;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// Recovers the directory and checks the result is bit-identical to the
/// reference prefix at the recovered LSN. Returns that LSN.
uint64_t VerifyRecovery(const std::string& dir, size_t snapshot_interval,
                        std::optional<uint64_t> expect_lsn) {
  const std::vector<RefState>& ref = Reference();
  Dvms engine(BaseOptions(dir, snapshot_interval));
  EXPECT_TRUE(engine.recovery_status().ok())
      << engine.recovery_status().message();
  const DurabilityStats stats = engine.durability_stats();
  const uint64_t lsn = stats.recovered_lsn;
  EXPECT_LT(lsn, ref.size()) << "recovered past the scripted trace";
  if (expect_lsn.has_value()) EXPECT_EQ(lsn, *expect_lsn);
  if (lsn < ref.size()) {
    EXPECT_EQ(Fingerprint(engine), ref[lsn].fingerprint) << "lsn=" << lsn;
    EXPECT_TRUE(engine.pixels().Equals(ref[lsn].pixels)) << "lsn=" << lsn;
  }
  return lsn;
}

void CopyDir(const fs::path& from, const fs::path& to) {
  fs::remove_all(to);
  fs::copy(from, to, fs::copy_options::recursive);
}

std::vector<fs::path> FilesWithExt(const fs::path& dir,
                                   const std::string& ext) {
  std::vector<fs::path> files;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ext) files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

void FlipByte(const fs::path& file, uint64_t offset, uint8_t mask) {
  std::fstream f(file, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.good()) << file;
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.get(c);
  f.seekp(static_cast<std::streamoff>(offset));
  f.put(static_cast<char>(c ^ mask));
}

// ---------------------------------------------------------------------------

TEST(CrashRecoveryTest, OneOpOneFrame) {
  // The harness's LSN == op-count bookkeeping rests on this invariant.
  TempDir dir("frames");
  Dvms engine(BaseOptions(dir.str(), 0));
  const std::vector<TraceOp> ops = Workload();
  for (const TraceOp& op : ops) {
    ASSERT_TRUE(op.run(engine).ok()) << op.label;
  }
  EXPECT_EQ(engine.durability_stats().frames_appended, ops.size());
}

TEST(CrashRecoveryTest, KillAtEveryOpBoundary) {
  // fsync=always: an acknowledged op is durable, so a kill after op k must
  // recover to exactly the reference state after k ops.
  const size_t n = Workload().size();
  for (size_t snapshot_interval : {size_t{0}, size_t{5}}) {
    for (size_t k = 0; k <= n; ++k) {
      SCOPED_TRACE("interval=" + std::to_string(snapshot_interval) +
                   " kill_after_op=" + std::to_string(k));
      TempDir dir("kill");
      ASSERT_EQ(RunChild(dir.str(), k, -1, snapshot_interval), 0);
      VerifyRecovery(dir.str(), snapshot_interval, k);
    }
  }
}

TEST(CrashRecoveryTest, TornWritesAtRandomByteBudgets) {
  // The child dies mid-write (partial chunk + _exit, exit code 42): a torn
  // frame reaches disk. Recovery must truncate the torn tail and land on a
  // complete op prefix — never crash, never resurrect half a frame.
  Rng rng(20260806);
  const size_t n = Workload().size();
  size_t torn = 0;
  for (int trial = 0; trial < 14; ++trial) {
    const size_t snapshot_interval = (trial % 3 == 0) ? 5 : 0;
    const int64_t budget = rng.UniformInt(1, 2600);
    SCOPED_TRACE("trial=" + std::to_string(trial) +
                 " budget=" + std::to_string(budget) +
                 " interval=" + std::to_string(snapshot_interval));
    TempDir dir("torn");
    int code = RunChild(dir.str(), n, budget, snapshot_interval);
    ASSERT_TRUE(code == 42 || code == 0) << "exit code " << code;
    torn += (code == 42);
    uint64_t lsn = VerifyRecovery(dir.str(), snapshot_interval, std::nullopt);
    if (code == 0) EXPECT_EQ(lsn, n);  // budget never hit: full trace
  }
  EXPECT_GT(torn, 0u) << "no trial actually tore a write — widen budgets";
}

TEST(CrashRecoveryTest, RandomBitFlipsTruncateNeverCrash) {
  // A clean complete log, then one flipped bit somewhere in the frame
  // region: recovery must keep exactly the frames before the damage.
  TempDir pristine("flip_pristine");
  ASSERT_EQ(RunChild(pristine.str(), Workload().size(), -1, 0), 0);
  auto segments = FilesWithExt(pristine.path(), ".log");
  ASSERT_EQ(segments.size(), 1u);
  const uint64_t size = fs::file_size(segments[0]);
  ASSERT_GT(size, kWalHeaderBytes);

  Rng rng(7701);
  for (int trial = 0; trial < 16; ++trial) {
    const uint64_t offset = static_cast<uint64_t>(
        rng.UniformInt(kWalHeaderBytes, static_cast<int64_t>(size) - 1));
    const uint8_t mask = static_cast<uint8_t>(1u << rng.UniformInt(0, 7));
    SCOPED_TRACE("trial=" + std::to_string(trial) +
                 " offset=" + std::to_string(offset) +
                 " mask=" + std::to_string(mask));
    TempDir dir("flip");
    CopyDir(pristine.path(), dir.path());
    FlipByte(FilesWithExt(dir.path(), ".log")[0], offset, mask);
    uint64_t lsn = VerifyRecovery(dir.str(), 0, std::nullopt);
    // The flip damages one frame, so at least that op is lost.
    EXPECT_LT(lsn, Workload().size());
    // Recovery repaired the file on disk: a second recovery agrees.
    VerifyRecovery(dir.str(), 0, lsn);
  }
}

TEST(CrashRecoveryTest, RandomTruncationsRecoverThePrefix) {
  TempDir pristine("cut_pristine");
  ASSERT_EQ(RunChild(pristine.str(), Workload().size(), -1, 0), 0);
  auto segments = FilesWithExt(pristine.path(), ".log");
  ASSERT_EQ(segments.size(), 1u);
  const uint64_t size = fs::file_size(segments[0]);

  Rng rng(4242);
  for (int trial = 0; trial < 12; ++trial) {
    const uint64_t cut = static_cast<uint64_t>(
        rng.UniformInt(kWalHeaderBytes, static_cast<int64_t>(size) - 1));
    SCOPED_TRACE("trial=" + std::to_string(trial) +
                 " cut=" + std::to_string(cut));
    TempDir dir("cut");
    CopyDir(pristine.path(), dir.path());
    fs::resize_file(FilesWithExt(dir.path(), ".log")[0], cut);
    uint64_t lsn = VerifyRecovery(dir.str(), 0, std::nullopt);
    EXPECT_LT(lsn, Workload().size());
    VerifyRecovery(dir.str(), 0, lsn);
  }
}

TEST(CrashRecoveryTest, CorruptSnapshotFallsBackWithoutDataLoss) {
  // Snapshots are an optimization: damaging the newest one must cost
  // nothing — recovery falls back (older snapshot or pure log replay) and
  // still reproduces the full trace.
  Rng rng(9119);
  for (int trial = 0; trial < 4; ++trial) {
    SCOPED_TRACE("trial=" + std::to_string(trial));
    TempDir dir("snapcorrupt");
    ASSERT_EQ(RunChild(dir.str(), Workload().size(), -1, 4), 0);
    auto snaps = FilesWithExt(dir.path(), ".snap");
    ASSERT_FALSE(snaps.empty());
    const fs::path newest = snaps.back();
    const uint64_t size = fs::file_size(newest);
    FlipByte(newest, static_cast<uint64_t>(
                         rng.UniformInt(0, static_cast<int64_t>(size) - 1)),
             0x20);
    Dvms engine(BaseOptions(dir.str(), 4));
    ASSERT_TRUE(engine.recovery_status().ok())
        << engine.recovery_status().message();
    EXPECT_GE(engine.durability_stats().snapshots_discarded, 1u);
    EXPECT_EQ(engine.durability_stats().recovered_lsn, Workload().size());
    EXPECT_EQ(Fingerprint(engine), Reference().back().fingerprint);
    EXPECT_TRUE(engine.pixels().Equals(Reference().back().pixels));
  }
}

// ---------------------------------------------------------------------------
// Resource governor x durability
// ---------------------------------------------------------------------------

/// Child body for the governor tests: runs `clean_ops` trace ops on a
/// durable engine whose governor runs a step-controlled fake clock, then
/// expires the 50 ms deadline inside the next op. `resume_after_abort`
/// finishes the remaining trace (frozen clock again) before dying; either
/// way the child _exits without clean shutdown — the crash lands right on
/// (or after) the aborted request.
[[noreturn]] void GovernorChildRun(const std::string& dir, size_t clean_ops,
                                   bool resume_after_abort) {
  static std::atomic<int64_t> now{0};
  static std::atomic<int64_t> step{0};
  Dvms::Options options = BaseOptions(dir, 0);
  options.deadline_ms = 50;
  options.governor_clock = [] { return now.fetch_add(step.load()); };
  Dvms engine(options);
  if (!engine.recovery_status().ok()) _exit(6);
  std::vector<TraceOp> ops = Workload();
  if (clean_ops >= ops.size()) _exit(9);
  for (size_t i = 0; i < clean_ops; ++i) {
    if (!ops[i].run(engine).ok()) _exit(7);
  }
  // 20 ms per checkpoint: the third check inside the op crosses 50 ms.
  step.store(20'000);
  Status st = ops[clean_ops].run(engine);
  step.store(0);
  if (st.code() != StatusCode::kDeadlineExceeded) _exit(8);
  if (resume_after_abort) {
    for (size_t i = clean_ops; i < ops.size(); ++i) {
      if (!ops[i].run(engine).ok()) _exit(7);
    }
  }
  _exit(0);
}

int RunGovernorChild(const std::string& dir, size_t clean_ops,
                     bool resume_after_abort) {
  fflush(nullptr);
  pid_t pid = fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) GovernorChildRun(dir, clean_ops, resume_after_abort);
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status)) << "child crashed hard, status=" << status;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(CrashRecoveryTest, CrashAfterDeadlineAbortRecoversBitIdentically) {
  // A deadline-aborted mutation unit must leave NOTHING in the WAL: a
  // crash immediately after the abort recovers to exactly the k-op prefix,
  // bit-identical to the reference — the aborted request is invisible.
  for (size_t k : {size_t{3}, size_t{6}, size_t{10}, size_t{13}}) {
    SCOPED_TRACE("abort_at_op=" + std::to_string(k));
    TempDir dir("govabort");
    ASSERT_EQ(RunGovernorChild(dir.str(), k, /*resume_after_abort=*/false), 0);
    VerifyRecovery(dir.str(), 0, k);
  }
}

TEST(CrashRecoveryTest, AbortMidTraceLeavesNoHoleInTheLog) {
  // Abort op k, then retry it and finish the trace: the log must read as
  // an uninterrupted committed sequence (LSN == full op count) and recover
  // to the reference final state — no gap, no ghost frame, no reordering.
  for (size_t k : {size_t{4}, size_t{8}}) {
    SCOPED_TRACE("abort_at_op=" + std::to_string(k));
    TempDir dir("govhole");
    ASSERT_EQ(RunGovernorChild(dir.str(), k, /*resume_after_abort=*/true), 0);
    VerifyRecovery(dir.str(), 0, Workload().size());
  }
}

TEST(CrashRecoveryTest, RecoveredEngineKeepsWorkingAndStaysDurable) {
  // After a mid-trace kill, the recovered engine finishes the trace and a
  // second recovery reproduces the completed run.
  TempDir dir("resume");
  const std::vector<TraceOp> ops = Workload();
  const size_t k = ops.size() / 2;
  ASSERT_EQ(RunChild(dir.str(), k, -1, 5), 0);
  {
    Dvms engine(BaseOptions(dir.str(), 5));
    ASSERT_TRUE(engine.recovery_status().ok());
    for (size_t i = k; i < ops.size(); ++i) {
      ASSERT_TRUE(ops[i].run(engine).ok()) << ops[i].label;
    }
    EXPECT_EQ(Fingerprint(engine), Reference().back().fingerprint);
  }
  VerifyRecovery(dir.str(), 5, Workload().size());
}

}  // namespace
}  // namespace dvms
