#include "storage/catalog.h"
#include "storage/table.h"
#include "storage/versioned_table.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

Schema PointSchema() {
  return Schema({{"id", ValueType::kInt64}, {"x", ValueType::kDouble}});
}

TEST(TableTest, AppendValidates) {
  Table t(PointSchema());
  EXPECT_TRUE(t.Append({Value::Int(1), Value::Double(0.5)}).ok());
  EXPECT_FALSE(t.Append({Value::String("bad"), Value::Double(0.5)}).ok());
  EXPECT_FALSE(t.Append({Value::Int(1)}).ok());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, AtLooksUpByName) {
  Table t(PointSchema());
  ASSERT_TRUE(t.Append({Value::Int(7), Value::Double(1.5)}).ok());
  EXPECT_EQ(t.At(0, "id").value().int_value(), 7);
  EXPECT_DOUBLE_EQ(t.At(0, "X").value().double_value(), 1.5);
  EXPECT_FALSE(t.At(0, "nope").ok());
  EXPECT_FALSE(t.At(3, "id").ok());
}

TEST(TableTest, SortByColumns) {
  Table t(PointSchema());
  ASSERT_TRUE(t.Append({Value::Int(2), Value::Double(9.0)}).ok());
  ASSERT_TRUE(t.Append({Value::Int(1), Value::Double(5.0)}).ok());
  ASSERT_TRUE(t.Append({Value::Int(1), Value::Double(3.0)}).ok());
  t.SortByColumns({0, 1});
  EXPECT_EQ(t.row(0)[0].int_value(), 1);
  EXPECT_DOUBLE_EQ(t.row(0)[1].double_value(), 3.0);
  EXPECT_EQ(t.row(2)[0].int_value(), 2);
}

TEST(TableTest, SameContentsIsOrderInsensitive) {
  Table a(PointSchema()), b(PointSchema());
  ASSERT_TRUE(a.Append({Value::Int(1), Value::Double(1.0)}).ok());
  ASSERT_TRUE(a.Append({Value::Int(2), Value::Double(2.0)}).ok());
  ASSERT_TRUE(b.Append({Value::Int(2), Value::Double(2.0)}).ok());
  ASSERT_TRUE(b.Append({Value::Int(1), Value::Double(1.0)}).ok());
  EXPECT_TRUE(a.SameContents(b));
  ASSERT_TRUE(b.Append({Value::Int(1), Value::Double(1.0)}).ok());
  EXPECT_FALSE(a.SameContents(b));
}

TEST(TableTest, ToStringShowsHeaderAndRows) {
  Table t(PointSchema());
  ASSERT_TRUE(t.Append({Value::Int(1), Value::Double(2.0)}).ok());
  std::string s = t.ToString();
  EXPECT_NE(s.find("id"), std::string::npos);
  EXPECT_NE(s.find("2.0"), std::string::npos);
}

TEST(VersionedTableTest, CommitCreatesAddressableVersions) {
  VersionedTable vt("T", PointSchema());
  ASSERT_TRUE(vt.Append({Value::Int(1), Value::Double(1.0)}).ok());
  vt.Commit();
  ASSERT_TRUE(vt.Append({Value::Int(2), Value::Double(2.0)}).ok());
  vt.Commit();

  // @vnow-0 == current, @vnow-1 == last committed (2 rows),
  // @vnow-2 == one before (1 row), @vnow-3 == initial empty version.
  EXPECT_EQ(vt.Version(0).value()->num_rows(), 2u);
  EXPECT_EQ(vt.Version(1).value()->num_rows(), 2u);
  EXPECT_EQ(vt.Version(2).value()->num_rows(), 1u);
  EXPECT_EQ(vt.Version(3).value()->num_rows(), 0u);
  EXPECT_FALSE(vt.Version(4).ok());
}

TEST(VersionedTableTest, AbortRestoresTransactionBase) {
  VersionedTable vt("T", PointSchema());
  ASSERT_TRUE(vt.Append({Value::Int(1), Value::Double(1.0)}).ok());
  vt.Commit();

  vt.BeginTransaction();
  ASSERT_TRUE(vt.Append({Value::Int(2), Value::Double(2.0)}).ok());
  ASSERT_TRUE(vt.Append({Value::Int(3), Value::Double(3.0)}).ok());
  EXPECT_EQ(vt.current().num_rows(), 3u);
  vt.Abort();
  EXPECT_EQ(vt.current().num_rows(), 1u);
  EXPECT_FALSE(vt.in_transaction());
}

TEST(VersionedTableTest, StepVersionsWithinTransaction) {
  VersionedTable vt("T", PointSchema());
  vt.BeginTransaction();
  ASSERT_TRUE(vt.Append({Value::Int(1), Value::Double(1.0)}).ok());
  vt.RecordStep();
  ASSERT_TRUE(vt.Append({Value::Int(2), Value::Double(2.0)}).ok());
  vt.RecordStep();
  ASSERT_TRUE(vt.Append({Value::Int(3), Value::Double(3.0)}).ok());

  EXPECT_EQ(vt.StepVersion(0).value()->num_rows(), 3u);  // tnow-0: current
  EXPECT_EQ(vt.StepVersion(1).value()->num_rows(), 2u);
  EXPECT_EQ(vt.StepVersion(2).value()->num_rows(), 1u);
  // Beyond the recorded steps: the interaction-start snapshot (empty).
  EXPECT_EQ(vt.StepVersion(3).value()->num_rows(), 0u);

  vt.Commit();
  EXPECT_EQ(vt.num_steps(), 0u);
  // Outside a transaction @tnow-j addresses an empty relation.
  EXPECT_EQ(vt.StepVersion(1).value()->num_rows(), 0u);
}

TEST(VersionedTableTest, VnowDuringTransactionIsInteractionStart) {
  // DeVIL 3 reads SPLOT_POINTS@vnow-1: the committed state at the beginning
  // of the current interaction.
  VersionedTable vt("SPLOT_POINTS", PointSchema());
  ASSERT_TRUE(vt.Append({Value::Int(1), Value::Double(1.0)}).ok());
  vt.Commit();
  vt.BeginTransaction();
  vt.mutable_current().Clear();
  ASSERT_TRUE(vt.Append({Value::Int(99), Value::Double(9.0)}).ok());
  TablePtr v1 = vt.Version(1).value();
  EXPECT_EQ(v1->num_rows(), 1u);
  EXPECT_EQ(v1->row(0)[0].int_value(), 1);
}

TEST(VersionedTableTest, HistoryCapDiscardsOldest) {
  VersionedTable vt("T", PointSchema(), /*max_history=*/3);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(vt.Append({Value::Int(i), Value::Double(0.0)}).ok());
    vt.Commit();
  }
  EXPECT_EQ(vt.num_committed_versions(), 3u);
  EXPECT_TRUE(vt.Version(3).ok());
  EXPECT_FALSE(vt.Version(4).ok());
}

TEST(VersionedTableTest, SetCurrentChecksCompatibility) {
  VersionedTable vt("T", PointSchema());
  Table good(Schema({{"a", ValueType::kInt64}, {"b", ValueType::kDouble}}));
  ASSERT_TRUE(good.Append({Value::Int(5), Value::Double(1.0)}).ok());
  EXPECT_TRUE(vt.SetCurrent(good).ok());
  EXPECT_EQ(vt.current().num_rows(), 1u);
  // Column names keep the declared schema.
  EXPECT_TRUE(vt.current().schema().FindColumn("id").has_value());

  Table bad(Schema({{"a", ValueType::kString}}));
  EXPECT_FALSE(vt.SetCurrent(bad).ok());
}

TEST(CatalogTest, CreateGetDrop) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("Sales", PointSchema(), RelationKind::kBase).ok());
  EXPECT_FALSE(
      cat.CreateTable("SALES", PointSchema(), RelationKind::kBase).ok());
  EXPECT_TRUE(cat.Exists("sales"));
  EXPECT_EQ(cat.Get("Sales").value()->name(), "Sales");
  EXPECT_EQ(cat.KindOf("sales").value(), RelationKind::kBase);
  EXPECT_TRUE(cat.Drop("SaLeS").ok());
  EXPECT_FALSE(cat.Exists("sales"));
  EXPECT_FALSE(cat.Drop("sales").ok());
}

TEST(CatalogTest, NamesInCreationOrder) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("B", PointSchema(), RelationKind::kBase).ok());
  ASSERT_TRUE(cat.CreateTable("A", PointSchema(), RelationKind::kView).ok());
  auto names = cat.Names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "B");
  EXPECT_EQ(names[1], "A");
}

}  // namespace
}  // namespace dvms
