// Columnar storage coverage: ColumnVec encoding decisions, the
// row->columnar->row property round-trip, ragged-table preservation,
// multiset SameContents, the columnar snapshot codec (both directions plus
// row-store-era compatibility), and the vectorized-vs-row executor
// differential — bit-identical tables, pixels, and lineage at 1 and 4
// threads, including a full corpus replay through both paths.

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/dvms.h"
#include "durability/codec.h"
#include "parser/parser.h"
#include "parser/planner.h"
#include "query/binder.h"
#include "query/executor.h"
#include "storage/catalog.h"
#include "storage/column.h"
#include "storage/dict.h"
#include "storage/table.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

namespace fs = std::filesystem;

// ---- Bit-identical comparison (stronger than Value::Equals) --------------

bool BitIdentical(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kBool:
      return a.bool_value() == b.bool_value();
    case ValueType::kInt64:
      return a.int_value() == b.int_value();
    case ValueType::kDouble: {
      uint64_t ba, bb;
      double da = a.double_value(), db = b.double_value();
      std::memcpy(&ba, &da, sizeof(ba));
      std::memcpy(&bb, &db, sizeof(bb));
      return ba == bb;
    }
    case ValueType::kString:
      return a.string_value() == b.string_value();
  }
  return false;
}

::testing::AssertionResult RowsBitIdentical(const std::vector<Row>& a,
                                            const std::vector<Row>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "row counts differ: " << a.size() << " vs " << b.size();
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) {
      return ::testing::AssertionFailure() << "row " << i << " arity differs: "
                                           << a[i].size() << " vs "
                                           << b[i].size();
    }
    for (size_t c = 0; c < a[i].size(); ++c) {
      if (!BitIdentical(a[i][c], b[i][c])) {
        return ::testing::AssertionFailure()
               << "row " << i << " col " << c << " differs: "
               << a[i][c].ToString() << " vs " << b[i][c].ToString();
      }
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult TablesBitIdentical(const Table& a, const Table& b) {
  return RowsBitIdentical(a.rows(), b.rows());
}

::testing::AssertionResult PixelsBitIdentical(const PixelBuffer& a,
                                              const PixelBuffer& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    return ::testing::AssertionFailure() << "dimensions differ";
  }
  if (!a.Equals(b)) return ::testing::AssertionFailure() << "pixels differ";
  return ::testing::AssertionSuccess();
}

// Flips the process-wide vectorize default and restores it on scope exit,
// so a failing assertion can't leak the row-path default into later tests.
class ScopedVectorizeDefault {
 public:
  explicit ScopedVectorizeDefault(bool on) { exec::SetVectorizeDefault(on); }
  ~ScopedVectorizeDefault() { exec::SetVectorizeDefault(true); }
};

// ---- ColumnVec unit coverage ---------------------------------------------

TEST(ColumnVecTest, EncodingDecidedByFirstNonNullValue) {
  ColumnVec c;
  EXPECT_EQ(c.enc(), ColumnVec::Enc::kEmpty);
  c.AppendNull();
  EXPECT_EQ(c.enc(), ColumnVec::Enc::kEmpty);  // still undecided
  c.Append(Value::Int(7));
  EXPECT_EQ(c.enc(), ColumnVec::Enc::kInt64);
  c.Append(Value::Int(-3));
  c.AppendNull();
  ASSERT_EQ(c.size(), 4u);
  EXPECT_TRUE(c.IsNull(0));
  EXPECT_TRUE(BitIdentical(c.Get(1), Value::Int(7)));
  EXPECT_TRUE(BitIdentical(c.Get(2), Value::Int(-3)));
  EXPECT_TRUE(c.IsNull(3));
  EXPECT_EQ(c.null_count(), 2u);
}

TEST(ColumnVecTest, MixedTypesDemoteToVariantWithoutLosingBits) {
  ColumnVec c;
  c.Append(Value::Int(1));
  c.Append(Value::Double(2.5));  // second type demotes
  EXPECT_EQ(c.enc(), ColumnVec::Enc::kVariant);
  c.Append(Value::String("x"));
  c.AppendNull();
  EXPECT_TRUE(BitIdentical(c.Get(0), Value::Int(1)));
  EXPECT_TRUE(BitIdentical(c.Get(1), Value::Double(2.5)));
  EXPECT_TRUE(BitIdentical(c.Get(2), Value::String("x")));
  EXPECT_TRUE(c.IsNull(3));
}

TEST(ColumnVecTest, StringsInternToSharedDictionaryIds) {
  ColumnVec c;
  c.Append(Value::String("east"));
  c.Append(Value::String("west"));
  c.Append(Value::String("east"));
  ASSERT_EQ(c.enc(), ColumnVec::Enc::kDict);
  EXPECT_EQ(c.dict_ids()[0], c.dict_ids()[2]);  // dedup by id
  EXPECT_NE(c.dict_ids()[0], c.dict_ids()[1]);
  EXPECT_TRUE(c.CellEquals(0, c, 2));
  EXPECT_EQ(c.HashCell(0), c.HashCell(2));
  EXPECT_LT(c.CompareCells(0, c, 1), 0);  // "east" < "west" by bytes
}

TEST(ColumnVecTest, CompareCellsMirrorsValueCompareOnNaNAndBigInts) {
  ColumnVec ints, doubles;
  ints.Append(Value::Int((int64_t{1} << 53) + 1));
  doubles.Append(Value::Double(9007199254740992.0));  // 2^53
  doubles.Append(Value::Double(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_GT(ints.CompareCells(0, doubles, 0), 0);  // exact beyond 2^53
  EXPECT_LT(ints.CompareCells(0, doubles, 1), 0);  // NaN sorts last
  EXPECT_EQ(doubles.CompareCells(1, doubles, 1), 0);
}

// ---- Property test: random tables round-trip row->columnar->row ----------

Value RandomValue(Rng& rng, int type_roll) {
  if (rng.Bernoulli(0.12)) return Value::Null();
  switch (type_roll) {
    case 0: {  // int64, with boundary magnitudes
      int roll = rng.UniformInt(0, 9);
      if (roll == 0)
        return Value::Int(std::numeric_limits<int64_t>::max() -
                          rng.UniformInt(0, 2));
      if (roll == 1)
        return Value::Int(std::numeric_limits<int64_t>::min() +
                          rng.UniformInt(0, 2));
      if (roll == 2) return Value::Int((int64_t{1} << 53) + rng.UniformInt(-2, 2));
      return Value::Int(rng.UniformInt(-1000, 1000));
    }
    case 1: {  // double, with NaN / -0.0 / huge magnitudes
      int roll = rng.UniformInt(0, 9);
      if (roll == 0)
        return Value::Double(std::numeric_limits<double>::quiet_NaN());
      if (roll == 1) return Value::Double(-0.0);
      if (roll == 2) return Value::Double(rng.Uniform(-1, 1) * 1e300);
      return Value::Double(rng.Uniform(-1000, 1000));
    }
    case 2:
      return Value::Bool(rng.Bernoulli(0.5));
    default: {  // string, low cardinality plus empties
      static const char* kPool[] = {"", "east", "west", "north", "south",
                                    "a much longer string payload"};
      return Value::String(kPool[rng.UniformInt(0, 5)]);
    }
  }
}

TEST(TableColumnarTest, RandomTablesRoundTripThroughColumns) {
  Rng rng(42);
  for (int trial = 0; trial < 40; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const int ncols = rng.UniformInt(1, 5);
    std::vector<Column> defs;
    std::vector<int> type_rolls;
    for (int c = 0; c < ncols; ++c) {
      // type_roll 4 = per-cell random type: exercises variant demotion.
      int roll = rng.UniformInt(0, 4);
      type_rolls.push_back(roll);
      ValueType declared =
          roll == 0 ? ValueType::kInt64
                    : (roll == 1 ? ValueType::kDouble
                                 : (roll == 2 ? ValueType::kBool
                                              : ValueType::kString));
      defs.push_back({"c" + std::to_string(c), declared});
    }
    const int nrows = rng.UniformInt(0, 200);
    std::vector<Row> source;
    for (int r = 0; r < nrows; ++r) {
      Row row;
      for (int c = 0; c < ncols; ++c) {
        int roll = type_rolls[c] == 4 ? rng.UniformInt(0, 3) : type_rolls[c];
        row.push_back(RandomValue(rng, roll));
      }
      source.push_back(row);
    }

    // Row-by-row append.
    Table t{Schema(defs)};
    for (const Row& r : source) t.AppendUnchecked(r);
    ASSERT_EQ(t.num_rows(), source.size());
    EXPECT_TRUE(RowsBitIdentical(t.rows(), source));
    for (size_t r = 0; r < source.size(); ++r) {
      for (int c = 0; c < ncols; ++c) {
        ASSERT_TRUE(BitIdentical(t.ValueAt(r, c), source[r][c]))
            << "ValueAt(" << r << ", " << c << ")";
      }
    }

    // Bulk-constructed copy matches too.
    Table t2(Schema(defs), source);
    EXPECT_TRUE(RowsBitIdentical(t2.rows(), source));

    // Typed gather of a random subset preserves bits in subset order.
    std::vector<size_t> pick;
    for (size_t r = 0; r < source.size(); ++r) {
      if (rng.Bernoulli(0.4)) pick.push_back(r);
    }
    Table gathered{Schema(defs)};
    gathered.AppendGather(t, pick);
    std::vector<Row> expected;
    for (size_t r : pick) expected.push_back(source[r]);
    EXPECT_TRUE(RowsBitIdentical(gathered.rows(), expected));

    // Codec round-trip: encode (columnar or legacy-forced) and decode.
    BinaryWriter w;
    EncodeTable(t, &w);
    BinaryReader r(w.data());
    auto decoded = DecodeTable(&r);
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    EXPECT_TRUE(RowsBitIdentical(decoded.value().rows(), source));
    EXPECT_TRUE(t.SameContents(decoded.value()));
  }
}

TEST(TableColumnarTest, RaggedRowsPreserveOriginalArity) {
  Table t(Schema({{"a", ValueType::kInt64}, {"b", ValueType::kString}}));
  t.AppendUnchecked({Value::Int(1)});                                // short
  t.AppendUnchecked({Value::Int(2), Value::String("x")});            // exact
  t.AppendUnchecked({Value::Int(3), Value::String("y"), Value::Bool(true)});
  EXPECT_TRUE(t.IsRagged());
  ASSERT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.row(0).size(), 1u);
  EXPECT_EQ(t.row(1).size(), 2u);
  EXPECT_EQ(t.row(2).size(), 3u);
  EXPECT_TRUE(BitIdentical(t.row(2)[2], Value::Bool(true)));
  // Ragged tables take the legacy snapshot format; the round-trip still
  // reproduces every row at its original arity.
  BinaryWriter w;
  EncodeTable(t, &w);
  BinaryReader r(w.data());
  auto decoded = DecodeTable(&r);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_TRUE(RowsBitIdentical(decoded.value().rows(), t.rows()));
}

TEST(TableColumnarTest, SameContentsIsMultisetEquality) {
  Schema schema({{"k", ValueType::kInt64}, {"s", ValueType::kString}});
  std::vector<Row> rows = {{Value::Int(1), Value::String("a")},
                           {Value::Int(2), Value::String("b")},
                           {Value::Int(2), Value::String("b")},
                           {Value::Int(3), Value::String("c")}};
  Table a(schema, rows);
  std::reverse(rows.begin(), rows.end());
  Table b(schema, rows);
  EXPECT_TRUE(a.SameContents(b));  // order-insensitive
  EXPECT_TRUE(b.SameContents(a));

  // Multiplicity matters: swap one duplicate for an extra distinct row.
  Table c(schema, {{Value::Int(1), Value::String("a")},
                   {Value::Int(2), Value::String("b")},
                   {Value::Int(3), Value::String("c")},
                   {Value::Int(3), Value::String("c")}});
  EXPECT_FALSE(a.SameContents(c));
  EXPECT_FALSE(c.SameContents(a));

  // Cross-type numeric cells compare equal, as with row-based compare.
  Table d(Schema({{"v", ValueType::kDouble}}), {{Value::Int(3)}});
  Table e(Schema({{"v", ValueType::kDouble}}), {{Value::Double(3.0)}});
  EXPECT_TRUE(d.SameContents(e));

  // ...but not beyond 2^53, where the comparison is exact.
  Table f(Schema({{"v", ValueType::kDouble}}),
          {{Value::Int((int64_t{1} << 53) + 1)}});
  Table g(Schema({{"v", ValueType::kDouble}}),
          {{Value::Double(9007199254740992.0)}});
  EXPECT_FALSE(f.SameContents(g));
}

// ---- Snapshot codec ------------------------------------------------------

Table MakeTypedTable(size_t n) {
  Table t(Schema({{"id", ValueType::kInt64},
                  {"price", ValueType::kDouble},
                  {"region", ValueType::kString},
                  {"flag", ValueType::kBool}}));
  const char* regions[] = {"east", "west", "north", "south"};
  Rng rng(5);
  for (size_t i = 0; i < n; ++i) {
    Row row;
    row.push_back(Value::Int(static_cast<int64_t>(i)));
    row.push_back(rng.Bernoulli(0.05) ? Value::Null()
                                      : Value::Double(rng.Uniform(0, 100)));
    row.push_back(Value::String(regions[rng.UniformInt(0, 3)]));
    row.push_back(Value::Bool(rng.Bernoulli(0.5)));
    t.AppendUnchecked(row);
  }
  return t;
}

TEST(ColumnarCodecTest, ColumnarAndLegacyFormatsBothDecode) {
  Table t = MakeTypedTable(500);
  BinaryWriter cw;
  EncodeTable(t, &cw);
  BinaryWriter lw;
  EncodeTableLegacy(t, &lw);
  EXPECT_NE(cw.data(), lw.data());
  for (const std::string& bytes : {cw.data(), lw.data()}) {
    BinaryReader r(bytes);
    auto decoded = DecodeTable(&r);
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    EXPECT_TRUE(r.AtEnd());
    EXPECT_TRUE(TablesBitIdentical(decoded.value(), t));
  }
}

TEST(ColumnarCodecTest, ColumnarSnapshotIsSmallerThanRowStore) {
  Table t = MakeTypedTable(10000);
  BinaryWriter cw;
  EncodeTable(t, &cw);
  BinaryWriter lw;
  EncodeTableLegacy(t, &lw);
  // The legacy format tags every cell and re-spells every string; the
  // columnar format writes typed payloads and a local dictionary. Require
  // a real reduction, not a rounding artifact.
  EXPECT_LT(cw.size(), lw.size() * 3 / 4)
      << "columnar " << cw.size() << " bytes vs legacy " << lw.size();
}

TEST(ColumnarCodecTest, BytesIndependentOfProcessDictionaryHistory) {
  Table t1 = MakeTypedTable(200);
  BinaryWriter w1;
  EncodeTable(t1, &w1);
  // Pollute the global dictionary so a rebuilt table interns to different
  // global ids; the local-remap encoding must produce identical bytes.
  for (int i = 0; i < 100; ++i) {
    strdict::Intern("codec_noise_" + std::to_string(i));
  }
  Table t2 = MakeTypedTable(200);
  BinaryWriter w2;
  EncodeTable(t2, &w2);
  EXPECT_EQ(w1.data(), w2.data());
}

TEST(ColumnarCodecTest, LegacyEnvKnobForcesRowFormat) {
  Table t = MakeTypedTable(64);
  BinaryWriter legacy;
  EncodeTableLegacy(t, &legacy);
  ::setenv("DVMS_SNAPSHOT_LEGACY", "1", 1);
  BinaryWriter forced;
  EncodeTable(t, &forced);
  ::unsetenv("DVMS_SNAPSHOT_LEGACY");
  EXPECT_EQ(forced.data(), legacy.data());
  BinaryWriter columnar;
  EncodeTable(t, &columnar);
  EXPECT_NE(columnar.data(), legacy.data());
}

TEST(ColumnarCodecTest, TruncatedColumnarPayloadFailsCleanly) {
  Table t = MakeTypedTable(64);
  BinaryWriter w;
  EncodeTable(t, &w);
  const std::string& bytes = w.data();
  for (size_t cut : {size_t{4}, size_t{9}, bytes.size() / 2, bytes.size() - 1}) {
    BinaryReader r(bytes.data(), cut);
    auto decoded = DecodeTable(&r);
    EXPECT_FALSE(decoded.ok()) << "decode of " << cut << " bytes succeeded";
  }
}

// ---- Vectorized-vs-row executor differential -----------------------------

class VectorizedExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    udfs_ = UdfRegistry::WithBuiltins();
    auto sales = catalog_
                     .CreateTable("Sales",
                                  Schema({{"productId", ValueType::kInt64},
                                          {"region", ValueType::kString},
                                          {"year", ValueType::kInt64},
                                          {"price", ValueType::kDouble},
                                          {"revenue", ValueType::kDouble}}),
                                  RelationKind::kBase)
                     .value();
    const char* regions[] = {"east", "west", "north", "south"};
    Rng rng(19);
    for (int i = 0; i < 3000; ++i) {
      // NULLs and NaNs probe the aggregate-skip and sort-order paths where
      // the vectorized kernels could plausibly diverge from the row loop.
      Value revenue =
          rng.Bernoulli(0.05)
              ? Value::Null()
              : (rng.Bernoulli(0.03)
                     ? Value::Double(std::numeric_limits<double>::quiet_NaN())
                     : Value::Double(rng.Uniform(-100, 100)));
      ASSERT_TRUE(sales
                      ->Append({Value::Int(i),
                                Value::String(regions[rng.UniformInt(0, 3)]),
                                Value::Int(1992 + rng.UniformInt(0, 6)),
                                Value::Double(rng.Uniform(0, 50)), revenue})
                      .ok());
    }
  }

  Result<std::unique_ptr<NodeResult>> RunSql(const std::string& sql,
                                             bool vectorize, size_t threads,
                                             ThreadPool* pool,
                                             bool capture_lineage = false) {
    DVMS_ASSIGN_OR_RETURN(SelectStmt stmt, ParseSelect(sql));
    CatalogSchemaResolver resolver(&catalog_);
    Planner planner(&resolver);
    DVMS_ASSIGN_OR_RETURN(PlanPtr plan, planner.PlanSelect(stmt));
    Binder binder(&resolver, &udfs_);
    DVMS_RETURN_IF_ERROR(binder.Bind(plan.get()));
    Executor exec(&catalog_, &udfs_);
    ExecOptions opts;
    opts.vectorize = vectorize;
    opts.capture_lineage = capture_lineage;
    opts.num_threads = threads;
    opts.pool = pool;
    opts.morsel_rows = 256;
    return exec.Execute(*plan, opts);
  }

  void ExpectDifferentialMatch(const std::string& sql) {
    SCOPED_TRACE(sql);
    auto reference = RunSql(sql, /*vectorize=*/false, 1, nullptr);
    ASSERT_TRUE(reference.ok()) << reference.status().message();
    for (size_t threads : {size_t{1}, size_t{4}}) {
      std::unique_ptr<ThreadPool> pool;
      if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
      for (bool vec : {false, true}) {
        if (threads == 1 && !vec) continue;  // that is the reference itself
        auto got = RunSql(sql, vec, threads, pool.get());
        ASSERT_TRUE(got.ok()) << got.status().message();
        EXPECT_TRUE(TablesBitIdentical(reference.value()->table,
                                       got.value()->table))
            << "vectorize=" << vec << " threads=" << threads;
      }
    }
  }

  Catalog catalog_;
  UdfRegistry udfs_;
};

TEST_F(VectorizedExecutorTest, FilterConjunctionsOverTypedColumns) {
  ExpectDifferentialMatch(
      "SELECT productId FROM Sales WHERE price < 25 AND year >= 1994");
  ExpectDifferentialMatch(
      "SELECT productId FROM Sales WHERE region = 'east' AND revenue > 0");
  ExpectDifferentialMatch(
      "SELECT productId FROM Sales WHERE region <> 'west'");
  ExpectDifferentialMatch(
      "SELECT productId FROM Sales WHERE region >= 'north' AND price <= 40");
  // Literal-on-the-left and column-to-column comparisons.
  ExpectDifferentialMatch("SELECT productId FROM Sales WHERE 30 > price");
  ExpectDifferentialMatch("SELECT productId FROM Sales WHERE revenue < price");
}

TEST_F(VectorizedExecutorTest, ProjectionAndScanPassThrough) {
  ExpectDifferentialMatch("SELECT * FROM Sales");
  ExpectDifferentialMatch("SELECT region, price FROM Sales");
  ExpectDifferentialMatch(
      "SELECT productId, price * 2 + revenue AS v FROM Sales");
}

TEST_F(VectorizedExecutorTest, AggregatesMatchRowPathBitForBit) {
  ExpectDifferentialMatch(
      "SELECT region, SUM(revenue) AS s, COUNT(*) AS n, AVG(price) AS a, "
      "MIN(revenue) AS lo, MAX(revenue) AS hi FROM Sales GROUP BY region");
  ExpectDifferentialMatch(
      "SELECT SUM(revenue) AS s, COUNT(revenue) AS n, MIN(price) AS lo "
      "FROM Sales");
  ExpectDifferentialMatch(
      "SELECT year, region, SUM(price) AS s FROM Sales "
      "GROUP BY year, region ORDER BY year, region");
  ExpectDifferentialMatch(
      "SELECT year, SUM(revenue) AS s FROM Sales WHERE region = 'east' "
      "GROUP BY year");
}

TEST_F(VectorizedExecutorTest, OrderByWithNaNsNullsAndTies) {
  ExpectDifferentialMatch(
      "SELECT productId, revenue FROM Sales ORDER BY revenue DESC, productId");
  ExpectDifferentialMatch("SELECT productId, region FROM Sales ORDER BY region");
  ExpectDifferentialMatch(
      "SELECT productId FROM Sales ORDER BY price LIMIT 17");
}

TEST_F(VectorizedExecutorTest, SetOperationsAndDistinct) {
  ExpectDifferentialMatch("SELECT DISTINCT region, year FROM Sales");
  ExpectDifferentialMatch(
      "SELECT region FROM Sales WHERE year = 1993 "
      "UNION SELECT region FROM Sales WHERE year = 1994");
  ExpectDifferentialMatch(
      "SELECT region FROM Sales MINUS SELECT region FROM Sales "
      "WHERE region = 'east'");
}

TEST_F(VectorizedExecutorTest, LineageIdenticalAcrossPaths) {
  const std::string sql =
      "SELECT region, SUM(revenue) AS s FROM Sales WHERE price < 25 "
      "GROUP BY region";
  auto reference = RunSql(sql, /*vectorize=*/false, 1, nullptr,
                          /*capture_lineage=*/true);
  ASSERT_TRUE(reference.ok()) << reference.status().message();
  std::function<void(const NodeResult&, const NodeResult&)> compare =
      [&](const NodeResult& a, const NodeResult& b) {
        EXPECT_TRUE(TablesBitIdentical(a.table, b.table));
        ASSERT_EQ(a.lineage.size(), b.lineage.size());
        for (size_t i = 0; i < a.lineage.size(); ++i) {
          ASSERT_EQ(a.lineage[i].size(), b.lineage[i].size()) << "row " << i;
          for (size_t j = 0; j < a.lineage[i].size(); ++j) {
            EXPECT_EQ(a.lineage[i][j].child, b.lineage[i][j].child);
            EXPECT_EQ(a.lineage[i][j].row, b.lineage[i][j].row);
          }
        }
        ASSERT_EQ(a.children.size(), b.children.size());
        for (size_t i = 0; i < a.children.size(); ++i) {
          compare(*a.children[i], *b.children[i]);
        }
      };
  for (size_t threads : {size_t{1}, size_t{4}}) {
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
    auto vec = RunSql(sql, /*vectorize=*/true, threads, pool.get(),
                      /*capture_lineage=*/true);
    ASSERT_TRUE(vec.ok()) << vec.status().message();
    SCOPED_TRACE("threads=" + std::to_string(threads));
    compare(*reference.value(), *vec.value());
  }
}

// ---- Engine-level differential: corpus replay through both paths ---------

std::string Fingerprint(const Dvms& engine) {
  std::ostringstream out;
  for (const std::string& name : engine.catalog().Names()) {
    auto table = engine.GetTable(name);
    if (!table.ok()) continue;
    out << "== " << name << " ==\n";
    const Table* t = table.value();
    for (size_t c = 0; c < t->schema().num_columns(); ++c) {
      out << t->schema().column(c).name << "|";
    }
    out << "\n";
    for (size_t r = 0; r < t->num_rows(); ++r) {
      for (const Value& v : t->row(r)) out << v.ToString() << "|";
      out << "\n";
    }
  }
  return out.str();
}

struct ReplayResult {
  bool loaded = false;
  std::string fingerprint;
  PixelBuffer pixels{1, 1};
};

ReplayResult ReplayCorpusProgram(const std::string& source, size_t threads,
                                 bool vectorize) {
  ScopedVectorizeDefault guard(vectorize);
  Dvms::Options options;
  options.canvas_width = 200;
  options.canvas_height = 150;
  options.num_threads = threads;
  Dvms engine(options);
  ReplayResult out;
  Schema schema({{"id", ValueType::kInt64}, {"v", ValueType::kDouble}});
  EXPECT_TRUE(engine.CreateBaseTable("Pts", schema).ok());
  EXPECT_TRUE(engine
                  .Insert("Pts", {{Value::Int(1), Value::Double(25)},
                                  {Value::Int(2), Value::Double(55)},
                                  {Value::Int(3), Value::Double(85)}})
                  .ok());
  if (!engine.LoadProgram(source).ok()) return out;
  out.loaded = true;
  std::vector<InputEvent> stream = {
      InputEvent::MouseDown(1, 30, 30), InputEvent::MouseMove(2, 60, 60),
      InputEvent::MouseUp(3, 60, 60),   InputEvent::KeyPress(4, "p"),
      InputEvent::KeyPress(5, "f"),     InputEvent::Wheel(6, 50, 50, 3),
      InputEvent::MouseDown(7, 40, 40), InputEvent::MouseUp(8, 42, 40),
      InputEvent::MouseDown(9, 44, 40), InputEvent::MouseMove(10, 50, 50),
  };
  for (const InputEvent& e : stream) {
    EXPECT_TRUE(engine.PushEvent(e).ok());
  }
  out.fingerprint = Fingerprint(engine);
  out.pixels = engine.pixels();
  return out;
}

TEST(ColumnarEngineDifferentialTest, CorpusReplayMatchesRowPath) {
  // Every loadable corpus program replays through the vectorized and the
  // row executor at 1 and 4 threads; fingerprints (every catalog relation,
  // matcher state included) and pixels must be bit-identical.
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(DVMS_TEST_CORPUS_DIR)) {
    if (entry.path().extension() == ".devil") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty());
  size_t loaded = 0;
  for (const fs::path& file : files) {
    SCOPED_TRACE(file.filename().string());
    std::ifstream in(file);
    std::ostringstream source;
    source << in.rdbuf();
    for (size_t threads : {size_t{1}, size_t{4}}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      ReplayResult row_path =
          ReplayCorpusProgram(source.str(), threads, /*vectorize=*/false);
      ReplayResult vec_path =
          ReplayCorpusProgram(source.str(), threads, /*vectorize=*/true);
      ASSERT_EQ(row_path.loaded, vec_path.loaded);
      if (!row_path.loaded) continue;
      if (threads == 1) ++loaded;
      EXPECT_EQ(vec_path.fingerprint, row_path.fingerprint);
      EXPECT_TRUE(PixelsBitIdentical(vec_path.pixels, row_path.pixels));
    }
  }
  EXPECT_GE(loaded, 5u);
}

// ---- Recovery from a row-store-era snapshot + WAL ------------------------

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static int counter = 0;
    path_ = fs::path(::testing::TempDir()) /
            ("dvms_" + tag + "_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

const char* kRecoveryProgram = R"(
  C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U
      RETURN (D.t, D.x AS x, D.x AS x2),
             (M.t, D.x AS x, M.x AS x2);
  C_RANGE = SELECT min2(x, x2) AS lo, max2(x, x2) AS hi
    FROM C ORDER BY t DESC LIMIT 1;
  picked = SELECT p.id AS id, p.v AS v
    FROM C_RANGE, Pts AS p
    WHERE p.px >= C_RANGE.lo AND p.px <= C_RANGE.hi;
  MARKS = SELECT 4 AS radius, 'red' AS fill,
      linear_scale(k.v, 0, 100, 0, 180) AS center_x,
      linear_scale(k.id, 0, 24, 0, 120) AS center_y
    FROM picked AS k;
  P = render(SELECT * FROM MARKS);
)";

std::unique_ptr<Dvms> MakeRecoveryEngine(const std::string& data_dir) {
  Dvms::Options options;
  options.canvas_width = 200;
  options.canvas_height = 150;
  options.num_threads = 1;
  options.data_dir = data_dir;
  options.wal_fsync = "always";
  options.snapshot_interval = 0;  // explicit Checkpoint() only
  return std::make_unique<Dvms>(options);
}

TEST(ColumnarRecoveryTest, RowStoreEraSnapshotAndWalRecover) {
  // A snapshot written in the pre-columnar row-wise format (forced via
  // DVMS_SNAPSHOT_LEGACY) plus a WAL suffix recovers bit-identically into
  // the columnar engine, and the next checkpoint upgrades the snapshot to
  // the columnar format without changing the recovered state.
  TempDir dir("rowstore_era");
  std::string want;
  PixelBuffer want_pixels(1, 1);
  ::setenv("DVMS_SNAPSHOT_LEGACY", "1", 1);
  {
    auto engine = MakeRecoveryEngine(dir.str());
    ASSERT_TRUE(engine->recovery_status().ok());
    Schema schema({{"id", ValueType::kInt64},
                   {"v", ValueType::kDouble},
                   {"px", ValueType::kDouble}});
    ASSERT_TRUE(engine->CreateBaseTable("Pts", schema).ok());
    std::vector<Row> rows;
    for (int i = 0; i < 24; ++i) {
      rows.push_back({Value::Int(i), Value::Double((i * 37) % 100),
                      Value::Double(5.0 + i * 8.0)});
    }
    ASSERT_TRUE(engine->Insert("Pts", rows).ok());
    ASSERT_TRUE(engine->LoadProgram(kRecoveryProgram).ok());
    ASSERT_TRUE(engine->PushEvent(InputEvent::MouseDown(0, 40, 50)).ok());
    ASSERT_TRUE(engine->PushEvent(InputEvent::MouseMove(1, 90, 50)).ok());
    ASSERT_TRUE(engine->PushEvent(InputEvent::MouseUp(2, 90, 50)).ok());
    // Row-format snapshot, then more committed work into the WAL suffix.
    ASSERT_TRUE(engine->Checkpoint().ok());
    ASSERT_TRUE(engine
                    ->Insert("Pts", {{Value::Int(100), Value::Double(55),
                                      Value::Double(60.0)}})
                    .ok());
    ASSERT_TRUE(engine->PushEvent(InputEvent::MouseDown(3, 20, 40)).ok());
    ASSERT_TRUE(engine->PushEvent(InputEvent::MouseUp(4, 160, 40)).ok());
    want = Fingerprint(*engine);
    want_pixels = engine->pixels();
  }
  ::unsetenv("DVMS_SNAPSHOT_LEGACY");

  auto recovered = MakeRecoveryEngine(dir.str());
  ASSERT_TRUE(recovered->recovery_status().ok())
      << recovered->recovery_status().message();
  EXPECT_EQ(Fingerprint(*recovered), want);
  EXPECT_TRUE(PixelsBitIdentical(recovered->pixels(), want_pixels));
  // Columnar checkpoint over the recovered state...
  ASSERT_TRUE(recovered->Checkpoint().ok());
  recovered.reset();
  // ...recovers again, still bit-identical.
  auto again = MakeRecoveryEngine(dir.str());
  ASSERT_TRUE(again->recovery_status().ok())
      << again->recovery_status().message();
  EXPECT_EQ(Fingerprint(*again), want);
  EXPECT_TRUE(PixelsBitIdentical(again->pixels(), want_pixels));
}

}  // namespace
}  // namespace dvms
