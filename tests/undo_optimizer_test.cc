// Interplay of engine features: undo/redo over optimizer-adopted views,
// and rendering correctness after history navigation.

#include "core/dvms.h"
#include "workload/tpch.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

TEST(UndoOptimizerTest, UndoRestoresAdoptedViewContents) {
  Dvms::Options options;
  options.auto_render = false;
  Dvms engine(options);
  TpchConfig config;
  config.num_rows = 500;
  Table fact = GenerateTpchSales(config);
  ASSERT_TRUE(engine.CreateBaseTable("Sales", fact.schema()).ok());
  ASSERT_TRUE(engine.Insert("Sales", fact.rows()).ok());

  const char* program = R"(
    C = EVENT MOUSE_DOWN AS D, MOUSE_UP AS U RETURN (D.t, D.x, D.y);
    sel_years = SELECT 1992 + 0 * x AS year FROM C;
    by_region = SELECT region, SUM(revenue) AS revenue FROM Sales
                WHERE year IN sel_years GROUP BY region;
  )";
  ASSERT_TRUE(engine.LoadProgram(program).ok());
  ASSERT_TRUE(engine.optimizer().IsAdopted("by_region"));
  EXPECT_EQ(engine.GetTable("by_region").value()->num_rows(), 0u);

  // A click selects 1992; the adopted view fills.
  ASSERT_TRUE(engine.PushEvent(InputEvent::MouseDown(0, 1, 1)).ok());
  ASSERT_TRUE(engine.PushEvent(InputEvent::MouseUp(1, 1, 1)).ok());
  size_t filled = engine.GetTable("by_region").value()->num_rows();
  EXPECT_GT(filled, 0u);

  // Undo rolls the event table back; the adopted view follows.
  ASSERT_TRUE(engine.Undo().ok());
  EXPECT_EQ(engine.GetTable("by_region").value()->num_rows(), 0u);
  ASSERT_TRUE(engine.Redo().ok());
  EXPECT_EQ(engine.GetTable("by_region").value()->num_rows(), filled);
}

TEST(UndoOptimizerTest, RenderReflectsUndo) {
  Dvms::Options options;
  options.canvas_width = 60;
  options.canvas_height = 60;
  Dvms engine(options);
  ASSERT_TRUE(engine
                  .CreateBaseTable("Items", Schema({{"id", ValueType::kInt64},
                                                    {"v", ValueType::kDouble}}))
                  .ok());
  ASSERT_TRUE(engine.Insert("Items", {{Value::Int(1), Value::Double(30)}}).ok());
  const char* program = R"(
    C = EVENT MOUSE_DOWN AS D, MOUSE_UP AS U RETURN (D.t, D.x, D.y);
    DOTS = SELECT 5 AS radius, v AS center_x, v AS center_y,
        if(COUNT_HITS.n > 0, 'red', 'blue') AS fill
      FROM Items, COUNT_HITS;
    COUNT_HITS = SELECT COUNT(*) AS n FROM C;
    P = render(SELECT radius, center_x, center_y, fill FROM DOTS);
  )";
  // COUNT_HITS is defined after DOTS uses it; define in the right order
  // instead.
  const char* ordered = R"(
    C = EVENT MOUSE_DOWN AS D, MOUSE_UP AS U RETURN (D.t, D.x, D.y);
    COUNT_HITS = SELECT COUNT(*) AS n FROM C;
    DOTS = SELECT 5 AS radius, v AS center_x, v AS center_y,
        if(COUNT_HITS.n > 0, 'red', 'blue') AS fill
      FROM Items, COUNT_HITS;
    P = render(SELECT radius, center_x, center_y, fill FROM DOTS);
  )";
  // Forward references are a bind error (statements execute in order).
  {
    Dvms scratch(options);
    ASSERT_TRUE(scratch
                    .CreateBaseTable("Items",
                                     Schema({{"id", ValueType::kInt64},
                                             {"v", ValueType::kDouble}}))
                    .ok());
    EXPECT_FALSE(scratch.LoadProgram(program).ok());
  }
  ASSERT_TRUE(engine.LoadProgram(ordered).ok());

  RGBA blue = ParseColor("blue").value();
  RGBA red = ParseColor("red").value();
  EXPECT_EQ(engine.pixels().At(30, 30), blue);

  ASSERT_TRUE(engine.PushEvent(InputEvent::MouseDown(0, 1, 1)).ok());
  ASSERT_TRUE(engine.PushEvent(InputEvent::MouseUp(1, 1, 1)).ok());
  EXPECT_EQ(engine.pixels().At(30, 30), red);

  ASSERT_TRUE(engine.Undo().ok());
  EXPECT_EQ(engine.pixels().At(30, 30), blue);
  ASSERT_TRUE(engine.Redo().ok());
  EXPECT_EQ(engine.pixels().At(30, 30), red);
}

}  // namespace
}  // namespace dvms
