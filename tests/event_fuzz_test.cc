// Event-stream fuzzing: malformed, out-of-order, and duplicate low-level
// event tuples fed into the Event Recognizer (and the full engine) must be
// digested or rejected with a Status — never a crash, hang, or a matcher
// left in a wedged state. Seed patterns come from tests/corpus/*.devil.

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/dvms.h"
#include "events/nfa.h"
#include "parser/parser.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

std::vector<std::filesystem::path> CorpusFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(DVMS_TEST_CORPUS_DIR)) {
    if (entry.path().extension() == ".devil") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Every EVENT pattern found in the corpus, compiled.
std::vector<CompiledPattern> CorpusPatterns(UdfRegistry* udfs) {
  std::vector<CompiledPattern> patterns;
  for (const auto& path : CorpusFiles()) {
    auto program = ParseProgram(ReadFile(path));
    if (!program.ok()) continue;
    for (const Statement& stmt : program.value().statements) {
      if (stmt.kind != Statement::Kind::kEventDef) continue;
      auto compiled = CompilePattern(stmt.event, udfs);
      if (compiled.ok()) patterns.push_back(std::move(compiled).value());
    }
  }
  return patterns;
}

InputEvent RandomEvent(Rng& rng) {
  InputEvent e;
  switch (rng.UniformInt(0, 4)) {
    case 0:
      e.type = EventType::kMouseDown;
      break;
    case 1:
      e.type = EventType::kMouseMove;
      break;
    case 2:
      e.type = EventType::kMouseUp;
      break;
    case 3:
      e.type = EventType::kKeyPress;
      break;
    default:
      e.type = EventType::kWheel;
      break;
  }
  // Out-of-order and colliding timestamps on purpose.
  e.t = rng.UniformInt(-10, 10);
  switch (rng.UniformInt(0, 3)) {
    case 0:  // well-formed coordinates
      e.x = static_cast<double>(rng.UniformInt(0, 400));
      e.y = static_cast<double>(rng.UniformInt(0, 300));
      break;
    case 1:  // malformed: NaN / infinities
      e.x = std::numeric_limits<double>::quiet_NaN();
      e.y = std::numeric_limits<double>::infinity();
      break;
    case 2:  // malformed: far outside any canvas
      e.x = -1e18;
      e.y = 1e18;
      break;
    default:  // denormal-ish extremes
      e.x = std::numeric_limits<double>::min();
      e.y = -std::numeric_limits<double>::max();
      break;
  }
  switch (rng.UniformInt(0, 2)) {
    case 0:
      e.key = "";  // malformed: empty key payload
      break;
    case 1:
      e.key = "a";
      break;
    default:
      e.key = std::string(64, '\xff');  // binary garbage payload
      break;
  }
  e.delta = (rng.UniformInt(0, 1) != 0)
                ? std::numeric_limits<double>::quiet_NaN()
                : static_cast<double>(rng.UniformInt(-5, 5));
  return e;
}

class EventFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EventFuzzTest, RecognizerDigestsGarbageStreams) {
  UdfRegistry udfs = UdfRegistry::WithBuiltins();
  std::vector<CompiledPattern> patterns = CorpusPatterns(&udfs);
  ASSERT_FALSE(patterns.empty()) << "corpus has no EVENT patterns";

  Rng rng(GetParam());
  for (const CompiledPattern& pattern : patterns) {
    PatternMatcher matcher(pattern, &udfs);
    std::vector<Row> rows;
    for (int i = 0; i < 400; ++i) {
      InputEvent e = RandomEvent(rng);
      rows.clear();
      auto action = matcher.Feed(e, &rows);
      ASSERT_TRUE(action.ok() || !action.status().message().empty());
      if (rng.UniformInt(0, 9) == 0) {
        // Duplicate tuple: feed the identical event again.
        rows.clear();
        (void)matcher.Feed(e, &rows);
      }
    }
  }
}

TEST_P(EventFuzzTest, MatcherStaysUsableAfterGarbage) {
  // After an arbitrary garbage prefix, a canonical down-move-up sequence
  // must still drive the drag pattern to a completed match.
  UdfRegistry udfs = UdfRegistry::WithBuiltins();
  auto program = ParseProgram(
      "C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U "
      "RETURN (D.t, D.x, D.y), (M.t, M.x, M.y);");
  ASSERT_TRUE(program.ok());
  CompiledPattern pattern =
      CompilePattern(program.value().statements[0].event, &udfs).value();

  Rng rng(GetParam() ^ 0x5eed);
  for (int trial = 0; trial < 20; ++trial) {
    PatternMatcher matcher(pattern, &udfs);
    std::vector<Row> rows;
    size_t len = static_cast<size_t>(rng.UniformInt(0, 40));
    for (size_t i = 0; i < len; ++i) {
      rows.clear();
      (void)matcher.Feed(RandomEvent(rng), &rows);
    }
    matcher.Reset();
    rows.clear();
    ASSERT_EQ(matcher.Feed(InputEvent::MouseDown(100, 5, 5), &rows).value(),
              MatchAction::kStarted);
    rows.clear();
    ASSERT_EQ(matcher.Feed(InputEvent::MouseMove(101, 6, 6), &rows).value(),
              MatchAction::kProgress);
    rows.clear();
    ASSERT_EQ(matcher.Feed(InputEvent::MouseUp(102, 6, 6), &rows).value(),
              MatchAction::kCommitted);
  }
}

TEST_P(EventFuzzTest, EngineSurvivesGarbageEventStream) {
  // Full pipeline: garbage events through PushEvent must never crash the
  // engine, and a well-formed interaction afterwards still works.
  Dvms::Options options;
  options.canvas_width = 120;
  options.canvas_height = 90;
  options.num_threads = 1;
  Dvms engine(options);
  Schema schema({{"id", ValueType::kInt64}, {"px", ValueType::kDouble}});
  ASSERT_TRUE(engine.CreateBaseTable("Pts", schema).ok());
  ASSERT_TRUE(engine
                  .Insert("Pts", {{Value::Int(1), Value::Double(10)},
                                  {Value::Int(2), Value::Double(50)}})
                  .ok());
  ASSERT_TRUE(engine.LoadProgram(R"(
    C = EVENT MOUSE_DOWN AS D, MOUSE_UP AS U
        RETURN (D.t, D.x AS lo, U.x AS hi);
    picked = SELECT p.id AS id FROM C, Pts AS p
      WHERE p.px >= C.lo AND p.px <= C.hi;
    MARKS = SELECT 3 AS radius, 'red' AS fill,
        p.px AS center_x, 20 AS center_y
      FROM Pts AS p;
    P = render(SELECT * FROM MARKS);
  )")
                  .ok());

  Rng rng(GetParam() + 99);
  for (int i = 0; i < 300; ++i) {
    Status st = engine.PushEvent(RandomEvent(rng));
    ASSERT_TRUE(st.ok() || !st.message().empty());
  }
  // Out-of-order and duplicate tuples of a real interaction.
  (void)engine.PushEvent(InputEvent::MouseUp(5, 60, 10));
  (void)engine.PushEvent(InputEvent::MouseUp(5, 60, 10));
  (void)engine.PushEvent(InputEvent::MouseMove(-3, 0, 0));

  ASSERT_TRUE(engine.PushEvent(InputEvent::MouseDown(10, 5, 10)).ok());
  ASSERT_TRUE(engine.PushEvent(InputEvent::MouseUp(11, 60, 10)).ok());
  const Table* picked = engine.GetTable("picked").value();
  EXPECT_EQ(picked->num_rows(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventFuzzTest,
                         ::testing::Values(7, 77, 777));

}  // namespace
}  // namespace dvms
