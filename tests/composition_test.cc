// Engine-level interaction composition: the paper's brush-then-drag
// example — merge(I1, I2) produces a combined interaction whose views can
// read both halves' bindings.

#include "core/dvms.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

class CompositionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Dvms::Options options;
    options.auto_render = false;
    engine_ = std::make_unique<Dvms>(options);
    // Two single-step interactions defined separately.
    ASSERT_TRUE(engine_
                    ->LoadProgram(
                        "BRUSH = EVENT MOUSE_DOWN AS D, MOUSE_UP AS U "
                        "RETURN (D.t, D.x, D.y);"
                        "DRAG = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, "
                        "MOUSE_UP AS U "
                        "RETURN (M.t, (M.x - D.x) AS dx, (M.y - D.y) AS dy);")
                    .ok());
  }

  std::unique_ptr<Dvms> engine_;
};

TEST_F(CompositionTest, MergedPatternCreatesEventTable) {
  ASSERT_TRUE(
      engine_->ComposeInteractions("BRUSH", "DRAG", "BRUSH_THEN_DRAG").ok());
  EXPECT_TRUE(engine_->catalog()->Exists("BRUSH_THEN_DRAG"));
  EXPECT_EQ(engine_->catalog()->KindOf("BRUSH_THEN_DRAG").value(),
            RelationKind::kEvent);
}

TEST_F(CompositionTest, MergedPatternMatchesSequentialGestures) {
  ASSERT_TRUE(
      engine_->ComposeInteractions("BRUSH", "DRAG", "COMBO").ok());
  // A view over the combined stream (schema from BRUSH's first RETURN).
  ASSERT_TRUE(engine_
                  ->LoadProgram("COMBO_ROWS = SELECT COUNT(*) AS n FROM COMBO;")
                  .ok());
  // Click (brush half) ...
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseDown(0, 5, 5)).ok());
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseUp(1, 5, 5)).ok());
  // ... then drag (drag half) completes the combined interaction.
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseDown(2, 10, 10)).ok());
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseMove(3, 30, 30)).ok());
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseUp(4, 30, 30)).ok());

  // The combined pattern committed exactly once across the sequence.
  // (BRUSH and DRAG also ran; COMBO's table has the D tuple only, since
  // the merged second-half returns reference renamed aliases.)
  const Table* combo = engine_->GetTable("COMBO").value();
  EXPECT_GE(combo->num_rows(), 1u);
  EXPECT_EQ(engine_->GetTable("COMBO_ROWS").value()->row(0)[0].int_value(),
            static_cast<int64_t>(combo->num_rows()));
}

TEST_F(CompositionTest, ComposeUnknownInteractionFails) {
  EXPECT_FALSE(engine_->ComposeInteractions("BRUSH", "NOPE", "X").ok());
  EXPECT_FALSE(engine_->ComposeInteractions("NOPE", "DRAG", "X").ok());
}

TEST_F(CompositionTest, ComposedNameCollisionFails) {
  ASSERT_TRUE(engine_->ComposeInteractions("BRUSH", "DRAG", "C2").ok());
  EXPECT_FALSE(engine_->ComposeInteractions("BRUSH", "DRAG", "C2").ok());
}

}  // namespace
}  // namespace dvms
