// Durability unit coverage: CRC vectors, WAL frame round-trips and
// truncate-at-corruption scans, atomic snapshot files with fallback to an
// older generation, the WalRecord / snapshot codecs, and full engine
// restart recovery (including `@vnow-k` / `@tnow-j` reads against a
// recovered instance). The randomized crash harness lives in
// crash_recovery_test.cc; this file is the fast, deterministic half.

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault.h"
#include "core/dvms.h"
#include "durability/crc32c.h"
#include "durability/log_record.h"
#include "durability/manager.h"
#include "durability/snapshot.h"
#include "durability/tailer.h"
#include "durability/wal.h"
#include "parser/parser.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

namespace fs = std::filesystem;

/// A fresh directory under the test temp root, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static int counter = 0;
    path_ = fs::path(::testing::TempDir()) /
            ("dvms_" + tag + "_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  fs::path path_;
};

std::string ReadAll(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteAll(const fs::path& p, const std::string& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out << bytes;
}

std::vector<fs::path> ListDir(const fs::path& dir, const std::string& ext) {
  std::vector<fs::path> files;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ext) files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

// ---------------------------------------------------------------------------
// CRC-32C
// ---------------------------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 / iSCSI test vectors.
  EXPECT_EQ(Crc32c("", 0), 0x00000000u);
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  std::string ff(32, '\xff');
  EXPECT_EQ(Crc32c(ff.data(), ff.size()), 0x62A8AB43u);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); split += 7) {
    uint32_t head = Crc32c(data.data(), split);
    uint32_t full = Crc32cExtend(head, data.data() + split,
                                 data.size() - split);
    EXPECT_EQ(full, Crc32c(data.data(), data.size())) << "split=" << split;
  }
}

TEST(Crc32cTest, MaskRoundTripsAndDiffers) {
  for (uint32_t crc : {0u, 1u, 0xE3069283u, 0xFFFFFFFFu, 0xdeadbeefu}) {
    EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
    EXPECT_NE(MaskCrc(crc), crc);
  }
}

// ---------------------------------------------------------------------------
// Fsync-mode parsing (DVMS_WAL_FSYNC)
// ---------------------------------------------------------------------------

TEST(WalFsyncModeTest, ParsesAndRejects) {
  EXPECT_EQ(ParseWalFsyncMode("always").value(), WalFsyncMode::kAlways);
  EXPECT_EQ(ParseWalFsyncMode("Batch").value(), WalFsyncMode::kBatch);
  EXPECT_EQ(ParseWalFsyncMode("OFF").value(), WalFsyncMode::kOff);
  EXPECT_FALSE(ParseWalFsyncMode("").ok());
  EXPECT_FALSE(ParseWalFsyncMode("sometimes").ok());
  for (WalFsyncMode m :
       {WalFsyncMode::kAlways, WalFsyncMode::kBatch, WalFsyncMode::kOff}) {
    EXPECT_EQ(ParseWalFsyncMode(WalFsyncModeToString(m)).value(), m);
  }
}

// ---------------------------------------------------------------------------
// WAL segments: frame round-trip and truncate-at-corruption
// ---------------------------------------------------------------------------

std::string SegPath(const TempDir& dir) {
  return (dir.path() / "wal-00000000000000000001.log").string();
}

TEST(WalSegmentTest, FramesRoundTrip) {
  TempDir dir("wal_roundtrip");
  const std::string path = SegPath(dir);
  {
    auto writer = WalWriter::Create(path, 1, WalFsyncMode::kAlways).value();
    ASSERT_TRUE(writer->Append(1, "alpha").ok());
    ASSERT_TRUE(writer->Append(2, "").ok());  // empty payloads are legal
    ASSERT_TRUE(writer->Append(3, std::string(1000, 'z')).ok());
    EXPECT_GT(writer->fsyncs(), 0u);
  }
  WalScan scan = ScanWalSegment(path).value();
  EXPECT_EQ(scan.first_lsn, 1u);
  ASSERT_EQ(scan.frames.size(), 3u);
  EXPECT_EQ(scan.frames[0].lsn, 1u);
  EXPECT_EQ(scan.frames[0].payload, "alpha");
  EXPECT_EQ(scan.frames[1].payload, "");
  EXPECT_EQ(scan.frames[2].payload, std::string(1000, 'z'));
  EXPECT_FALSE(scan.tail_truncated);
  EXPECT_EQ(scan.valid_bytes, fs::file_size(path));
}

TEST(WalSegmentTest, BitFlipTruncatesAtCorruptFrame) {
  TempDir dir("wal_bitflip");
  const std::string path = SegPath(dir);
  {
    auto writer = WalWriter::Create(path, 1, WalFsyncMode::kOff).value();
    for (uint64_t lsn = 1; lsn <= 3; ++lsn) {
      ASSERT_TRUE(writer->Append(lsn, "payload-" + std::to_string(lsn)).ok());
    }
  }
  std::string bytes = ReadAll(path);
  WalScan clean = ScanWalSegment(path).value();
  ASSERT_EQ(clean.frames.size(), 3u);

  // Flip one bit inside the *last* frame: first two frames must survive.
  std::string mangled = bytes;
  mangled[bytes.size() - 3] ^= 0x40;
  WriteAll(path, mangled);
  WalScan scan = ScanWalSegment(path).value();
  ASSERT_EQ(scan.frames.size(), 2u);
  EXPECT_TRUE(scan.tail_truncated);
  EXPECT_FALSE(scan.tail_error.empty());
  EXPECT_LT(scan.valid_bytes, bytes.size());

  // Flip a bit in the *first* frame: nothing survives, scan still succeeds.
  mangled = bytes;
  mangled[kWalHeaderBytes + kWalFrameOverhead] ^= 0x01;
  WriteAll(path, mangled);
  scan = ScanWalSegment(path).value();
  EXPECT_EQ(scan.frames.size(), 0u);
  EXPECT_TRUE(scan.tail_truncated);
  EXPECT_EQ(scan.valid_bytes, kWalHeaderBytes);
}

TEST(WalSegmentTest, TornTailIsDetectedAtEveryCut) {
  TempDir dir("wal_torn");
  const std::string path = SegPath(dir);
  {
    auto writer = WalWriter::Create(path, 1, WalFsyncMode::kOff).value();
    ASSERT_TRUE(writer->Append(1, "first-frame").ok());
    ASSERT_TRUE(writer->Append(2, "second-frame").ok());
  }
  const std::string bytes = ReadAll(path);
  const uint64_t first_end =
      kWalHeaderBytes + kWalFrameOverhead + std::string("first-frame").size();
  // Cut the file at every byte boundary inside the second frame: the scan
  // must always keep exactly the first frame and flag a torn tail.
  for (size_t cut = first_end + 1; cut < bytes.size(); ++cut) {
    WriteAll(path, bytes.substr(0, cut));
    WalScan scan = ScanWalSegment(path).value();
    ASSERT_EQ(scan.frames.size(), 1u) << "cut=" << cut;
    EXPECT_EQ(scan.frames[0].payload, "first-frame");
    EXPECT_TRUE(scan.tail_truncated) << "cut=" << cut;
    EXPECT_EQ(scan.valid_bytes, first_end) << "cut=" << cut;
  }
}

TEST(WalSegmentTest, SplicedFrameFromOtherLsnRejected) {
  // The CRC covers the LSN, so copying an intact frame to a different log
  // position must not validate.
  TempDir dir("wal_splice");
  const std::string path = SegPath(dir);
  uint64_t frame1_end = 0;
  {
    auto writer = WalWriter::Create(path, 1, WalFsyncMode::kOff).value();
    ASSERT_TRUE(writer->Append(1, "same-size-1").ok());
    frame1_end = writer->bytes_written();
    ASSERT_TRUE(writer->Append(2, "same-size-2").ok());
  }
  std::string bytes = ReadAll(path);
  // Overwrite frame 2 with a byte-copy of frame 1 (same length payloads).
  std::string frame1 = bytes.substr(kWalHeaderBytes,
                                    frame1_end - kWalHeaderBytes);
  bytes.replace(frame1_end, frame1.size(), frame1);
  WriteAll(path, bytes);
  WalScan scan = ScanWalSegment(path).value();
  ASSERT_EQ(scan.frames.size(), 1u);
  EXPECT_TRUE(scan.tail_truncated);  // duplicate LSN = discontinuity
}

TEST(WalSegmentTest, BadHeaderReportedThroughScanNotStatus) {
  // A mangled or short header is corruption evidence, not an I/O failure:
  // the scan succeeds and flags bad_header so recovery can truncate here,
  // while a file that cannot be opened at all still errors.
  TempDir dir("wal_magic");
  const std::string path = SegPath(dir);
  WriteAll(path, "NOTAWAL!\x01\x00\x00\x00\x00\x00\x00\x00");
  WalScan scan = ScanWalSegment(path).value();
  EXPECT_TRUE(scan.bad_header);
  EXPECT_TRUE(scan.tail_truncated);
  EXPECT_TRUE(scan.frames.empty());
  EXPECT_EQ(scan.valid_bytes, 0u);
  EXPECT_FALSE(scan.tail_error.empty());

  WriteAll(path, "DVMSWAL");  // shorter than the header
  scan = ScanWalSegment(path).value();
  EXPECT_TRUE(scan.bad_header);
  EXPECT_TRUE(scan.frames.empty());

  EXPECT_FALSE(ScanWalSegment((dir.path() / "missing.log").string()).ok());
}

TEST(WalSegmentTest, OpenForAppendDropsTornTailAndContinues) {
  TempDir dir("wal_reopen");
  const std::string path = SegPath(dir);
  {
    auto writer = WalWriter::Create(path, 1, WalFsyncMode::kOff).value();
    ASSERT_TRUE(writer->Append(1, "kept").ok());
    ASSERT_TRUE(writer->Append(2, "torn").ok());
  }
  WalScan before = ScanWalSegment(path).value();
  const uint64_t keep = kWalHeaderBytes + kWalFrameOverhead + 4;
  // Simulate a torn tail, then reopen at the valid prefix and append anew.
  WriteAll(path, ReadAll(path).substr(0, keep + 5));
  {
    auto writer =
        WalWriter::OpenForAppend(path, keep, WalFsyncMode::kAlways).value();
    ASSERT_TRUE(writer->Append(2, "replacement").ok());
  }
  WalScan after = ScanWalSegment(path).value();
  ASSERT_EQ(after.frames.size(), 2u);
  EXPECT_EQ(after.frames[0].payload, "kept");
  EXPECT_EQ(after.frames[1].payload, "replacement");
  EXPECT_FALSE(after.tail_truncated);
  (void)before;
}

TEST(WalSegmentTest, BatchModeSyncsEveryGroupAndOnFlush) {
  TempDir dir("wal_batch");
  const std::string path = SegPath(dir);
  auto writer = WalWriter::Create(path, 1, WalFsyncMode::kBatch).value();
  const uint64_t base = writer->fsyncs();
  for (uint64_t lsn = 1; lsn < kGroupCommitAppends; ++lsn) {
    ASSERT_TRUE(writer->Append(lsn, "x").ok());
  }
  EXPECT_EQ(writer->fsyncs(), base);  // below the group threshold
  ASSERT_TRUE(writer->Append(kGroupCommitAppends, "x").ok());
  EXPECT_EQ(writer->fsyncs(), base + 1);  // group boundary forced a sync
  ASSERT_TRUE(writer->Append(kGroupCommitAppends + 1, "x").ok());
  ASSERT_TRUE(writer->Flush().ok());
  EXPECT_EQ(writer->fsyncs(), base + 2);
  ASSERT_TRUE(writer->Flush().ok());  // nothing pending: no extra fsync
  EXPECT_EQ(writer->fsyncs(), base + 2);
}

TEST(WalSegmentTest, FailedSyncRollsBackGroupCommitAccounting) {
  // A frame whose group-boundary fsync fails is truncated away; it must not
  // keep counting toward the next sync threshold.
  TempDir dir("wal_pending");
  const std::string path = SegPath(dir);
  auto writer = WalWriter::Create(path, 1, WalFsyncMode::kBatch).value();
  for (uint64_t lsn = 1; lsn < kGroupCommitAppends; ++lsn) {
    ASSERT_TRUE(writer->Append(lsn, "x").ok());
  }
  ASSERT_EQ(writer->pending_appends(), kGroupCommitAppends - 1);
  const uint64_t bytes_before = writer->bytes_written();

  // Find a seed whose deterministic durability schedule passes the
  // append-entry check (draw 0) and fires inside Sync() (draw 1).
  FaultConfig config = ParseFaultSpec("1:0.5:durability").value();
  for (uint64_t seed = 1;; ++seed) {
    ASSERT_LT(seed, 10000u) << "no seed fails exactly the sync draw";
    config.seed = seed;
    FaultInjector probe(config);
    bool entry = probe.ShouldInject(FaultSite::kDurabilityIo);
    bool sync = probe.ShouldInject(FaultSite::kDurabilityIo);
    if (!entry && sync) break;
  }
  {
    ScopedFaultInjector scoped(config);
    Status st = writer->Append(kGroupCommitAppends, "x");
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("injected fault"), std::string::npos);
  }
  EXPECT_EQ(writer->pending_appends(), kGroupCommitAppends - 1);
  EXPECT_EQ(writer->bytes_written(), bytes_before);

  // The retry lands normally and syncs at the group boundary.
  const uint64_t syncs_before = writer->fsyncs();
  ASSERT_TRUE(writer->Append(kGroupCommitAppends, "x").ok());
  EXPECT_EQ(writer->pending_appends(), 0u);
  EXPECT_EQ(writer->fsyncs(), syncs_before + 1);
  WalScan scan = ScanWalSegment(path).value();
  EXPECT_EQ(scan.frames.size(), kGroupCommitAppends);
  EXPECT_FALSE(scan.tail_truncated);
}

// ---------------------------------------------------------------------------
// WalTailer + ReadLogReadOnly: the replication read path over a primary's
// directory. These cover the resume-LSN edge cases a live primary creates:
// growth between polls, torn tails that complete later, rotation, pruning.
// ---------------------------------------------------------------------------

TEST(WalTailerTest, DeliversNewFramesAcrossPolls) {
  TempDir dir("tail_grow");
  const std::string path = SegPath(dir);
  {
    auto writer = WalWriter::Create(path, 1, WalFsyncMode::kOff).value();
    for (uint64_t lsn = 1; lsn <= 3; ++lsn) {
      ASSERT_TRUE(writer->Append(lsn, "p" + std::to_string(lsn)).ok());
    }
  }
  WalTailer tailer(dir.str(), 0);
  std::vector<WalFrame> batch = tailer.Poll().value();
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].lsn, 1u);
  EXPECT_EQ(batch[2].payload, "p3");
  EXPECT_EQ(tailer.delivered_lsn(), 3u);
  EXPECT_TRUE(tailer.Poll().value().empty());  // caught up: empty, no error

  // The primary appends more; the next poll picks up exactly the suffix.
  const uint64_t keep = fs::file_size(path);
  {
    auto writer =
        WalWriter::OpenForAppend(path, keep, WalFsyncMode::kOff).value();
    ASSERT_TRUE(writer->Append(4, "p4").ok());
    ASSERT_TRUE(writer->Append(5, "p5").ok());
  }
  batch = tailer.Poll().value();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].lsn, 4u);
  EXPECT_EQ(batch[1].payload, "p5");
  EXPECT_EQ(tailer.stats().frames_delivered, 5u);
}

TEST(WalTailerTest, TornTailRetriedThenDeliveredWhenComplete) {
  TempDir dir("tail_torn");
  const std::string path = SegPath(dir);
  {
    auto writer = WalWriter::Create(path, 1, WalFsyncMode::kOff).value();
    ASSERT_TRUE(writer->Append(1, "first-frame").ok());
    ASSERT_TRUE(writer->Append(2, "second-frame").ok());
  }
  const std::string bytes = ReadAll(path);
  // Tear the tail mid-frame-2: the poll delivers the valid prefix and notes
  // a retry — never an error, never the torn frame.
  WriteAll(path, bytes.substr(0, bytes.size() - 5));
  WalTailer tailer(dir.str(), 0);
  std::vector<WalFrame> batch = tailer.Poll().value();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].payload, "first-frame");
  EXPECT_EQ(tailer.stats().torn_tail_retries, 1u);

  // The in-flight append completes on the primary; the retry delivers it.
  WriteAll(path, bytes);
  batch = tailer.Poll().value();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].lsn, 2u);
  EXPECT_EQ(batch[0].payload, "second-frame");
}

TEST(WalTailerTest, DrainsAcrossSegmentRotation) {
  TempDir dir("tail_rotate");
  {
    auto w1 = WalWriter::Create(WalSegmentPath(dir.str(), 1), 1,
                                WalFsyncMode::kOff)
                  .value();
    ASSERT_TRUE(w1->Append(1, "a").ok());
    ASSERT_TRUE(w1->Append(2, "b").ok());
    auto w2 = WalWriter::Create(WalSegmentPath(dir.str(), 3), 3,
                                WalFsyncMode::kOff)
                  .value();
    ASSERT_TRUE(w2->Append(3, "c").ok());
    ASSERT_TRUE(w2->Append(4, "d").ok());
  }
  // One poll drains both segments in LSN order, crossing the rotation.
  WalTailer tailer(dir.str(), 0);
  std::vector<WalFrame> batch = tailer.Poll().value();
  ASSERT_EQ(batch.size(), 4u);
  for (uint64_t i = 0; i < 4; ++i) EXPECT_EQ(batch[i].lsn, i + 1);
  EXPECT_GE(tailer.stats().rotations, 1u);
  EXPECT_EQ(tailer.stats().primary_lsn, 4u);

  // Resuming mid-first-segment also crosses cleanly.
  WalTailer resumed(dir.str(), 2);
  batch = resumed.Poll().value();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].lsn, 3u);
}

TEST(WalTailerTest, PrunedResumePointIsTerminalNotFound) {
  TempDir dir("tail_pruned");
  {
    auto writer = WalWriter::Create(WalSegmentPath(dir.str(), 5), 5,
                                    WalFsyncMode::kOff)
                      .value();
    ASSERT_TRUE(writer->Append(5, "e").ok());
    ASSERT_TRUE(writer->Append(6, "f").ok());
  }
  // The replica needs LSN 3 but every surviving segment starts later: the
  // primary pruned past it. kNotFound tells the tail loop to stop retrying.
  WalTailer tailer(dir.str(), 2);
  Result<std::vector<WalFrame>> polled = tailer.Poll();
  ASSERT_FALSE(polled.ok());
  EXPECT_EQ(polled.status().code(), StatusCode::kNotFound);

  // A tailer already past the gap is unaffected.
  WalTailer caught_up(dir.str(), 4);
  EXPECT_EQ(caught_up.Poll().value().size(), 2u);
}

TEST(WalTailerTest, SnapshotNameBoundsPrimaryLsnAndFlagsPrunedGap) {
  TempDir dir("tail_snap");
  {
    auto manager =
        DurabilityManager::Open(dir.str(), WalFsyncMode::kOff).value();
    ASSERT_TRUE(manager->Recover().ok());
    for (uint64_t lsn = 1; lsn <= 8; ++lsn) {
      ASSERT_TRUE(manager->Append(lsn, "x").ok());
    }
    // Snapshot + rotate: the old segment is pruned, frames 1..8 survive
    // only inside the snapshot, and the live segment starts (empty) at 9.
    ASSERT_TRUE(manager->WriteSnapshot(8, "snapshot-payload").ok());
  }
  // A caught-up tailer learns the primary's LSN from the snapshot name even
  // though no log frame carries it.
  WalTailer caught_up(dir.str(), 8);
  EXPECT_TRUE(caught_up.Poll().value().empty());
  EXPECT_EQ(caught_up.stats().primary_lsn, 8u);

  // A tailer needing pruned frames cannot proceed from the log alone.
  WalTailer lagged(dir.str(), 3);
  Result<std::vector<WalFrame>> polled = lagged.Poll();
  ASSERT_FALSE(polled.ok());
  EXPECT_EQ(polled.status().code(), StatusCode::kNotFound);
}

TEST(ReadLogReadOnlyTest, BootstrapsFromSnapshotPlusSuffix) {
  TempDir dir("ro_bootstrap");
  {
    auto manager =
        DurabilityManager::Open(dir.str(), WalFsyncMode::kOff).value();
    ASSERT_TRUE(manager->Recover().ok());
    for (uint64_t lsn = 1; lsn <= 3; ++lsn) {
      ASSERT_TRUE(manager->Append(lsn, "pre").ok());
    }
    ASSERT_TRUE(manager->WriteSnapshot(3, "payload-A").ok());
    ASSERT_TRUE(manager->Append(4, "post4").ok());
    ASSERT_TRUE(manager->Append(5, "post5").ok());
  }
  RecoveredLog log = ReadLogReadOnly(dir.str()).value();
  EXPECT_TRUE(log.has_snapshot);
  EXPECT_EQ(log.snapshot_lsn, 3u);
  EXPECT_EQ(log.snapshot_payload, "payload-A");
  ASSERT_EQ(log.frames.size(), 2u);
  EXPECT_EQ(log.frames[0].lsn, 4u);
  EXPECT_EQ(log.frames[1].payload, "post5");
}

TEST(ReadLogReadOnlyTest, NeverRepairsTheOwnersFiles) {
  TempDir dir("ro_readonly");
  const std::string path = SegPath(dir);
  {
    auto writer = WalWriter::Create(path, 1, WalFsyncMode::kOff).value();
    ASSERT_TRUE(writer->Append(1, "kept").ok());
    ASSERT_TRUE(writer->Append(2, "torn").ok());
  }
  std::string torn_bytes = ReadAll(path);
  torn_bytes.resize(torn_bytes.size() - 3);
  WriteAll(path, torn_bytes);

  // The read-only scan stops at the valid prefix...
  RecoveredLog log = ReadLogReadOnly(dir.str()).value();
  ASSERT_EQ(log.frames.size(), 1u);
  EXPECT_EQ(log.frames[0].payload, "kept");
  // ...and leaves the torn tail byte-for-byte intact: repairing it is the
  // owning primary's job (DurabilityManager::Recover truncates; we must
  // not race its in-flight append).
  EXPECT_EQ(ReadAll(path), torn_bytes);
}

TEST(ReadLogReadOnlyTest, GapStopsAtContiguousPrefix) {
  TempDir dir("ro_gap");
  {
    auto w1 = WalWriter::Create(WalSegmentPath(dir.str(), 1), 1,
                                WalFsyncMode::kOff)
                  .value();
    ASSERT_TRUE(w1->Append(1, "a").ok());
    ASSERT_TRUE(w1->Append(2, "b").ok());
    // A segment starting beyond the contiguous end (3 was pruned or lost).
    auto w2 = WalWriter::Create(WalSegmentPath(dir.str(), 5), 5,
                                WalFsyncMode::kOff)
                  .value();
    ASSERT_TRUE(w2->Append(5, "e").ok());
  }
  RecoveredLog log = ReadLogReadOnly(dir.str()).value();
  EXPECT_FALSE(log.has_snapshot);
  ASSERT_EQ(log.frames.size(), 2u);
  EXPECT_EQ(log.frames[1].lsn, 2u);
}

// ---------------------------------------------------------------------------
// DurabilityManager: snapshots, rotation, fallback, pruning
// ---------------------------------------------------------------------------

TEST(DurabilityManagerTest, RecoverEmptyDirectoryStartsFresh) {
  TempDir dir("mgr_fresh");
  auto mgr = DurabilityManager::Open(dir.str(), WalFsyncMode::kOff).value();
  RecoveredLog log = mgr->Recover().value();
  EXPECT_FALSE(log.has_snapshot);
  EXPECT_TRUE(log.frames.empty());
  EXPECT_EQ(mgr->last_lsn(), 0u);
  ASSERT_TRUE(mgr->Append(1, "one").ok());
  ASSERT_TRUE(mgr->Append(2, "two").ok());
  // LSN discipline: gaps and replays are caller bugs, rejected loudly.
  EXPECT_FALSE(mgr->Append(2, "dup").ok());
  EXPECT_FALSE(mgr->Append(5, "gap").ok());
}

TEST(DurabilityManagerTest, FramesSurviveRestart) {
  TempDir dir("mgr_restart");
  {
    auto mgr = DurabilityManager::Open(dir.str(), WalFsyncMode::kOff).value();
    (void)mgr->Recover().value();
    for (uint64_t lsn = 1; lsn <= 5; ++lsn) {
      ASSERT_TRUE(mgr->Append(lsn, "frame-" + std::to_string(lsn)).ok());
    }
  }
  auto mgr = DurabilityManager::Open(dir.str(), WalFsyncMode::kOff).value();
  RecoveredLog log = mgr->Recover().value();
  EXPECT_FALSE(log.has_snapshot);
  ASSERT_EQ(log.frames.size(), 5u);
  EXPECT_EQ(log.frames[0].payload, "frame-1");
  EXPECT_EQ(log.frames[4].payload, "frame-5");
  EXPECT_EQ(mgr->last_lsn(), 5u);
  // The log keeps extending where it left off.
  ASSERT_TRUE(mgr->Append(6, "frame-6").ok());
}

TEST(DurabilityManagerTest, SnapshotRotatesSegmentAndShortensReplay) {
  TempDir dir("mgr_snap");
  {
    auto mgr = DurabilityManager::Open(dir.str(), WalFsyncMode::kOff).value();
    (void)mgr->Recover().value();
    for (uint64_t lsn = 1; lsn <= 3; ++lsn) {
      ASSERT_TRUE(mgr->Append(lsn, "pre-" + std::to_string(lsn)).ok());
    }
    ASSERT_TRUE(mgr->WriteSnapshot(3, "snapshot-payload-at-3").ok());
    ASSERT_TRUE(mgr->Append(4, "post-4").ok());
    EXPECT_EQ(mgr->stats().snapshots_written, 1u);
  }
  auto mgr = DurabilityManager::Open(dir.str(), WalFsyncMode::kOff).value();
  RecoveredLog log = mgr->Recover().value();
  ASSERT_TRUE(log.has_snapshot);
  EXPECT_EQ(log.snapshot_lsn, 3u);
  EXPECT_EQ(log.snapshot_payload, "snapshot-payload-at-3");
  ASSERT_EQ(log.frames.size(), 1u);  // only the post-snapshot suffix
  EXPECT_EQ(log.frames[0].lsn, 4u);
  EXPECT_EQ(log.frames[0].payload, "post-4");
  EXPECT_TRUE(mgr->stats().recovered_from_snapshot);
  EXPECT_EQ(mgr->stats().recovered_lsn, 4u);
}

TEST(DurabilityManagerTest, CorruptNewestSnapshotFallsBackToOlder) {
  TempDir dir("mgr_fallback");
  {
    auto mgr = DurabilityManager::Open(dir.str(), WalFsyncMode::kOff).value();
    (void)mgr->Recover().value();
    ASSERT_TRUE(mgr->Append(1, "a").ok());
    ASSERT_TRUE(mgr->WriteSnapshot(1, "older-snapshot").ok());
    ASSERT_TRUE(mgr->Append(2, "b").ok());
    ASSERT_TRUE(mgr->WriteSnapshot(2, "newer-snapshot").ok());
    ASSERT_TRUE(mgr->Append(3, "c").ok());
  }
  auto snaps = ListDir(dir.path(), ".snap");
  ASSERT_EQ(snaps.size(), 2u);  // newest two generations retained
  // Corrupt the newest snapshot's payload; recovery must fall back.
  std::string bytes = ReadAll(snaps.back());
  bytes[bytes.size() - 1] ^= 0xff;
  WriteAll(snaps.back(), bytes);

  auto mgr = DurabilityManager::Open(dir.str(), WalFsyncMode::kOff).value();
  RecoveredLog log = mgr->Recover().value();
  ASSERT_TRUE(log.has_snapshot);
  EXPECT_EQ(log.snapshot_lsn, 1u);
  EXPECT_EQ(log.snapshot_payload, "older-snapshot");
  EXPECT_EQ(mgr->stats().snapshots_discarded, 1u);
  // Frames 2 and 3 replay on top of the older snapshot.
  ASSERT_EQ(log.frames.size(), 2u);
  EXPECT_EQ(log.frames[0].lsn, 2u);
  EXPECT_EQ(log.frames[1].lsn, 3u);
}

TEST(DurabilityManagerTest, SnapshotFileRoundTripsAndValidates) {
  TempDir dir("mgr_snapfile");
  {
    auto mgr = DurabilityManager::Open(dir.str(), WalFsyncMode::kOff).value();
    (void)mgr->Recover().value();
    ASSERT_TRUE(mgr->Append(1, "x").ok());
    ASSERT_TRUE(mgr->WriteSnapshot(1, "the-payload").ok());
  }
  auto snaps = ListDir(dir.path(), ".snap");
  ASSERT_EQ(snaps.size(), 1u);
  auto decoded = ReadSnapshotFile(snaps[0].string()).value();
  EXPECT_EQ(decoded.first, 1u);
  EXPECT_EQ(decoded.second, "the-payload");
  // Any single-byte corruption anywhere in the file must be caught.
  const std::string bytes = ReadAll(snaps[0]);
  for (size_t i = 0; i < bytes.size(); i += 3) {
    std::string mangled = bytes;
    mangled[i] ^= 0x10;
    WriteAll(snaps[0], mangled);
    EXPECT_FALSE(ReadSnapshotFile(snaps[0].string()).ok()) << "byte " << i;
  }
}

TEST(DurabilityManagerTest, ObsoleteSegmentsArePruned) {
  TempDir dir("mgr_prune");
  auto mgr = DurabilityManager::Open(dir.str(), WalFsyncMode::kOff).value();
  (void)mgr->Recover().value();
  uint64_t lsn = 0;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(mgr->Append(++lsn, "p").ok());
    }
    ASSERT_TRUE(mgr->WriteSnapshot(lsn, "snap").ok());
  }
  // Two snapshot generations and a bounded number of segments remain: the
  // log does not grow without bound across checkpoints.
  EXPECT_EQ(ListDir(dir.path(), ".snap").size(), 2u);
  EXPECT_LE(ListDir(dir.path(), ".log").size(), 3u);
  EXPECT_GT(mgr->stats().segments_pruned, 0u);
}

TEST(DurabilityManagerTest, UnreadableSegmentAbortsRecoveryWithoutPruning) {
  TempDir dir("mgr_ioerr");
  {
    auto mgr = DurabilityManager::Open(dir.str(), WalFsyncMode::kOff).value();
    (void)mgr->Recover().value();
    ASSERT_TRUE(mgr->Append(1, "keep-me").ok());
  }
  const fs::path seg1 = dir.path() / "wal-00000000000000000001.log";
  const std::string seg1_bytes = ReadAll(seg1);
  // A segment-named entry that open()s but fails read(2) — EISDIR stands in
  // for any transient I/O failure (EMFILE, EACCES, a flaky disk) that is
  // *not* evidence of corruption.
  const fs::path bogus = dir.path() / "wal-00000000000000000002.log";
  fs::create_directories(bogus);
  {
    auto mgr = DurabilityManager::Open(dir.str(), WalFsyncMode::kOff).value();
    EXPECT_FALSE(mgr->Recover().ok());
  }
  // Recovery aborted with the directory untouched: the frames behind the
  // failure may be perfectly valid, so nothing was truncated or unlinked.
  EXPECT_TRUE(fs::exists(bogus));
  ASSERT_TRUE(fs::exists(seg1));
  EXPECT_EQ(ReadAll(seg1), seg1_bytes);
  // Once the failure clears, recovery proceeds with every frame intact.
  fs::remove_all(bogus);
  auto mgr = DurabilityManager::Open(dir.str(), WalFsyncMode::kOff).value();
  RecoveredLog log = mgr->Recover().value();
  ASSERT_EQ(log.frames.size(), 1u);
  EXPECT_EQ(log.frames[0].payload, "keep-me");
  EXPECT_EQ(mgr->stats().tail_truncations, 0u);
}

TEST(DurabilityManagerTest, SnapshotAheadOfTailRotatesToFreshSegment) {
  // The DVMS_WAL_FSYNC=off crash shape: an fsynced snapshot at LSN 5
  // survives while the unsynced frames 3-5 (and the rotated segment) are
  // lost. The resume point (6) is then past the tail's last frame (2);
  // appending there would create an in-segment LSN gap the *next* recovery
  // truncates as corruption — silently losing acknowledged writes — so
  // recovery must rotate to a fresh segment instead.
  TempDir dir("mgr_snap_ahead");
  {
    auto mgr = DurabilityManager::Open(dir.str(), WalFsyncMode::kOff).value();
    (void)mgr->Recover().value();
    for (uint64_t lsn = 1; lsn <= 5; ++lsn) {
      ASSERT_TRUE(mgr->Append(lsn, "pre-" + std::to_string(lsn)).ok());
    }
    ASSERT_TRUE(mgr->WriteSnapshot(5, "snap-at-5").ok());
  }
  // Reconstruct the crash state: drop the rotated segment and rebuild the
  // first one with only frames 1-2 (the snapshot pruned the original).
  const fs::path seg1 = dir.path() / "wal-00000000000000000001.log";
  const fs::path seg6 = dir.path() / "wal-00000000000000000006.log";
  fs::remove(seg6);
  fs::remove(seg1);
  {
    auto writer =
        WalWriter::Create(seg1.string(), 1, WalFsyncMode::kOff).value();
    ASSERT_TRUE(writer->Append(1, "pre-1").ok());
    ASSERT_TRUE(writer->Append(2, "pre-2").ok());
  }
  {
    auto mgr = DurabilityManager::Open(dir.str(), WalFsyncMode::kOff).value();
    RecoveredLog log = mgr->Recover().value();
    ASSERT_TRUE(log.has_snapshot);
    EXPECT_EQ(log.snapshot_lsn, 5u);
    EXPECT_TRUE(log.frames.empty());
    EXPECT_EQ(mgr->last_lsn(), 5u);
    EXPECT_TRUE(fs::exists(seg6));  // fresh segment at the resume point
    ASSERT_TRUE(mgr->Append(6, "post-6").ok());
  }
  // The new frame survives the next recovery un-truncated.
  auto mgr = DurabilityManager::Open(dir.str(), WalFsyncMode::kOff).value();
  RecoveredLog log = mgr->Recover().value();
  ASSERT_EQ(log.frames.size(), 1u);
  EXPECT_EQ(log.frames[0].lsn, 6u);
  EXPECT_EQ(log.frames[0].payload, "post-6");
  EXPECT_EQ(mgr->stats().tail_truncations, 0u);
}

// ---------------------------------------------------------------------------
// Codecs: WalRecord, Statement, Expr, VersionedTable, scheduler state
// ---------------------------------------------------------------------------

TEST(WalRecordCodecTest, InsertRecordRoundTrips) {
  WalRecord record;
  record.op = WalRecord::Op::kInsert;
  record.name = "Pts";
  record.rows = {{Value::Int(-7), Value::Double(3.25), Value::String("a|b"),
                  Value::Bool(true), Value::Null()},
                 {Value::Int(1), Value::Double(-0.0), Value::String(""),
                  Value::Bool(false), Value::Int(42)}};
  WalRecord out = DecodeWalRecord(EncodeWalRecord(record)).value();
  EXPECT_EQ(out.op, WalRecord::Op::kInsert);
  EXPECT_EQ(out.name, "Pts");
  ASSERT_EQ(out.rows.size(), 2u);
  for (size_t r = 0; r < 2; ++r) {
    ASSERT_EQ(out.rows[r].size(), record.rows[r].size());
    for (size_t c = 0; c < record.rows[r].size(); ++c) {
      EXPECT_EQ(out.rows[r][c].ToString(), record.rows[r][c].ToString());
    }
  }
  EXPECT_FALSE(out.IsDefinition());
}

TEST(WalRecordCodecTest, CreateTableAndScaleRoundTrip) {
  WalRecord record;
  record.op = WalRecord::Op::kCreateTable;
  record.name = "T";
  record.schema = Schema({{"id", ValueType::kInt64},
                          {"v", ValueType::kDouble},
                          {"label", ValueType::kString}});
  WalRecord out = DecodeWalRecord(EncodeWalRecord(record)).value();
  ASSERT_EQ(out.schema.num_columns(), 3u);
  EXPECT_EQ(out.schema.column(2).name, "label");
  EXPECT_EQ(out.schema.column(2).type, ValueType::kString);
  EXPECT_TRUE(out.IsDefinition());

  WalRecord scale;
  scale.op = WalRecord::Op::kCreateScale;
  scale.name = "xscale";
  scale.scale_domain_min = -1.5;
  scale.scale_domain_max = 99.25;
  scale.scale_range_min = 0;
  scale.scale_range_max = 400;
  WalRecord sout = DecodeWalRecord(EncodeWalRecord(scale)).value();
  EXPECT_EQ(sout.scale_domain_min, -1.5);
  EXPECT_EQ(sout.scale_domain_max, 99.25);
  EXPECT_EQ(sout.scale_range_max, 400);
}

TEST(WalRecordCodecTest, DeleteWithPredicateRoundTrips) {
  WalRecord record;
  record.op = WalRecord::Op::kDelete;
  record.name = "Pts";
  record.predicate =
      ParseExpression("id % 2 = 1 AND v > 3.5 OR label = 'x'").value();
  WalRecord out = DecodeWalRecord(EncodeWalRecord(record)).value();
  ASSERT_NE(out.predicate, nullptr);
  EXPECT_EQ(out.predicate->ToString(), record.predicate->ToString());

  // Null predicate (delete all) is representable too.
  record.predicate = nullptr;
  out = DecodeWalRecord(EncodeWalRecord(record)).value();
  EXPECT_EQ(out.predicate, nullptr);
}

TEST(WalRecordCodecTest, EventAndControlRecordsRoundTrip) {
  WalRecord record;
  record.op = WalRecord::Op::kEvent;
  record.event = InputEvent::MouseDown(17, 40.5, 50.25);
  WalRecord out = DecodeWalRecord(EncodeWalRecord(record)).value();
  EXPECT_EQ(out.event.type, EventType::kMouseDown);
  EXPECT_EQ(out.event.t, 17);
  EXPECT_EQ(out.event.x, 40.5);
  EXPECT_EQ(out.event.y, 50.25);

  for (WalRecord::Op op : {WalRecord::Op::kUndo, WalRecord::Op::kRedo}) {
    WalRecord ctl;
    ctl.op = op;
    EXPECT_EQ(DecodeWalRecord(EncodeWalRecord(ctl)).value().op, op);
  }

  WalRecord compose;
  compose.op = WalRecord::Op::kCompose;
  compose.name = "merged";
  compose.compose_first = "C1";
  compose.compose_second = "C2";
  WalRecord cout = DecodeWalRecord(EncodeWalRecord(compose)).value();
  EXPECT_EQ(cout.name, "merged");
  EXPECT_EQ(cout.compose_first, "C1");
  EXPECT_EQ(cout.compose_second, "C2");
  EXPECT_TRUE(cout.IsDefinition());
}

TEST(WalRecordCodecTest, LoadProgramStatementRoundTripsThroughText) {
  // Statements round-trip structurally: encode a parsed view definition and
  // check the decoded statement drives an engine identically.
  const char* source = R"(
    C = EVENT MOUSE_DOWN AS D, MOUSE_UP AS U
        RETURN (D.t, D.x AS lo, U.x AS hi);
    picked = SELECT p.id AS id FROM C, Pts AS p
      WHERE p.px >= C.lo AND p.px <= C.hi;
  )";
  Program program = ParseProgram(source).value();
  for (const Statement& stmt : program.statements) {
    BinaryWriter w;
    EncodeStatement(stmt, &w);
    std::string bytes = w.Take();
    BinaryReader r(bytes);
    Statement out = DecodeStatement(&r).value();
    EXPECT_EQ(out.kind, stmt.kind);
    EXPECT_EQ(out.target_name, stmt.target_name);
  }

  WalRecord record;
  record.op = WalRecord::Op::kLoadProgram;
  record.text = source;
  EXPECT_EQ(DecodeWalRecord(EncodeWalRecord(record)).value().text, source);
}

TEST(WalRecordCodecTest, GarbagePayloadsRejectedNotCrash) {
  EXPECT_FALSE(DecodeWalRecord("").ok());
  EXPECT_FALSE(DecodeWalRecord("\x00").ok());
  EXPECT_FALSE(DecodeWalRecord("\xff\xff\xff\xff garbage").ok());
  // A valid record with trailing garbage is also rejected.
  WalRecord record;
  record.op = WalRecord::Op::kUndo;
  std::string bytes = EncodeWalRecord(record) + "extra";
  EXPECT_FALSE(DecodeWalRecord(bytes).ok());
  // Truncations at every prefix of a real record must error, never crash.
  WalRecord insert;
  insert.op = WalRecord::Op::kInsert;
  insert.name = "T";
  insert.rows = {{Value::Int(1), Value::String("s")}};
  const std::string full = EncodeWalRecord(insert);
  for (size_t n = 0; n < full.size(); ++n) {
    EXPECT_FALSE(DecodeWalRecord(full.substr(0, n)).ok()) << "prefix " << n;
  }
}

TEST(SnapshotCodecTest, VersionedTableStateRoundTrips) {
  VersionedTable vt("T", Schema({{"id", ValueType::kInt64},
                                 {"v", ValueType::kDouble}}));
  ASSERT_TRUE(vt.Append({Value::Int(1), Value::Double(0.5)}).ok());
  vt.Commit();
  ASSERT_TRUE(vt.Append({Value::Int(2), Value::Double(1.5)}).ok());
  vt.Commit();
  vt.BeginTransaction();
  ASSERT_TRUE(vt.Append({Value::Int(3), Value::Double(2.5)}).ok());
  vt.RecordStep();
  ASSERT_TRUE(vt.Append({Value::Int(4), Value::Double(3.5)}).ok());

  BinaryWriter w;
  EncodeVersionedTableState(vt.SaveDurableState(), &w);
  const std::string bytes = w.Take();
  BinaryReader r(bytes);
  VersionedTable::DurableState state = DecodeVersionedTableState(&r).value();

  VersionedTable restored("T", Schema({{"id", ValueType::kInt64},
                                       {"v", ValueType::kDouble}}));
  restored.RestoreDurableState(std::move(state));
  EXPECT_EQ(restored.current().num_rows(), 4u);
  EXPECT_EQ(restored.num_committed_versions(), 3u);  // initial empty + 2
  EXPECT_TRUE(restored.in_transaction());
  EXPECT_EQ(restored.num_steps(), 1u);
  EXPECT_EQ(restored.epoch(), vt.epoch());
  // @vnow-1: last committed version (2 rows); @tnow-1: one event ago.
  EXPECT_EQ(restored.Version(1).value()->num_rows(), 2u);
  EXPECT_EQ(restored.Version(2).value()->num_rows(), 1u);
  EXPECT_EQ(restored.StepVersion(1).value()->num_rows(), 3u);
}

TEST(SnapshotCodecTest, MatcherAndSchedulerStatesRoundTrip) {
  PatternMatcher::SavedState m;
  m.active = true;
  m.pos = 3;
  m.slots = {Value::Int(9), Value::Double(1.25), Value::Null()};
  m.exists_satisfied = {true, false, true};
  BinaryWriter mw;
  EncodeMatcherState(m, &mw);
  const std::string mbytes = mw.Take();
  BinaryReader mr(mbytes);
  PatternMatcher::SavedState mout = DecodeMatcherState(&mr).value();
  EXPECT_EQ(mout.active, true);
  EXPECT_EQ(mout.pos, 3u);
  ASSERT_EQ(mout.slots.size(), 3u);
  EXPECT_EQ(mout.slots[0].ToString(), m.slots[0].ToString());
  EXPECT_EQ(mout.exists_satisfied, m.exists_satisfied);

  StreamScheduler sched(8);
  sched.AddTile({"tile-a", {0.0, 0.5, 0.8, 1.0}, 0});
  sched.AddTile({"tile-b", {0.0, 0.3, 0.6}, 0});
  sched.SetProbabilities({{"tile-a", 0.9}, {"tile-b", 0.1}});
  (void)sched.TickDetailed();
  StreamScheduler::DurableState s = sched.SaveDurableState();
  BinaryWriter sw;
  EncodeSchedulerState(s, &sw);
  const std::string sbytes = sw.Take();
  BinaryReader sr(sbytes);
  StreamScheduler::DurableState sout = DecodeSchedulerState(&sr).value();
  StreamScheduler restored(0);
  restored.RestoreDurableState(std::move(sout));
  EXPECT_EQ(restored.total_sent(), sched.total_sent());
  EXPECT_EQ(restored.stats().ticks, sched.stats().ticks);
  EXPECT_EQ(restored.GetTile("tile-a").value()->sent_coeffs,
            sched.GetTile("tile-a").value()->sent_coeffs);
  EXPECT_EQ(restored.ExpectedUtility(), sched.ExpectedUtility());
}

TEST(SnapshotCodecTest, EngineSnapshotGarbageRejected) {
  EXPECT_FALSE(DecodeEngineSnapshot("").ok());
  EXPECT_FALSE(DecodeEngineSnapshot("short").ok());
  EngineSnapshot snapshot;
  snapshot.last_lsn = 12;
  snapshot.counters.events_processed = 4;
  const std::string bytes = EncodeEngineSnapshot(snapshot);
  EngineSnapshot out = DecodeEngineSnapshot(bytes).value();
  EXPECT_EQ(out.last_lsn, 12u);
  EXPECT_EQ(out.counters.events_processed, 4u);
  EXPECT_FALSE(DecodeEngineSnapshot(bytes + "x").ok());
}

// ---------------------------------------------------------------------------
// Fail-loud DVMS_FAULTS parsing
// ---------------------------------------------------------------------------

using FaultEnvDeathTest = ::testing::Test;

TEST(FaultEnvDeathTest, MalformedEnvSpecAbortsLoudly) {
  // The env path must not silently disable injection on a typo: a chaos run
  // with a misspelled spec would otherwise pass vacuously.
  EXPECT_DEATH(fault::InjectorFromEnvSpecOrDie("1:bogus"),
               "DVMS_FAULTS='1:bogus' is malformed");
  EXPECT_DEATH(fault::InjectorFromEnvSpecOrDie("1:0.5:warp_core"),
               "malformed");
  EXPECT_DEATH(fault::InjectorFromEnvSpecOrDie("1:2.0"), "malformed");
}

TEST(FaultEnvTest, WellFormedAndEmptySpecsAccepted) {
  EXPECT_EQ(fault::InjectorFromEnvSpecOrDie(nullptr), nullptr);
  EXPECT_EQ(fault::InjectorFromEnvSpecOrDie(""), nullptr);
  FaultInjector* injector = fault::InjectorFromEnvSpecOrDie("7:0.25:durability");
  ASSERT_NE(injector, nullptr);
  delete injector;
  auto site = FaultSiteFromName("durability");
  EXPECT_EQ(site.value(), FaultSite::kDurabilityIo);
}

// ---------------------------------------------------------------------------
// Engine-level recovery (fast deterministic cases)
// ---------------------------------------------------------------------------

const char* kProgram = R"(
  C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U
      RETURN (D.t, D.x AS x, D.x AS x2),
             (M.t, D.x AS x, M.x AS x2);
  C_RANGE = SELECT min2(x, x2) AS lo, max2(x, x2) AS hi
    FROM C ORDER BY t DESC LIMIT 1;
  picked = SELECT p.id AS id, p.v AS v
    FROM C_RANGE, Pts AS p
    WHERE p.px >= C_RANGE.lo AND p.px <= C_RANGE.hi;
  MARKS = SELECT 4 AS radius, 'red' AS fill,
      linear_scale(k.v, 0, 100, 0, 180) AS center_x,
      linear_scale(k.id, 0, 24, 0, 120) AS center_y
    FROM picked AS k;
  P = render(SELECT * FROM MARKS);
)";

std::unique_ptr<Dvms> MakeEngine(const std::string& data_dir,
                                 const std::string& fsync = "always") {
  Dvms::Options options;
  options.canvas_width = 200;
  options.canvas_height = 150;
  options.num_threads = 1;
  options.data_dir = data_dir;
  options.wal_fsync = fsync;
  options.snapshot_interval = 0;  // explicit Checkpoint() only
  return std::make_unique<Dvms>(options);
}

void RunWorkload(Dvms& engine) {
  Schema schema({{"id", ValueType::kInt64},
                 {"v", ValueType::kDouble},
                 {"px", ValueType::kDouble}});
  ASSERT_TRUE(engine.CreateBaseTable("Pts", schema).ok());
  std::vector<Row> rows;
  for (int i = 0; i < 24; ++i) {
    rows.push_back({Value::Int(i), Value::Double((i * 37) % 100),
                    Value::Double(5.0 + i * 8.0)});
  }
  ASSERT_TRUE(engine.Insert("Pts", rows).ok());
  ASSERT_TRUE(engine.LoadProgram(kProgram).ok());
  ASSERT_TRUE(engine.PushEvent(InputEvent::MouseDown(0, 40, 50)).ok());
  ASSERT_TRUE(engine.PushEvent(InputEvent::MouseMove(1, 90, 50)).ok());
  ASSERT_TRUE(engine.PushEvent(InputEvent::MouseUp(2, 90, 50)).ok());
  ASSERT_TRUE(engine
                  .Insert("Pts", {{Value::Int(100), Value::Double(55),
                                   Value::Double(60.0)}})
                  .ok());
  ASSERT_TRUE(engine.PushEvent(InputEvent::MouseDown(3, 20, 40)).ok());
  ASSERT_TRUE(engine.PushEvent(InputEvent::MouseUp(4, 160, 40)).ok());
}

std::string Fingerprint(const Dvms& engine) {
  std::ostringstream out;
  for (const std::string& name : engine.catalog().Names()) {
    auto table = engine.GetTable(name);
    if (!table.ok()) continue;
    out << "== " << name << " ==\n";
    const Table* t = table.value();
    for (size_t c = 0; c < t->schema().num_columns(); ++c) {
      out << t->schema().column(c).name << "|";
    }
    out << "\n";
    for (size_t r = 0; r < t->num_rows(); ++r) {
      for (const Value& v : t->row(r)) out << v.ToString() << "|";
      out << "\n";
    }
  }
  return out.str();
}

TEST(EngineRecoveryTest, CleanShutdownRecoversBitIdentically) {
  TempDir dir("recover_clean");
  std::string want;
  PixelBuffer want_pixels(1, 1);
  {
    auto engine = MakeEngine(dir.str());
    ASSERT_TRUE(engine->recovery_status().ok());
    RunWorkload(*engine);
    want = Fingerprint(*engine);
    want_pixels = engine->pixels();
    EXPECT_GT(engine->durability_stats().frames_appended, 0u);
  }
  auto recovered = MakeEngine(dir.str());
  ASSERT_TRUE(recovered->recovery_status().ok())
      << recovered->recovery_status().message();
  EXPECT_GT(recovered->durability_stats().frames_replayed, 0u);
  EXPECT_EQ(Fingerprint(*recovered), want);
  EXPECT_TRUE(recovered->pixels().Equals(want_pixels));
  // And the recovered engine keeps working (and logging) normally.
  ASSERT_TRUE(recovered->PushEvent(InputEvent::MouseDown(10, 10, 30)).ok());
  ASSERT_TRUE(recovered->PushEvent(InputEvent::MouseUp(11, 10, 30)).ok());
  EXPECT_NE(Fingerprint(*recovered), want);
}

TEST(EngineRecoveryTest, CheckpointThenRecoverMatchesLogOnlyRecovery) {
  TempDir log_only("recover_logonly");
  TempDir snapped("recover_snapped");
  std::string fp_log, fp_snap;
  PixelBuffer px_log(1, 1), px_snap(1, 1);
  {
    auto engine = MakeEngine(log_only.str());
    RunWorkload(*engine);
    fp_log = Fingerprint(*engine);
  }
  {
    auto engine = MakeEngine(snapped.str());
    RunWorkload(*engine);
    ASSERT_TRUE(engine->Checkpoint().ok());
    EXPECT_EQ(engine->durability_stats().snapshots_written, 1u);
    // Mutations after the checkpoint replay from the rotated segment.
    ASSERT_TRUE(engine->PushEvent(InputEvent::MouseDown(10, 10, 30)).ok());
    ASSERT_TRUE(engine->PushEvent(InputEvent::MouseUp(11, 10, 30)).ok());
    fp_snap = Fingerprint(*engine);
    px_snap = engine->pixels();
  }
  {
    auto recovered = MakeEngine(snapped.str());
    ASSERT_TRUE(recovered->recovery_status().ok())
        << recovered->recovery_status().message();
    EXPECT_TRUE(recovered->durability_stats().recovered_from_snapshot);
    EXPECT_EQ(Fingerprint(*recovered), fp_snap);
    EXPECT_TRUE(recovered->pixels().Equals(px_snap));
  }
  {
    auto recovered = MakeEngine(log_only.str());
    EXPECT_FALSE(recovered->durability_stats().recovered_from_snapshot);
    EXPECT_EQ(Fingerprint(*recovered), fp_log);
  }
}

TEST(EngineRecoveryTest, VersionedReadsWorkAgainstRecoveredInstance) {
  // `@vnow-k` / `@tnow-j` reads against a recovered engine must match the
  // uninterrupted engine — version history is part of durable state.
  TempDir dir("recover_versions");
  std::vector<std::string> queries = {
      "SELECT COUNT(*) AS n FROM Pts",
      "SELECT COUNT(*) AS n FROM Pts@vnow-1",
      "SELECT COUNT(*) AS n FROM Pts@vnow-2",
      "SELECT COUNT(*) AS n FROM C@vnow-1",
      "SELECT COUNT(*) AS n FROM C@tnow-1",
      "SELECT COUNT(*) AS n FROM picked@vnow-1",
  };
  std::vector<std::string> want;
  {
    auto engine = MakeEngine(dir.str());
    RunWorkload(*engine);
    ASSERT_TRUE(engine->Checkpoint().ok());
    // Leave an interaction open so @tnow has in-transaction steps.
    ASSERT_TRUE(engine->PushEvent(InputEvent::MouseDown(20, 30, 40)).ok());
    ASSERT_TRUE(engine->PushEvent(InputEvent::MouseMove(21, 50, 40)).ok());
    for (const std::string& q : queries) {
      auto result = engine->Query(q);
      ASSERT_TRUE(result.ok()) << q << ": " << result.status().message();
      want.push_back(result.value().row(0)[0].ToString());
    }
  }
  auto recovered = MakeEngine(dir.str());
  ASSERT_TRUE(recovered->recovery_status().ok())
      << recovered->recovery_status().message();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto result = recovered->Query(queries[i]);
    ASSERT_TRUE(result.ok()) << queries[i];
    EXPECT_EQ(result.value().row(0)[0].ToString(), want[i]) << queries[i];
  }
  // The open interaction finishes normally after recovery.
  ASSERT_TRUE(recovered->PushEvent(InputEvent::MouseUp(22, 50, 40)).ok());
}

TEST(EngineRecoveryTest, UndoRedoCursorSurvivesRestart) {
  TempDir dir("recover_undo");
  std::string want;
  {
    auto engine = MakeEngine(dir.str());
    RunWorkload(*engine);
    ASSERT_TRUE(engine->Undo().ok());
    want = Fingerprint(*engine);
    EXPECT_TRUE(engine->CanRedo());
  }
  auto recovered = MakeEngine(dir.str());
  ASSERT_TRUE(recovered->recovery_status().ok());
  EXPECT_EQ(Fingerprint(*recovered), want);
  ASSERT_TRUE(recovered->CanRedo());
  ASSERT_TRUE(recovered->Redo().ok());

  auto control = MakeEngine("");  // durability off
  RunWorkload(*control);
  EXPECT_EQ(Fingerprint(*recovered), Fingerprint(*control));
}

TEST(EngineRecoveryTest, AutoSnapshotTriggersAtInterval) {
  TempDir dir("recover_autosnap");
  Dvms::Options options;
  options.canvas_width = 100;
  options.canvas_height = 80;
  options.num_threads = 1;
  options.data_dir = dir.str();
  options.wal_fsync = "off";
  options.snapshot_interval = 8;
  {
    Dvms engine(options);
    Schema schema({{"id", ValueType::kInt64}});
    ASSERT_TRUE(engine.CreateBaseTable("T", schema).ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(engine.Insert("T", {{Value::Int(i)}}).ok());
    }
    EXPECT_GE(engine.durability_stats().snapshots_written, 2u);
  }
  Dvms recovered(options);
  ASSERT_TRUE(recovered.recovery_status().ok());
  EXPECT_TRUE(recovered.durability_stats().recovered_from_snapshot);
  EXPECT_EQ(recovered.GetTable("T").value()->num_rows(), 20u);
}

TEST(EngineRecoveryTest, SchedulerStateRidesAlongInSnapshots) {
  TempDir dir("recover_sched");
  size_t want_sent = 0;
  {
    auto engine = MakeEngine(dir.str());
    StreamScheduler sched(4);
    sched.AddTile({"t0", {0.0, 0.4, 0.7, 1.0}, 0});
    sched.AddTile({"t1", {0.0, 0.6, 0.9}, 0});
    sched.SetProbabilities({{"t0", 0.8}, {"t1", 0.2}});
    engine->AttachScheduler(&sched);
    RunWorkload(*engine);
    (void)sched.TickDetailed();
    want_sent = sched.total_sent();
    ASSERT_GT(want_sent, 0u);
    ASSERT_TRUE(engine->Checkpoint().ok());
    engine->AttachScheduler(nullptr);
  }
  auto recovered = MakeEngine(dir.str());
  ASSERT_TRUE(recovered->recovery_status().ok());
  StreamScheduler sched(0);
  recovered->AttachScheduler(&sched);  // recovery state applied here
  EXPECT_EQ(sched.total_sent(), want_sent);
  EXPECT_EQ(sched.GetTile("t0").value()->id, "t0");
  recovered->AttachScheduler(nullptr);
}

TEST(EngineRecoveryTest, DurabilityOffHasNoSideEffects) {
  auto engine = MakeEngine("");
  ASSERT_TRUE(engine->recovery_status().ok());
  RunWorkload(*engine);
  EXPECT_EQ(engine->durability_stats().frames_appended, 0u);
  EXPECT_FALSE(engine->Checkpoint().ok());
  EXPECT_TRUE(engine->FlushWal().ok());
}

TEST(EngineRecoveryTest, FailedAppendRollsBackMemoryState) {
  // If the log cannot acknowledge a mutation, memory must not keep it:
  // otherwise a later recovery silently diverges from the live engine.
  TempDir dir("recover_rollback");
  auto engine = MakeEngine(dir.str());
  RunWorkload(*engine);
  const std::string before = Fingerprint(*engine);
  const auto frames_before = engine->durability_stats().frames_appended;

  FaultConfig config = ParseFaultSpec("1:1.0:durability").value();
  config.max_injections = 1;
  Status st;
  {
    ScopedFaultInjector scoped(config);
    st = engine->Insert("Pts", {{Value::Int(999), Value::Double(1),
                                 Value::Double(2)}});
  }
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("injected fault"), std::string::npos);
  EXPECT_EQ(Fingerprint(*engine), before);
  EXPECT_EQ(engine->durability_stats().frames_appended, frames_before);

  // The same insert succeeds afterwards and recovery sees exactly one copy.
  ASSERT_TRUE(engine
                  ->Insert("Pts", {{Value::Int(999), Value::Double(1),
                                    Value::Double(2)}})
                  .ok());
  const std::string after = Fingerprint(*engine);
  engine.reset();
  auto recovered = MakeEngine(dir.str());
  ASSERT_TRUE(recovered->recovery_status().ok());
  EXPECT_EQ(Fingerprint(*recovered), after);
}

TEST(EngineRecoveryTest, StatementAppendFailureFailsStop) {
  // Execute() commits through nested entry points whose depth-2 logging is
  // a no-op, so a failed append at depth 1 cannot roll the mutation back.
  // Logging must fail-stop rather than let later frames replay against a
  // diverged state.
  TempDir dir("recover_failstop");
  auto engine = MakeEngine(dir.str());
  Schema schema({{"id", ValueType::kInt64}});
  ASSERT_TRUE(engine->CreateBaseTable("T", schema).ok());
  ASSERT_TRUE(engine->Insert("T", {{Value::Int(1)}}).ok());
  const auto frames_before = engine->durability_stats().frames_appended;

  Statement stmt;
  stmt.kind = Statement::Kind::kInsert;
  stmt.target_name = "T";
  stmt.insert_rows = {{Value::Int(2)}};
  FaultConfig config = ParseFaultSpec("1:1.0:durability").value();
  config.max_injections = 1;
  Status st;
  {
    ScopedFaultInjector scoped(config);
    st = engine->Execute(stmt);
  }
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("injected fault"), std::string::npos);
  // Memory kept the mutation the log lost; logging is now fail-stopped.
  EXPECT_EQ(engine->GetTable("T").value()->num_rows(), 2u);
  EXPECT_EQ(engine->durability_stats().frames_appended, frames_before);
  EXPECT_FALSE(engine->recovery_status().ok());
  EXPECT_NE(engine->recovery_status().message().find("fail-stop"),
            std::string::npos);
  EXPECT_FALSE(engine->Checkpoint().ok());

  // The engine stays usable in memory but appends nothing further.
  ASSERT_TRUE(engine->Insert("T", {{Value::Int(3)}}).ok());
  EXPECT_EQ(engine->durability_stats().frames_appended, frames_before);

  // A restart recovers the last logged state and logs normally again.
  engine.reset();
  auto recovered = MakeEngine(dir.str());
  ASSERT_TRUE(recovered->recovery_status().ok())
      << recovered->recovery_status().message();
  EXPECT_EQ(recovered->GetTable("T").value()->num_rows(), 1u);
  ASSERT_TRUE(recovered->Insert("T", {{Value::Int(2)}}).ok());
  EXPECT_GT(recovered->durability_stats().frames_appended, 0u);
}

TEST(EngineRecoveryTest, PartiallyAppliedProgramFailsStop) {
  // A program commits as one frame; when a later statement fails, the
  // earlier ones are already applied (view DDL outlives a unit rollback)
  // but unlogged — so logging must fail-stop. A pure parse error, by
  // contrast, touches nothing and must not poison anything.
  TempDir dir("recover_partial");
  auto engine = MakeEngine(dir.str());
  Schema schema({{"id", ValueType::kInt64}});
  ASSERT_TRUE(engine->CreateBaseTable("Pts", schema).ok());
  ASSERT_TRUE(engine->Insert("Pts", {{Value::Int(1)}}).ok());
  const auto frames_before = engine->durability_stats().frames_appended;

  ASSERT_FALSE(engine->LoadProgram("not ! a : program").ok());
  EXPECT_TRUE(engine->recovery_status().ok());  // nothing was applied

  Status st = engine->LoadProgram(
      "ok_view = SELECT id AS id FROM Pts;\n"
      "bad = SELECT x AS x FROM NoSuchRelation;");
  ASSERT_FALSE(st.ok());
  // The first statement stuck in memory but nothing reached the log.
  EXPECT_TRUE(engine->catalog()->Exists("ok_view"));
  EXPECT_EQ(engine->durability_stats().frames_appended, frames_before);
  EXPECT_FALSE(engine->recovery_status().ok());
  EXPECT_NE(engine->recovery_status().message().find("fail-stop"),
            std::string::npos);

  engine.reset();
  auto recovered = MakeEngine(dir.str());
  ASSERT_TRUE(recovered->recovery_status().ok())
      << recovered->recovery_status().message();
  EXPECT_FALSE(recovered->catalog()->Exists("ok_view"));
  EXPECT_EQ(recovered->GetTable("Pts").value()->num_rows(), 1u);
}

TEST(EngineRecoveryTest, CorpusSeedsReplayCompoundInteractions) {
  // Every loadable corpus program (multi-stage NFAs, concurrent patterns,
  // `@tnow` trails, key/wheel streams) is driven through a canonical event
  // stream that ends mid-interaction, then recovered: the replayed engine —
  // matcher slots and step versions included — must be bit-identical.
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(DVMS_TEST_CORPUS_DIR)) {
    if (entry.path().extension() == ".devil") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  std::vector<std::string> loaded;
  for (const fs::path& file : files) {
    SCOPED_TRACE(file.filename().string());
    std::ifstream in(file);
    std::ostringstream source;
    source << in.rdbuf();

    TempDir dir("corpus");
    std::string want;
    {
      auto engine = MakeEngine(dir.str());
      Schema schema({{"id", ValueType::kInt64}, {"v", ValueType::kDouble}});
      ASSERT_TRUE(engine->CreateBaseTable("Pts", schema).ok());
      ASSERT_TRUE(engine
                      ->Insert("Pts", {{Value::Int(1), Value::Double(25)},
                                       {Value::Int(2), Value::Double(55)},
                                       {Value::Int(3), Value::Double(85)}})
                      .ok());
      // Programs over relations this harness doesn't provide simply skip.
      if (!engine->LoadProgram(source.str()).ok()) continue;
      loaded.push_back(file.filename().string());
      std::vector<InputEvent> stream = {
          InputEvent::MouseDown(1, 30, 30), InputEvent::MouseMove(2, 60, 60),
          InputEvent::MouseUp(3, 60, 60),   InputEvent::KeyPress(4, "p"),
          InputEvent::KeyPress(5, "f"),     InputEvent::Wheel(6, 50, 50, 3),
          InputEvent::MouseDown(7, 40, 40), InputEvent::MouseUp(8, 42, 40),
          InputEvent::MouseDown(9, 44, 40),  // second click of a double
          InputEvent::MouseMove(10, 50, 50),  // ...or an open drag
      };
      for (const InputEvent& e : stream) {
        ASSERT_TRUE(engine->PushEvent(e).ok());
      }
      want = Fingerprint(*engine);
    }
    auto recovered = MakeEngine(dir.str());
    ASSERT_TRUE(recovered->recovery_status().ok())
        << recovered->recovery_status().message();
    EXPECT_EQ(Fingerprint(*recovered), want);
    // The restored matchers accept the rest of the interaction.
    ASSERT_TRUE(recovered->PushEvent(InputEvent::MouseUp(11, 50, 50)).ok());
  }
  // The replay-focused seeds must all participate, not be skipped.
  for (const char* seed : {"double_click_select.devil", "shift_drag_pan.devil",
                           "drag_trail_steps.devil"}) {
    EXPECT_NE(std::find(loaded.begin(), loaded.end(), seed), loaded.end())
        << seed << " did not load against the harness";
  }
  EXPECT_GE(loaded.size(), 5u);
}

TEST(EngineRecoveryTest, BatchAndOffModesRecoverAfterCleanShutdown) {
  // Group-commit and no-fsync modes still produce a complete log when the
  // process exits cleanly (destructor flush).
  for (const char* mode : {"batch", "off"}) {
    SCOPED_TRACE(mode);
    TempDir dir(std::string("recover_mode_") + mode);
    std::string want;
    {
      auto engine = MakeEngine(dir.str(), mode);
      RunWorkload(*engine);
      want = Fingerprint(*engine);
    }
    auto recovered = MakeEngine(dir.str(), mode);
    ASSERT_TRUE(recovered->recovery_status().ok());
    EXPECT_EQ(Fingerprint(*recovered), want);
  }
}

}  // namespace
}  // namespace dvms
