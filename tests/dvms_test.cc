#include "core/dvms.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

/// The Figure 2 program: a scatterplot over Sales with linked brushing.
/// DeVIL 1 (static view) + DeVIL 2 (drag events) + DeVIL 3 (selection),
/// with scale relations joined in to feed linear_scale.
const char* kBrushingProgram = R"(
C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U
    RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
           (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);

SPLOT_POINTS = SELECT
    8 AS radius, 'gray' AS stroke, 'gray' AS fill,
    linear_scale(Sales.revenue, sx.domain_min, sx.domain_max,
                 sx.range_min, sx.range_max) AS center_x,
    linear_scale(Sales.profit, sy.domain_min, sy.domain_max,
                 sy.range_min, sy.range_max) AS center_y,
    productId
  FROM Sales, scale_x AS sx, scale_y AS sy;

BBOX = SELECT x AS x0, y AS y0, x + dx AS x1, y + dy AS y1
  FROM C ORDER BY t DESC LIMIT 1;

selected = SELECT SP.productId AS productId
  FROM BBOX, SPLOT_POINTS@vnow-1 AS SP
  WHERE in_rectangle(SP.center_x, SP.center_y,
                     BBOX.x0, BBOX.y0, BBOX.x1, BBOX.y1);

SPLOT_POINTS = SELECT
    8 AS radius, 'gray' AS stroke, 'gray' AS fill,
    linear_scale(Sales.revenue, sx.domain_min, sx.domain_max,
                 sx.range_min, sx.range_max) AS center_x,
    linear_scale(Sales.profit, sy.domain_min, sy.domain_max,
                 sy.range_min, sy.range_max) AS center_y,
    productId
  FROM Sales, scale_x AS sx, scale_y AS sy
  WHERE productId NOT IN selected
  UNION SELECT
    8 AS radius, 'red' AS stroke, 'red' AS fill,
    linear_scale(Sales.revenue, sx.domain_min, sx.domain_max,
                 sx.range_min, sx.range_max) AS center_x,
    linear_scale(Sales.profit, sy.domain_min, sy.domain_max,
                 sy.range_min, sy.range_max) AS center_y,
    productId
  FROM Sales, scale_x AS sx, scale_y AS sy
  WHERE productId IN selected;

P = render(SELECT * FROM SPLOT_POINTS);
)";

class DvmsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Dvms::Options options;
    options.canvas_width = 200;
    options.canvas_height = 200;
    engine_ = std::make_unique<Dvms>(options);
    ASSERT_TRUE(engine_
                    ->CreateBaseTable("Sales",
                                      Schema({{"productId", ValueType::kInt64},
                                              {"price", ValueType::kDouble},
                                              {"profit", ValueType::kDouble},
                                              {"revenue", ValueType::kDouble}}))
                    .ok());
    // 4 products; revenue/profit chosen so scaled positions are easy:
    // domain [0,100] -> range [0,200], so value v lands at pixel 2v.
    std::vector<Row> rows = {
        {Value::Int(1), Value::Double(10), Value::Double(10), Value::Double(10)},
        {Value::Int(2), Value::Double(20), Value::Double(30), Value::Double(30)},
        {Value::Int(3), Value::Double(30), Value::Double(60), Value::Double(60)},
        {Value::Int(4), Value::Double(40), Value::Double(90), Value::Double(90)},
    };
    ASSERT_TRUE(engine_->Insert("Sales", rows).ok());
    ASSERT_TRUE(engine_->CreateScale("scale_x", 0, 100, 0, 200).ok());
    ASSERT_TRUE(engine_->CreateScale("scale_y", 0, 100, 0, 200).ok());
  }

  size_t CountFill(const std::string& fill) {
    const Table* points = engine_->GetTable("SPLOT_POINTS").value();
    size_t idx = points->schema().FindColumn("fill").value();
    size_t n = 0;
    for (const Row& row : points->rows()) {
      if (row[idx].string_value() == fill) ++n;
    }
    return n;
  }

  std::unique_ptr<Dvms> engine_;
};

TEST_F(DvmsTest, StaticVisualizationRendersAllPoints) {
  ASSERT_TRUE(engine_->LoadProgram(kBrushingProgram).ok());
  const Table* points = engine_->GetTable("SPLOT_POINTS").value();
  EXPECT_EQ(points->num_rows(), 4u);
  EXPECT_EQ(CountFill("gray"), 4u);
  // Product 1 at (20, 20) is painted gray.
  RGBA gray = ParseColor("gray").value();
  EXPECT_EQ(engine_->pixels().At(20, 20), gray);
  // Product 4 at (180, 180).
  EXPECT_EQ(engine_->pixels().At(180, 180), gray);
}

TEST_F(DvmsTest, BrushSelectsPointsInsideRectangle) {
  ASSERT_TRUE(engine_->LoadProgram(kBrushingProgram).ok());
  // Drag from (10, 10) to (100, 100): covers products 1 (20,20) and
  // 2 (60,60), not 3 (120,120) or 4 (180,180).
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseDown(0, 10, 10)).ok());
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseMove(1, 50, 50)).ok());
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseMove(2, 100, 100)).ok());

  const Table* selected = engine_->GetTable("selected").value();
  EXPECT_EQ(selected->num_rows(), 2u);
  EXPECT_EQ(CountFill("red"), 2u);
  EXPECT_EQ(CountFill("gray"), 2u);
  // Pixels update during the uncommitted interaction (the paper's point
  // about exposing uncommitted state).
  RGBA red = ParseColor("red").value();
  EXPECT_EQ(engine_->pixels().At(20, 20), red);
  EXPECT_EQ(engine_->pixels().At(180, 180), ParseColor("gray").value());

  // Release commits the interaction.
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseUp(3, 100, 100)).ok());
  EXPECT_EQ(engine_->stats().transactions_committed, 1u);
  EXPECT_EQ(CountFill("red"), 2u);
}

TEST_F(DvmsTest, ShrinkingBrushDeselects) {
  ASSERT_TRUE(engine_->LoadProgram(kBrushingProgram).ok());
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseDown(0, 10, 10)).ok());
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseMove(1, 150, 150)).ok());
  EXPECT_EQ(CountFill("red"), 3u);
  // Shrink the box: only product 1 remains inside.
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseMove(2, 30, 30)).ok());
  EXPECT_EQ(CountFill("red"), 1u);
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseUp(3, 30, 30)).ok());
}

TEST_F(DvmsTest, AbortRollsBackToPreInteractionState) {
  ASSERT_TRUE(engine_->LoadProgram(kBrushingProgram).ok());
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseDown(0, 10, 10)).ok());
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseMove(1, 100, 100)).ok());
  EXPECT_EQ(CountFill("red"), 2u);
  // A second MOUSE_DOWN cannot extend the pattern: reject -> rollback.
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseDown(2, 11, 11)).ok());
  EXPECT_EQ(engine_->stats().transactions_aborted, 1u);
  EXPECT_EQ(engine_->GetTable("C").value()->num_rows(), 0u);
  EXPECT_EQ(CountFill("red"), 0u);
  EXPECT_EQ(CountFill("gray"), 4u);
  RGBA gray = ParseColor("gray").value();
  EXPECT_EQ(engine_->pixels().At(20, 20), gray);
}

TEST_F(DvmsTest, SecondInteractionReplacesSelection) {
  ASSERT_TRUE(engine_->LoadProgram(kBrushingProgram).ok());
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseDown(0, 10, 10)).ok());
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseMove(1, 100, 100)).ok());
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseUp(2, 100, 100)).ok());
  EXPECT_EQ(CountFill("red"), 2u);
  // Select just product 4.
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseDown(3, 170, 170)).ok());
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseMove(4, 190, 190)).ok());
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseUp(5, 190, 190)).ok());
  EXPECT_EQ(CountFill("red"), 1u);
  const Table* selected = engine_->GetTable("selected").value();
  ASSERT_EQ(selected->num_rows(), 1u);
  EXPECT_EQ(selected->row(0)[0].int_value(), 4);
}

TEST_F(DvmsTest, QueryAdHoc) {
  ASSERT_TRUE(engine_->LoadProgram(kBrushingProgram).ok());
  Table t = engine_
                ->Query("SELECT COUNT(*) AS n FROM SPLOT_POINTS")
                .value();
  EXPECT_EQ(t.At(0, "n").value().int_value(), 4);
}

TEST_F(DvmsTest, InsertPropagatesThroughViews) {
  ASSERT_TRUE(engine_->LoadProgram(kBrushingProgram).ok());
  ASSERT_TRUE(engine_
                  ->Insert("Sales", {{Value::Int(5), Value::Double(50),
                                      Value::Double(50), Value::Double(50)}})
                  .ok());
  EXPECT_EQ(engine_->GetTable("SPLOT_POINTS").value()->num_rows(), 5u);
  // The new point renders at (100, 100).
  EXPECT_EQ(engine_->pixels().At(100, 100), ParseColor("gray").value());
}

TEST_F(DvmsTest, StatsTracked) {
  ASSERT_TRUE(engine_->LoadProgram(kBrushingProgram).ok());
  ASSERT_TRUE(engine_->PushEvents({InputEvent::MouseDown(0, 10, 10),
                                   InputEvent::MouseMove(1, 50, 50),
                                   InputEvent::MouseUp(2, 50, 50)})
                  .ok());
  EXPECT_EQ(engine_->stats().events_processed, 3u);
  EXPECT_EQ(engine_->stats().transactions_started, 1u);
  EXPECT_EQ(engine_->stats().transactions_committed, 1u);
  EXPECT_GT(engine_->stats().renders, 0u);
}

TEST_F(DvmsTest, AnalyzeInteractionsWarnsOnOverlap) {
  ASSERT_TRUE(engine_->LoadProgram(kBrushingProgram).ok());
  ASSERT_TRUE(engine_
                  ->LoadProgram(
                      "CLICKS = EVENT MOUSE_DOWN AS D, MOUSE_UP AS U "
                      "RETURN (D.t, D.x, D.y);")
                  .ok());
  auto warnings = engine_->AnalyzeInteractions();
  ASSERT_FALSE(warnings.empty());
  EXPECT_NE(warnings[0].find("MOUSE_DOWN"), std::string::npos);
}

TEST_F(DvmsTest, LoadProgramErrorsSurfaceCleanly) {
  EXPECT_FALSE(engine_->LoadProgram("V = SELECT nothing FROM missing;").ok());
  EXPECT_FALSE(engine_->LoadProgram("garbage !!").ok());
}

}  // namespace
}  // namespace dvms
