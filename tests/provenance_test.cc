#include "core/dvms.h"
#include "parser/parser.h"
#include "provenance/trace.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

/// DeVIL 4: linked brushing expressed with provenance operations. B is the
/// backward-traced subset of Sales; the scatterplot and histogram both
/// partition Sales into {B, Sales MINUS B}.
const char* kProvenanceProgram = R"(
C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U
    RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
           (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);

SPLOT_POINTS = SELECT
    6 AS radius, 'gray' AS fill,
    linear_scale(Sales.revenue, 0, 100, 0, 200) AS center_x,
    linear_scale(Sales.profit, 0, 100, 0, 200) AS center_y
  FROM Sales;

BBOX = SELECT x AS x0, y AS y0, x + dx AS x1, y + dy AS y1
  FROM C ORDER BY t DESC LIMIT 1;

B = BACKWARD TRACE
  FROM SPLOT_POINTS@vnow-1 AS SP, BBOX
  WHERE in_rectangle(SP.center_x, SP.center_y,
                     BBOX.x0, BBOX.y0, BBOX.x1, BBOX.y1)
  TO Sales;

SPLOT_POINTS = SELECT
    6 AS radius, 'red' AS fill,
    linear_scale(B.revenue, 0, 100, 0, 200) AS center_x,
    linear_scale(B.profit, 0, 100, 0, 200) AS center_y
  FROM B
  UNION SELECT
    6 AS radius, 'gray' AS fill,
    linear_scale(S.revenue, 0, 100, 0, 200) AS center_x,
    linear_scale(S.profit, 0, 100, 0, 200) AS center_y
  FROM (Sales MINUS B) AS S;

P = render(SELECT * FROM SPLOT_POINTS);
)";

class ProvenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Dvms::Options options;
    options.canvas_width = 200;
    options.canvas_height = 200;
    options.capture_lineage = true;
    engine_ = std::make_unique<Dvms>(options);
    ASSERT_TRUE(engine_
                    ->CreateBaseTable("Sales",
                                      Schema({{"productId", ValueType::kInt64},
                                              {"profit", ValueType::kDouble},
                                              {"revenue", ValueType::kDouble}}))
                    .ok());
    std::vector<Row> rows = {
        {Value::Int(1), Value::Double(10), Value::Double(10)},
        {Value::Int(2), Value::Double(30), Value::Double(30)},
        {Value::Int(3), Value::Double(60), Value::Double(60)},
        {Value::Int(4), Value::Double(90), Value::Double(90)},
    };
    ASSERT_TRUE(engine_->Insert("Sales", rows).ok());
  }

  std::unique_ptr<Dvms> engine_;
};

TEST_F(ProvenanceTest, TraceViewRowsThroughFilterProject) {
  ASSERT_TRUE(engine_
                  ->LoadProgram(
                      "big = SELECT productId FROM Sales WHERE revenue > 25;")
                  .ok());
  // big rows: products 2, 3, 4 (view rows 0..2 -> Sales rows 1..3).
  auto rows = engine_->traces()
                  ->TraceViewRows("big", VersionRef::Current(), {0, 2},
                                  "Sales", TraceEngine::Mode::kEager)
                  .value();
  EXPECT_EQ(rows, (std::set<RowId>{1, 3}));
  // Lazy mode gives the same answer without stored lineage.
  auto lazy = engine_->traces()
                  ->TraceViewRows("big", VersionRef::Current(), {0, 2},
                                  "Sales", TraceEngine::Mode::kLazy)
                  .value();
  EXPECT_EQ(lazy, rows);
}

TEST_F(ProvenanceTest, TraceThroughAggregateFansOut) {
  ASSERT_TRUE(engine_
                  ->LoadProgram(
                      "tot = SELECT COUNT(*) AS n FROM Sales;")
                  .ok());
  auto rows = engine_->traces()
                  ->TraceViewRows("tot", VersionRef::Current(), {0}, "Sales",
                                  TraceEngine::Mode::kEager)
                  .value();
  EXPECT_EQ(rows.size(), 4u);  // the aggregate depends on every input row
}

TEST_F(ProvenanceTest, TraceThroughChainedViews) {
  ASSERT_TRUE(engine_
                  ->LoadProgram(
                      "big = SELECT productId, revenue FROM Sales "
                      "WHERE revenue > 25;"
                      "bigger = SELECT productId FROM big WHERE revenue > 70;")
                  .ok());
  auto rows = engine_->traces()
                  ->TraceViewRows("bigger", VersionRef::Current(), {0},
                                  "Sales", TraceEngine::Mode::kEager)
                  .value();
  EXPECT_EQ(rows, (std::set<RowId>{3}));
}

TEST_F(ProvenanceTest, DevilFourBackwardTraceBrushing) {
  ASSERT_TRUE(engine_->LoadProgram(kProvenanceProgram).ok());
  // Initially nothing is selected: B empty, all 4 points gray.
  EXPECT_EQ(engine_->GetTable("B").value()->num_rows(), 0u);
  EXPECT_EQ(engine_->GetTable("SPLOT_POINTS").value()->num_rows(), 4u);

  // Brush the region covering products 1 (20,20) and 2 (60,60).
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseDown(0, 10, 10)).ok());
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseMove(1, 100, 100)).ok());

  const Table* b = engine_->GetTable("B").value();
  ASSERT_EQ(b->num_rows(), 2u);
  // B holds full Sales rows (the paper: SPLOT_POINTS without productId
  // annotations, yet the trace recovers the records).
  EXPECT_EQ(b->schema().num_columns(), 3u);
  EXPECT_EQ(b->At(0, "productId").value().int_value(), 1);
  EXPECT_EQ(b->At(1, "productId").value().int_value(), 2);

  // The re-partitioned scatterplot colors the traced subset red.
  const Table* points = engine_->GetTable("SPLOT_POINTS").value();
  size_t fill_idx = points->schema().FindColumn("fill").value();
  size_t red = 0;
  for (const Row& row : points->rows()) {
    if (row[fill_idx].string_value() == "red") ++red;
  }
  EXPECT_EQ(red, 2u);
  EXPECT_EQ(engine_->pixels().At(20, 20), ParseColor("red").value());
  EXPECT_EQ(engine_->pixels().At(180, 180), ParseColor("gray").value());

  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseUp(2, 100, 100)).ok());
  EXPECT_EQ(engine_->stats().transactions_committed, 1u);
}

TEST_F(ProvenanceTest, ForwardTraceFromBaseRowsToView) {
  ASSERT_TRUE(engine_
                  ->LoadProgram(
                      "marks = SELECT productId, revenue FROM Sales "
                      "WHERE revenue > 25;")
                  .ok());
  auto program = ParseProgram(
                     "F = FORWARD TRACE FROM Sales WHERE productId = 3 "
                     "TO marks;")
                     .value();
  Table f = engine_->traces()
                ->Forward(program.statements[0].trace,
                          TraceEngine::Mode::kEager)
                .value();
  ASSERT_EQ(f.num_rows(), 1u);
  EXPECT_EQ(f.At(0, "productId").value().int_value(), 3);
}

TEST_F(ProvenanceTest, ForwardTraceThroughAggregate) {
  ASSERT_TRUE(engine_
                  ->LoadProgram(
                      "byband = SELECT floor(revenue / 50) AS band, "
                      "COUNT(*) AS n FROM Sales GROUP BY floor(revenue / 50);")
                  .ok());
  // Product 4 (revenue 90) only affects band 1.
  auto program =
      ParseProgram("F = FORWARD TRACE FROM Sales WHERE productId = 4 "
                   "TO byband;")
          .value();
  Table f = engine_->traces()
                ->Forward(program.statements[0].trace,
                          TraceEngine::Mode::kLazy)
                .value();
  ASSERT_EQ(f.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(f.At(0, "band").value().double_value(), 1.0);
}

TEST_F(ProvenanceTest, BackwardLineageIndexMatchesTraces) {
  ASSERT_TRUE(engine_
                  ->LoadProgram(
                      "big = SELECT productId FROM Sales WHERE revenue > 25;")
                  .ok());
  auto index = BackwardLineageIndex::Build(engine_->traces(), "big", 3,
                                           "Sales", TraceEngine::Mode::kEager)
                   .value();
  EXPECT_EQ(index.Lookup(0), (std::set<RowId>{1}));
  EXPECT_EQ(index.Lookup(2), (std::set<RowId>{3}));
  EXPECT_EQ(index.Lookup(99).size(), 0u);
  EXPECT_EQ(index.SizeEntries(), 3u);
}

TEST_F(ProvenanceTest, TraceToUnrelatedRelationIsEmpty) {
  ASSERT_TRUE(engine_
                  ->CreateBaseTable("Other", Schema({{"x", ValueType::kInt64}}))
                  .ok());
  ASSERT_TRUE(engine_->Insert("Other", {{Value::Int(1)}}).ok());
  ASSERT_TRUE(engine_
                  ->LoadProgram(
                      "big = SELECT productId FROM Sales WHERE revenue > 25;")
                  .ok());
  auto rows = engine_->traces()
                  ->TraceViewRows("big", VersionRef::Current(), {0}, "Other",
                                  TraceEngine::Mode::kEager)
                  .value();
  EXPECT_TRUE(rows.empty());
}

}  // namespace
}  // namespace dvms
