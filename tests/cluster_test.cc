// Fast, deterministic coverage of the cluster routing layer
// (src/cluster/cluster_client.h): staleness-bounded read routing with
// primary fallback, retry/backoff of transient failures under the budget,
// per-endpoint circuit breaker (trip, half-open probe, recovery),
// automatic failover with idempotent write-replay demotion against the
// acked LSN, the client-local dvms_cluster relation, request-context
// cancellation, and hedged-read accounting. The seeded multi-threaded
// chaos sweep lives in cluster_chaos_test.cc.

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_client.h"
#include "common/env.h"
#include "core/dvms.h"
#include "core/session.h"
#include "obs/trace.h"
#include "gtest/gtest.h"

namespace dvms {
namespace cluster {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static int counter = 0;
    path_ = fs::path(::testing::TempDir()) /
            ("dvms_cluster_" + tag + "_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

Dvms::Options PrimaryOptions(const std::string& dir) {
  Dvms::Options options;
  options.canvas_width = 64;
  options.canvas_height = 64;
  options.num_threads = 1;
  options.data_dir = dir;
  options.wal_fsync = "always";  // an acknowledged op is durable = tailable
  options.snapshot_interval = 0;
  return options;
}

Dvms::Options ReplicaOptions(const std::string& primary_dir) {
  Dvms::Options options;
  options.canvas_width = 64;
  options.canvas_height = 64;
  options.num_threads = 1;
  options.replica_of = primary_dir;
  options.replica_poll_ms = 1;
  return options;
}

/// Client tuned for test wall-clock: everything eligible for reads, short
/// backoffs, hedging off (tests that want it opt in).
ClusterOptions FastOptions() {
  ClusterOptions options;
  options.staleness_bound_frames = 1 << 20;
  options.max_attempts = 6;
  options.backoff_floor_ms = 1;
  options.backoff_cap_ms = 4;
  options.hedge_percentile = 0;  // 0 = disabled (-1 would resolve the env)
  options.breaker_failures = 3;
  options.breaker_cooldown_ms = 20;
  options.deadline_ms = 0;
  options.seed = 7;
  return options;
}

std::string Fingerprint(const Table& table) {
  std::ostringstream out;
  for (const Row& row : table.rows()) {
    for (const Value& v : row) out << v.ToString() << '|';
    out << '\n';
  }
  return out.str();
}

constexpr const char* kReadSql = "SELECT id, v FROM Sales ORDER BY id, v";

Status SeedViaClient(ClusterClient& client) {
  Schema schema({{"id", ValueType::kInt64}, {"v", ValueType::kDouble}});
  DVMS_RETURN_IF_ERROR(client.CreateBaseTable("Sales", schema));
  std::vector<Row> rows;
  for (int64_t i = 0; i < 20; ++i) {
    rows.push_back({Value::Int(i), Value::Double((i * 37) % 101)});
  }
  return client.Insert("Sales", std::move(rows));
}

void AwaitCaughtUp(Dvms& primary, Dvms& replica) {
  ASSERT_TRUE(primary.FlushWal().ok());
  const uint64_t target = primary.wal_lsn();
  const uint64_t applied = replica.WaitForReplicaLsn(target, 20000);
  ASSERT_GE(applied, target) << "replica never caught up to lsn " << target;
}

// ---------------------------------------------------------------------------

TEST(ClusterRoutingTest, ReplicasServeInBoundReads) {
  TempDir dir("route");
  Dvms primary(PrimaryOptions(dir.str()));
  ASSERT_TRUE(primary.recovery_status().ok());
  Dvms replica1(ReplicaOptions(dir.str()));
  Dvms replica2(ReplicaOptions(dir.str()));

  ClusterClient client(FastOptions());
  ASSERT_TRUE(client.AddEndpoint("p", &primary).ok());
  ASSERT_TRUE(client.AddEndpoint("r1", &replica1).ok());
  ASSERT_TRUE(client.AddEndpoint("r2", &replica2).ok());
  ASSERT_TRUE(SeedViaClient(client).ok());
  AwaitCaughtUp(primary, replica1);
  AwaitCaughtUp(primary, replica2);

  const std::string expected = Fingerprint(primary.Query(kReadSql).value());
  for (int i = 0; i < 8; ++i) {
    Result<Table> got = client.Query(kReadSql);
    ASSERT_TRUE(got.ok()) << got.status().message();
    EXPECT_EQ(Fingerprint(got.value()), expected);
  }
  const ClusterStats s = client.stats();
  // With both replicas eligible, the round-robin never falls back.
  EXPECT_EQ(s.reads_replica, 8u);
  EXPECT_EQ(s.reads_primary, 0u);
  EXPECT_EQ(s.staleness_violations, 0u);
  EXPECT_EQ(s.acked_lsn, primary.wal_lsn());
}

TEST(ClusterRoutingTest, StrictBoundFallsBackToPrimary) {
  TempDir dir("strict");
  Dvms primary(PrimaryOptions(dir.str()));
  ASSERT_TRUE(primary.recovery_status().ok());
  // Replicas that effectively never poll inside the test window: their LSN
  // stays at bootstrap, so a strict bound must exclude them.
  Dvms::Options lagged = ReplicaOptions(dir.str());
  lagged.replica_poll_ms = 10000;
  Dvms replica(lagged);

  ClusterOptions copts = FastOptions();
  copts.staleness_bound_frames = 0;  // read-your-acknowledged-writes
  ClusterClient client(copts);
  ASSERT_TRUE(client.AddEndpoint("p", &primary).ok());
  ASSERT_TRUE(client.AddEndpoint("r1", &replica).ok());
  ASSERT_TRUE(SeedViaClient(client).ok());

  for (int i = 0; i < 4; ++i) {
    Result<Table> got = client.Query(kReadSql);
    ASSERT_TRUE(got.ok()) << got.status().message();
  }
  const ClusterStats s = client.stats();
  EXPECT_EQ(s.reads_primary, 4u);
  EXPECT_EQ(s.reads_replica, 0u);
  EXPECT_GT(s.staleness_skips, 0u);
  EXPECT_EQ(s.staleness_violations, 0u);
}

TEST(ClusterRoutingTest, DegradedWriteRetriesUntilProbeHeals) {
  obs::ResetForTesting();
  obs::SetEnabled(true);
  TempDir dir("degraded");
  Dvms primary(PrimaryOptions(dir.str()));
  ASSERT_TRUE(primary.recovery_status().ok());

  ClusterOptions copts = FastOptions();
  copts.max_attempts = 100;
  copts.backoff_floor_ms = 2;
  copts.backoff_cap_ms = 10;
  ClusterClient client(copts);
  ASSERT_TRUE(client.AddEndpoint("p", &primary).ok());
  ASSERT_TRUE(SeedViaClient(client).ok());

  // Every write/fsync fails with ENOSPC until the disk "frees up".
  IoFaultConfig config =
      ParseIoFaultSpec("11:1.0:write,fsync,enospc").value();
  FaultEnv fault_env(env::Posix(), config);
  ScopedEnv scoped(&fault_env);
  std::thread healer([&fault_env] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    fault_env.Disarm();
  });
  Status st =
      client.Insert("Sales", {{Value::Int(100), Value::Double(1.0)}});
  healer.join();
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_GT(client.stats().write_retries, 0u);

  Result<Table> row =
      client.Query("SELECT id FROM Sales WHERE id = 100");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value().num_rows(), 1u);

  // Satellite: the degraded rejections CheckWritable produced while the
  // disk was sick are visible as a dvms_metrics counter.
  Table metric =
      Session(&primary)
          .Query("SELECT count FROM dvms_metrics "
                 "WHERE name = 'engine.rejected_storage_degraded'")
          .value();
  ASSERT_EQ(metric.num_rows(), 1u);
  EXPECT_GE(metric.At(0, "count").value().int_value(), 1);
  obs::SetEnabled(false);
  obs::ResetForTesting();
}

TEST(ClusterRoutingTest, ReadOnlyReplicaRejectionsAreCounted) {
  obs::ResetForTesting();
  obs::SetEnabled(true);
  TempDir dir("roreject");
  Dvms primary(PrimaryOptions(dir.str()));
  ASSERT_TRUE(primary.recovery_status().ok());
  ASSERT_TRUE(primary.CreateBaseTable(
                         "Sales", Schema({{"id", ValueType::kInt64}}))
                  .ok());
  Dvms replica(ReplicaOptions(dir.str()));
  ASSERT_TRUE(replica.recovery_status().ok());

  for (int i = 0; i < 3; ++i) {
    Status st = replica.Insert("Sales", {{Value::Int(i)}});
    EXPECT_EQ(st.code(), StatusCode::kReadOnlyReplica);
  }
  Table metric =
      Session(&replica)
          .Query("SELECT count FROM dvms_metrics "
                 "WHERE name = 'engine.rejected_readonly_replica'")
          .value();
  ASSERT_EQ(metric.num_rows(), 1u);
  EXPECT_GE(metric.At(0, "count").value().int_value(), 3);
  obs::SetEnabled(false);
  obs::ResetForTesting();
}

TEST(ClusterRoutingTest, BreakerTripsThenHalfOpenProbeRecovers) {
  TempDir dir("breaker");
  Dvms primary(PrimaryOptions(dir.str()));
  ASSERT_TRUE(primary.recovery_status().ok());

  ClusterOptions copts = FastOptions();
  copts.max_attempts = 3;
  copts.backoff_floor_ms = 1;
  copts.backoff_cap_ms = 2;
  copts.breaker_failures = 3;
  copts.breaker_cooldown_ms = 20;
  ClusterClient client(copts);
  ASSERT_TRUE(client.AddEndpoint("p", &primary).ok());
  ASSERT_TRUE(SeedViaClient(client).ok());

  IoFaultConfig config =
      ParseIoFaultSpec("13:1.0:write,fsync,enospc").value();
  FaultEnv fault_env(env::Posix(), config);
  ScopedEnv scoped(&fault_env);

  // Three consecutive endpoint-attributable write failures trip the
  // primary's breaker.
  Status st = client.Insert("Sales", {{Value::Int(200), Value::Double(0)}});
  ASSERT_FALSE(st.ok());
  ClusterStats s = client.stats();
  EXPECT_EQ(s.breaker_trips, 1u);

  // While the breaker is open (cooldown not elapsed), reads fail fast with
  // kUnavailable instead of queueing on the sick endpoint.
  Result<Table> blocked = client.Query(kReadSql);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kUnavailable);

  // Past the cooldown, exactly one half-open probe is let through; reads
  // stay available on a degraded engine, so the probe succeeds and closes
  // the breaker.
  fault_env.Disarm();
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  Result<Table> probe = client.Query(kReadSql);
  ASSERT_TRUE(probe.ok()) << probe.status().message();
  s = client.stats();
  EXPECT_GE(s.breaker_half_open_probes, 1u);
  EXPECT_GE(s.breaker_recoveries, 1u);
  const std::vector<EndpointHealth> health = client.endpoint_health();
  ASSERT_EQ(health.size(), 1u);
  EXPECT_EQ(health[0].breaker, BreakerState::kClosed);

  // Writes recover too once the engine's own space probe re-enables them.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  Status write = Status::Internal("not attempted");
  while (std::chrono::steady_clock::now() < deadline) {
    write = client.Insert("Sales", {{Value::Int(201), Value::Double(0)}});
    if (write.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(write.ok()) << write.message();
}

TEST(ClusterFailoverTest, PromotesReplicaAndReroutesWrites) {
  TempDir dir("failover");
  auto primary = std::make_unique<Dvms>(PrimaryOptions(dir.str()));
  ASSERT_TRUE(primary->recovery_status().ok());
  Dvms replica(ReplicaOptions(dir.str()));
  ASSERT_TRUE(replica.recovery_status().ok());

  ClusterClient client(FastOptions());
  ASSERT_TRUE(client.AddEndpoint("p", primary.get()).ok());
  ASSERT_TRUE(client.AddEndpoint("r1", &replica).ok());
  ASSERT_TRUE(SeedViaClient(client).ok());
  AwaitCaughtUp(*primary, replica);
  const uint64_t acked_before = client.acked_lsn();

  // Kill the primary: detach (drains in-flight calls), then destroy.
  ASSERT_TRUE(client.DetachEndpoint("p").ok());
  primary.reset();

  // The next write triggers automatic failover onto the replica.
  Status st = client.Insert("Sales", {{Value::Int(500), Value::Double(5)}});
  ASSERT_TRUE(st.ok()) << st.message();
  const ClusterStats s = client.stats();
  EXPECT_EQ(s.failovers, 1u);
  EXPECT_FALSE(replica.is_replica());
  EXPECT_EQ(client.PrimaryName().value(), "r1");
  EXPECT_GT(client.acked_lsn(), acked_before);

  // Reads keep flowing through the promoted primary; nothing was lost.
  Result<Table> all = client.Query("SELECT id FROM Sales ORDER BY id");
  ASSERT_TRUE(all.ok()) << all.status().message();
  EXPECT_EQ(all.value().num_rows(), 21u);  // 20 seeded + the failover write
}

TEST(ClusterFailoverTest, SuppressesReplayOfCommitWhoseAckWasLost) {
  TempDir dir("replay");
  auto primary = std::make_unique<Dvms>(PrimaryOptions(dir.str()));
  ASSERT_TRUE(primary->recovery_status().ok());
  Dvms replica(ReplicaOptions(dir.str()));
  ASSERT_TRUE(replica.recovery_status().ok());

  ClusterOptions copts = FastOptions();
  // Generous gap between attempts so the killer thread detaches the
  // primary before the retry runs.
  copts.backoff_floor_ms = 100;
  copts.backoff_cap_ms = 100;
  ClusterClient client(copts);
  ASSERT_TRUE(client.AddEndpoint("p", primary.get()).ok());
  ASSERT_TRUE(client.AddEndpoint("r1", &replica).ok());
  ASSERT_TRUE(SeedViaClient(client).ok());

  // The classic ambiguous failure: the commit reaches the log, the
  // acknowledgement does not. Modeled by an op that commits and then
  // reports a transport error; the primary dies before the retry.
  std::atomic<int> calls{0};
  std::promise<void> committed;
  std::thread killer([&] {
    committed.get_future().wait();
    ASSERT_TRUE(client.DetachEndpoint("p").ok());
    primary.reset();
  });
  Status st = client.Write("flaky-insert", [&](Dvms& engine) {
    const int call = ++calls;
    Status inner =
        engine.Insert("Sales", {{Value::Int(999), Value::Double(9)}});
    if (call == 1 && inner.ok()) {
      committed.set_value();
      return Status::Unavailable("simulated lost acknowledgement");
    }
    return inner;
  });
  killer.join();

  // The failover found the committed frame beyond the acked LSN and
  // demoted the retry into an acknowledgement: the op ran exactly once.
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(calls.load(), 1);
  const ClusterStats s = client.stats();
  EXPECT_EQ(s.failovers, 1u);
  EXPECT_EQ(s.write_replays_suppressed, 1u);
  Result<Table> rows =
      client.Query("SELECT id FROM Sales WHERE id = 999");
  ASSERT_TRUE(rows.ok()) << rows.status().message();
  EXPECT_EQ(rows.value().num_rows(), 1u);  // at-most-once under ack loss
}

TEST(ClusterObsTest, ClusterRelationIsQueryable) {
  TempDir dir("obs");
  Dvms primary(PrimaryOptions(dir.str()));
  ASSERT_TRUE(primary.recovery_status().ok());
  ClusterClient client(FastOptions());
  ASSERT_TRUE(client.AddEndpoint("p", &primary).ok());
  ASSERT_TRUE(SeedViaClient(client).ok());
  ASSERT_TRUE(client.Query(kReadSql).ok());

  // Global counters: endpoint = ''.
  Result<Table> routed = client.Query(
      "SELECT value FROM dvms_cluster "
      "WHERE endpoint = '' AND name = 'reads_routed'");
  ASSERT_TRUE(routed.ok()) << routed.status().message();
  ASSERT_EQ(routed.value().num_rows(), 1u);
  EXPECT_GE(routed.value().At(0, "value").value().int_value(), 1);

  // Per-endpoint health rows.
  Result<Table> attached = client.Query(
      "SELECT value FROM dvms_cluster "
      "WHERE endpoint = 'p' AND name = 'attached'");
  ASSERT_TRUE(attached.ok());
  ASSERT_EQ(attached.value().num_rows(), 1u);
  EXPECT_EQ(attached.value().At(0, "value").value().int_value(), 1);

  // Aggregation over the relation works (it is a real relation in the
  // planner's eyes, just client-local).
  Result<Table> count =
      client.Query("SELECT COUNT(*) AS n FROM dvms_cluster");
  ASSERT_TRUE(count.ok());
  EXPECT_GT(count.value().At(0, "n").value().int_value(), 20);

  // dvms_cluster lives in the client, engine relations in the fleet; a
  // join cannot be served from either side.
  Result<Table> mixed =
      client.Query("SELECT * FROM dvms_cluster, Sales");
  ASSERT_FALSE(mixed.ok());
  EXPECT_EQ(mixed.status().code(), StatusCode::kUnsupported);
  Result<Table> explain =
      client.Query("EXPLAIN SELECT * FROM dvms_cluster");
  ASSERT_FALSE(explain.ok());
  EXPECT_EQ(explain.status().code(), StatusCode::kUnsupported);
}

TEST(ClusterRoutingTest, RequestContextCancelShortCircuits) {
  TempDir dir("cancel");
  Dvms primary(PrimaryOptions(dir.str()));
  ASSERT_TRUE(primary.recovery_status().ok());
  ClusterClient client(FastOptions());
  ASSERT_TRUE(client.AddEndpoint("p", &primary).ok());
  ASSERT_TRUE(SeedViaClient(client).ok());

  RequestContext ctx;
  ctx.RequestCancel();
  Result<Table> r = client.Query(kReadSql, &ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_GE(client.stats().cancelled, 1u);

  // The cancel token is per-request state: after the abort consumed it,
  // the same context serves the next read normally (mirroring Session's
  // consume-on-abort semantics).
  ctx.cancel->store(false);
  Result<Table> again = client.Query(kReadSql, &ctx);
  EXPECT_TRUE(again.ok()) << again.status().message();
}

TEST(ClusterRoutingTest, HedgedReadAccountingStaysConsistent) {
  TempDir dir("hedge");
  Dvms primary(PrimaryOptions(dir.str()));
  ASSERT_TRUE(primary.recovery_status().ok());
  Dvms replica1(ReplicaOptions(dir.str()));
  Dvms replica2(ReplicaOptions(dir.str()));

  ClusterOptions copts = FastOptions();
  copts.hedge_percentile = 50;  // hedge anything beyond the median
  copts.hedge_min_samples = 4;
  ClusterClient client(copts);
  ASSERT_TRUE(client.AddEndpoint("p", &primary).ok());
  ASSERT_TRUE(client.AddEndpoint("r1", &replica1).ok());
  ASSERT_TRUE(client.AddEndpoint("r2", &replica2).ok());
  ASSERT_TRUE(SeedViaClient(client).ok());
  AwaitCaughtUp(primary, replica1);
  AwaitCaughtUp(primary, replica2);

  const std::string expected = Fingerprint(primary.Query(kReadSql).value());
  for (int i = 0; i < 100; ++i) {
    Result<Table> got = client.Query(kReadSql);
    ASSERT_TRUE(got.ok()) << got.status().message();
    EXPECT_EQ(Fingerprint(got.value()), expected);
  }
  // Let any backup still in flight settle, then the books must balance:
  // every launched hedge either won or lost, nothing leaks.
  ClusterStats s = client.stats();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (s.hedges_won + s.hedges_lost < s.hedges_launched &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    s = client.stats();
  }
  EXPECT_EQ(s.hedges_won + s.hedges_lost, s.hedges_launched);
  EXPECT_EQ(s.staleness_violations, 0u);
}

}  // namespace
}  // namespace cluster
}  // namespace dvms
