#include <memory>

#include "expr/eval.h"
#include "query/binder.h"
#include "query/executor.h"
#include "query/plan.h"
#include "storage/catalog.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    udfs_ = UdfRegistry::WithBuiltins();
    auto sales = catalog_
                     .CreateTable("Sales",
                                  Schema({{"productId", ValueType::kInt64},
                                          {"price", ValueType::kDouble},
                                          {"profit", ValueType::kDouble},
                                          {"revenue", ValueType::kDouble}}),
                                  RelationKind::kBase)
                     .value();
    // 4 products.
    ASSERT_TRUE(sales
                    ->Append({Value::Int(1), Value::Double(10), Value::Double(1),
                              Value::Double(100)})
                    .ok());
    ASSERT_TRUE(sales
                    ->Append({Value::Int(2), Value::Double(20), Value::Double(4),
                              Value::Double(200)})
                    .ok());
    ASSERT_TRUE(sales
                    ->Append({Value::Int(3), Value::Double(30), Value::Double(9),
                              Value::Double(300)})
                    .ok());
    ASSERT_TRUE(sales
                    ->Append({Value::Int(4), Value::Double(40), Value::Double(16),
                              Value::Double(100)})
                    .ok());

    auto regions =
        catalog_
            .CreateTable("Regions",
                         Schema({{"productId", ValueType::kInt64},
                                 {"region", ValueType::kString}}),
                         RelationKind::kBase)
            .value();
    ASSERT_TRUE(regions->Append({Value::Int(1), Value::String("east")}).ok());
    ASSERT_TRUE(regions->Append({Value::Int(2), Value::String("west")}).ok());
    ASSERT_TRUE(regions->Append({Value::Int(3), Value::String("east")}).ok());
    // productId 4 has no region row (tests inner-join semantics).
  }

  Result<Table> Run(PlanPtr plan) {
    CatalogSchemaResolver resolver(&catalog_);
    Binder binder(&resolver, &udfs_);
    DVMS_RETURN_IF_ERROR(binder.Bind(plan.get()));
    Executor exec(&catalog_, &udfs_);
    return exec.ExecuteToTable(*plan);
  }

  Catalog catalog_;
  UdfRegistry udfs_;
};

TEST_F(ExecutorTest, ScanReturnsAllRows) {
  Table t = Run(MakeScan("Sales")).value();
  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.schema().num_columns(), 4u);
}

TEST_F(ExecutorTest, ScanUnknownRelationFails) {
  auto r = Run(MakeScan("Nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(ExecutorTest, FilterByPredicate) {
  auto plan = MakeFilter(MakeScan("Sales"),
                         MakeBinary(BinaryOp::kGt, MakeColumnRef("price"),
                                    MakeLiteral(Value::Double(15))));
  Table t = Run(plan).value();
  EXPECT_EQ(t.num_rows(), 3u);
}

TEST_F(ExecutorTest, ProjectComputesExpressions) {
  auto plan = MakeProject(
      MakeScan("Sales"),
      {MakeColumnRef("productId"),
       MakeBinary(BinaryOp::kMul, MakeColumnRef("price"),
                  MakeLiteral(Value::Double(2.0)))},
      {"id", "double_price"});
  Table t = Run(plan).value();
  ASSERT_EQ(t.num_rows(), 4u);
  EXPECT_DOUBLE_EQ(t.At(0, "double_price").value().double_value(), 20.0);
  EXPECT_TRUE(t.schema().FindColumn("id").has_value());
}

TEST_F(ExecutorTest, ProjectWithUdf) {
  // linear_scale(revenue, 0, 400, 0, 100)
  auto plan = MakeProject(
      MakeScan("Sales"),
      {MakeCall("linear_scale",
                {MakeColumnRef("revenue"), MakeLiteral(Value::Double(0)),
                 MakeLiteral(Value::Double(400)), MakeLiteral(Value::Double(0)),
                 MakeLiteral(Value::Double(100))})},
      {"x"});
  Table t = Run(plan).value();
  EXPECT_DOUBLE_EQ(t.row(0)[0].double_value(), 25.0);
  EXPECT_DOUBLE_EQ(t.row(2)[0].double_value(), 75.0);
}

TEST_F(ExecutorTest, HashJoinOnEquiKey) {
  auto plan = MakeJoin(
      MakeScan("Sales"), MakeScan("Regions"),
      {{MakeColumnRef("Sales", "productId"),
        MakeColumnRef("Regions", "productId")}});
  Table t = Run(plan).value();
  EXPECT_EQ(t.num_rows(), 3u);  // product 4 drops out
  EXPECT_EQ(t.schema().num_columns(), 6u);
}

TEST_F(ExecutorTest, CrossJoinWithResidual) {
  auto pred = MakeBinary(BinaryOp::kEq, MakeColumnRef("Sales", "productId"),
                         MakeColumnRef("Regions", "productId"));
  auto plan = MakeJoin(MakeScan("Sales"), MakeScan("Regions"), {}, pred);
  Table t = Run(plan).value();
  EXPECT_EQ(t.num_rows(), 3u);
}

TEST_F(ExecutorTest, GroupByAggregate) {
  // SELECT region, SUM(revenue), COUNT(*) FROM Sales JOIN Regions GROUP BY region
  auto join = MakeJoin(MakeScan("Sales"), MakeScan("Regions"),
                       {{MakeColumnRef("Sales", "productId"),
                         MakeColumnRef("Regions", "productId")}});
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFunc::kSum, MakeColumnRef("revenue"), false, "total"});
  AggSpec count_spec;
  count_spec.func = AggFunc::kCount;
  count_spec.count_star = true;
  count_spec.output_name = "n";
  aggs.push_back(count_spec);
  auto plan =
      MakeAggregate(join, {MakeColumnRef("region")}, {"region"}, std::move(aggs));
  Table t = Run(plan).value();
  ASSERT_EQ(t.num_rows(), 2u);
  // Sorted by group key: east before west.
  EXPECT_EQ(t.row(0)[0].string_value(), "east");
  EXPECT_DOUBLE_EQ(t.row(0)[1].double_value(), 400.0);
  EXPECT_EQ(t.row(0)[2].int_value(), 2);
  EXPECT_EQ(t.row(1)[0].string_value(), "west");
  EXPECT_DOUBLE_EQ(t.row(1)[1].double_value(), 200.0);
}

TEST_F(ExecutorTest, GlobalAggregateOnEmptyInputYieldsOneRow) {
  auto empty = MakeFilter(MakeScan("Sales"),
                          MakeLiteral(Value::Bool(false)));
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFunc::kMin, MakeColumnRef("price"), false, "lo"});
  AggSpec count_spec;
  count_spec.func = AggFunc::kCount;
  count_spec.count_star = true;
  count_spec.output_name = "n";
  aggs.push_back(count_spec);
  auto plan = MakeAggregate(empty, {}, {}, std::move(aggs));
  Table t = Run(plan).value();
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_TRUE(t.row(0)[0].is_null());
  EXPECT_EQ(t.row(0)[1].int_value(), 0);
}

TEST_F(ExecutorTest, AggregateMinMaxAvg) {
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFunc::kMin, MakeColumnRef("price"), false, "lo"});
  aggs.push_back({AggFunc::kMax, MakeColumnRef("price"), false, "hi"});
  aggs.push_back({AggFunc::kAvg, MakeColumnRef("price"), false, "avg"});
  auto plan = MakeAggregate(MakeScan("Sales"), {}, {}, std::move(aggs));
  Table t = Run(plan).value();
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(t.row(0)[0].double_value(), 10.0);
  EXPECT_DOUBLE_EQ(t.row(0)[1].double_value(), 40.0);
  EXPECT_DOUBLE_EQ(t.row(0)[2].double_value(), 25.0);
}

TEST_F(ExecutorTest, UnionDistinctDeduplicates) {
  auto a = MakeProject(MakeScan("Sales"), {MakeColumnRef("revenue")}, {"r"});
  auto b = MakeProject(MakeScan("Sales"), {MakeColumnRef("revenue")}, {"r"});
  auto plan = MakeUnion({a, b}, /*distinct=*/true);
  Table t = Run(plan).value();
  // revenues are 100,200,300,100 -> distinct {100,200,300}
  EXPECT_EQ(t.num_rows(), 3u);
}

TEST_F(ExecutorTest, UnionAllKeepsDuplicates) {
  auto a = MakeProject(MakeScan("Sales"), {MakeColumnRef("revenue")}, {"r"});
  auto b = MakeProject(MakeScan("Sales"), {MakeColumnRef("revenue")}, {"r"});
  auto plan = MakeUnion({a, b}, /*distinct=*/false);
  Table t = Run(plan).value();
  EXPECT_EQ(t.num_rows(), 8u);
}

TEST_F(ExecutorTest, MinusRemovesMatchingRows) {
  auto all = MakeProject(MakeScan("Sales"), {MakeColumnRef("productId")}, {"p"});
  auto some = MakeProject(
      MakeFilter(MakeScan("Sales"),
                 MakeBinary(BinaryOp::kLe, MakeColumnRef("productId"),
                            MakeLiteral(Value::Int(2)))),
      {MakeColumnRef("productId")}, {"p"});
  auto plan = MakeMinus(all, some);
  Table t = Run(plan).value();
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST_F(ExecutorTest, OrderByDescendingAndLimit) {
  auto plan = MakeLimit(
      MakeOrderBy(MakeScan("Sales"), {MakeColumnRef("price")}, {true}), 2);
  Table t = Run(plan).value();
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(t.At(0, "price").value().double_value(), 40.0);
  EXPECT_DOUBLE_EQ(t.At(1, "price").value().double_value(), 30.0);
}

TEST_F(ExecutorTest, InRelationPredicate) {
  // selected(productId) = {2, 3}; then Sales WHERE productId IN selected.
  auto selected = catalog_
                      .CreateTable("selected",
                                   Schema({{"productId", ValueType::kInt64}}),
                                   RelationKind::kView)
                      .value();
  ASSERT_TRUE(selected->Append({Value::Int(2)}).ok());
  ASSERT_TRUE(selected->Append({Value::Int(3)}).ok());

  auto plan = MakeFilter(
      MakeScan("Sales"),
      MakeInRelation(MakeColumnRef("productId"), "selected", false));
  Table t = Run(plan).value();
  EXPECT_EQ(t.num_rows(), 2u);

  auto not_plan = MakeFilter(
      MakeScan("Sales"),
      MakeInRelation(MakeColumnRef("productId"), "selected", true));
  Table t2 = Run(not_plan).value();
  EXPECT_EQ(t2.num_rows(), 2u);
}

TEST_F(ExecutorTest, BinderRejectsUnknownColumn) {
  auto plan = MakeFilter(MakeScan("Sales"),
                         MakeBinary(BinaryOp::kGt, MakeColumnRef("nope"),
                                    MakeLiteral(Value::Int(0))));
  auto r = Run(plan);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

TEST_F(ExecutorTest, BinderRejectsAmbiguousColumn) {
  auto join = MakeJoin(MakeScan("Sales"), MakeScan("Regions"), {});
  auto plan = MakeFilter(join, MakeBinary(BinaryOp::kGt,
                                          MakeColumnRef("productId"),
                                          MakeLiteral(Value::Int(0))));
  auto r = Run(plan);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("ambiguous"), std::string::npos);
}

TEST_F(ExecutorTest, BinderRejectsIncompatibleUnion) {
  auto a = MakeProject(MakeScan("Sales"), {MakeColumnRef("productId")}, {"x"});
  auto b = MakeProject(MakeScan("Regions"), {MakeColumnRef("region")}, {"x"});
  auto r = Run(MakeUnion({a, b}));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

TEST_F(ExecutorTest, BinderRejectsAggregateInFilter) {
  auto plan = MakeFilter(
      MakeScan("Sales"),
      MakeBinary(BinaryOp::kGt, MakeAggregate(AggFunc::kSum, MakeColumnRef("price")),
                 MakeLiteral(Value::Int(0))));
  auto r = Run(plan);
  EXPECT_FALSE(r.ok());
}

TEST_F(ExecutorTest, ScanOfPastVersion) {
  auto sales = catalog_.Get("Sales").value();
  sales->Commit();  // version with 4 rows
  ASSERT_TRUE(sales
                  ->Append({Value::Int(5), Value::Double(50), Value::Double(25),
                            Value::Double(500)})
                  .ok());
  Table now = Run(MakeScan("Sales")).value();
  EXPECT_EQ(now.num_rows(), 5u);
  Table past = Run(MakeScan("Sales", VersionRef::Vnow(1))).value();
  EXPECT_EQ(past.num_rows(), 4u);
}

TEST_F(ExecutorTest, LineageCapturedThroughFilterProject) {
  auto plan = MakeProject(
      MakeFilter(MakeScan("Sales"),
                 MakeBinary(BinaryOp::kGe, MakeColumnRef("price"),
                            MakeLiteral(Value::Double(30)))),
      {MakeColumnRef("productId")}, {"p"});
  CatalogSchemaResolver resolver(&catalog_);
  Binder binder(&resolver, &udfs_);
  ASSERT_TRUE(binder.Bind(plan.get()).ok());
  Executor exec(&catalog_, &udfs_);
  ExecOptions opts;
  opts.capture_lineage = true;
  auto result = exec.Execute(*plan, opts).value();
  ASSERT_EQ(result->table.num_rows(), 2u);
  ASSERT_TRUE(result->has_lineage);
  // Project row 0 -> filter row 0 -> scan row 2 (price 30).
  ASSERT_EQ(result->lineage[0].size(), 1u);
  EXPECT_EQ(result->lineage[0][0].row, 0u);
  const NodeResult* filter = result->children[0].get();
  EXPECT_EQ(filter->lineage[0][0].row, 2u);
}

TEST_F(ExecutorTest, LineageOfAggregateListsAllContributors) {
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFunc::kSum, MakeColumnRef("revenue"), false, "total"});
  auto plan = MakeAggregate(MakeScan("Sales"), {MakeColumnRef("revenue")},
                            {"rev"}, std::move(aggs));
  CatalogSchemaResolver resolver(&catalog_);
  Binder binder(&resolver, &udfs_);
  ASSERT_TRUE(binder.Bind(plan.get()).ok());
  Executor exec(&catalog_, &udfs_);
  ExecOptions opts;
  opts.capture_lineage = true;
  auto result = exec.Execute(*plan, opts).value();
  // Groups sorted by revenue: 100 (rows 0 and 3), 200, 300.
  ASSERT_EQ(result->table.num_rows(), 3u);
  EXPECT_EQ(result->lineage[0].size(), 2u);
  EXPECT_EQ(result->lineage[1].size(), 1u);
}

TEST_F(ExecutorTest, PlanToStringMentionsOperators) {
  auto plan = MakeFilter(MakeScan("Sales"),
                         MakeBinary(BinaryOp::kGt, MakeColumnRef("price"),
                                    MakeLiteral(Value::Double(15))));
  std::string s = plan->ToString();
  EXPECT_NE(s.find("Filter"), std::string::npos);
  EXPECT_NE(s.find("Scan Sales"), std::string::npos);
}

}  // namespace
}  // namespace dvms
