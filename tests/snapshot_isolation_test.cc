// Snapshot-read invariants: a session pinned at epoch e observes a
// bit-identical table state before, during, and after concurrent mutation
// units commit, abort on a governor deadline, or roll back from an
// injected storage fault — and epoch garbage collection (shared_ptr
// reclamation of retired EngineSnapshotViews) can never touch an epoch a
// session still pins. The ASan+UBSan ci leg re-runs this suite to verify
// the GC claim at the allocator level, not just through the counters.

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault.h"
#include "core/dvms.h"
#include "core/session.h"
#include "governor/governor.h"
#include "parser/parser.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

constexpr const char* kReadQuery = "SELECT id, v FROM T ORDER BY id, v";

std::string Fingerprint(const Table& table) {
  std::ostringstream out;
  for (const Row& row : table.rows()) {
    for (const Value& v : row) out << v.ToString() << '|';
    out << '\n';
  }
  return out.str();
}

std::vector<Row> MakeRows(int64_t first_id, int64_t count) {
  std::vector<Row> rows;
  for (int64_t j = 0; j < count; ++j) {
    int64_t id = first_id + j;
    rows.push_back({Value::Int(id), Value::Double((id * 37) % 101)});
  }
  return rows;
}

std::unique_ptr<Dvms> MakeEngine(Dvms::Options options = Dvms::Options()) {
  options.canvas_width = 100;
  options.canvas_height = 100;
  auto engine = std::make_unique<Dvms>(options);
  Schema schema({{"id", ValueType::kInt64}, {"v", ValueType::kDouble}});
  EXPECT_TRUE(engine->CreateBaseTable("T", schema).ok());
  EXPECT_TRUE(engine->Insert("T", MakeRows(0, 32)).ok());
  return engine;
}

/// Step-controlled fake clock (governor_test idiom): each read advances
/// the counter by `step` microseconds; step = 0 freezes time.
struct FakeClock {
  std::shared_ptr<std::atomic<int64_t>> now =
      std::make_shared<std::atomic<int64_t>>(0);
  std::shared_ptr<std::atomic<int64_t>> step =
      std::make_shared<std::atomic<int64_t>>(0);
  QueryContext::Clock fn() const {
    auto n = now;
    auto s = step;
    return [n, s] { return n->fetch_add(s->load()); };
  }
};

TEST(SnapshotIsolationTest, PinnedReaderUnaffectedByCommits) {
  auto engine = MakeEngine();
  Session pinned(engine.get());
  ASSERT_TRUE(pinned.Pin().ok());
  const uint64_t e = pinned.pinned_epoch();
  auto before = pinned.Query(kReadQuery);
  ASSERT_TRUE(before.ok());
  const std::string fp = Fingerprint(before.value());

  // Commits interleave with pinned reads: inserts, then a delete that
  // rewrites rows the pinned snapshot is still serving.
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(engine->Insert("T", MakeRows(100 + round * 8, 8)).ok());
    auto during = pinned.Query(kReadQuery);
    ASSERT_TRUE(during.ok());
    EXPECT_EQ(Fingerprint(during.value()), fp) << "round " << round;
    EXPECT_EQ(pinned.last_read_epoch(), e);
  }
  ASSERT_TRUE(
      engine->Delete("T", ParseExpression("id < 16").value()).ok());
  auto after = pinned.Query(kReadQuery);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(Fingerprint(after.value()), fp);

  // An unpinned session sees the latest commit; unpinning rejoins it.
  Session fresh(engine.get());
  auto latest = fresh.Query(kReadQuery);
  ASSERT_TRUE(latest.ok());
  EXPECT_NE(Fingerprint(latest.value()), fp);
  pinned.Unpin();
  auto rejoined = pinned.Query(kReadQuery);
  ASSERT_TRUE(rejoined.ok());
  EXPECT_EQ(Fingerprint(rejoined.value()), Fingerprint(latest.value()));
}

TEST(SnapshotIsolationTest, DeadlineAbortedMutationPublishesNothing) {
  FakeClock clock;
  Dvms::Options options;
  options.deadline_ms = 50;
  options.governor_clock = clock.fn();
  auto engine = MakeEngine(options);
  // Enough governed work per mutation (view maintenance + rasterization)
  // that the stepping clock crosses the deadline mid-unit.
  ASSERT_TRUE(engine->LoadProgram(R"(
    totals = SELECT id, SUM(v) AS total FROM T GROUP BY id;
    MARKS = SELECT 3 AS radius, 'blue' AS fill,
        linear_scale(t.total, 0, 5000, 0, 90) AS center_x,
        linear_scale(t.id, 0, 600, 0, 90) AS center_y
      FROM totals AS t;
    P = render(SELECT * FROM MARKS);
  )")
                  .ok());

  Session session(engine.get());
  ASSERT_TRUE(session.Pin().ok());
  auto before = session.Query(kReadQuery);
  ASSERT_TRUE(before.ok());
  const std::string fp = Fingerprint(before.value());
  const uint64_t published = engine->published_epoch();

  // 20 ms per clock read: the mutation's view maintenance blows the 50 ms
  // deadline and the unit rolls back all-or-nothing.
  clock.step->store(20'000);
  Status st = engine->Insert("T", MakeRows(500, 64));
  clock.step->store(0);
  ASSERT_EQ(st.code(), StatusCode::kDeadlineExceeded);

  // Nothing was published: same epoch, and both the pinned view and a
  // fresh unpinned read reproduce the pre-abort state bit-for-bit.
  EXPECT_EQ(engine->published_epoch(), published);
  auto pinned_read = session.Query(kReadQuery);
  ASSERT_TRUE(pinned_read.ok());
  EXPECT_EQ(Fingerprint(pinned_read.value()), fp);
  Session fresh(engine.get());
  auto fresh_read = fresh.Query(kReadQuery);
  ASSERT_TRUE(fresh_read.ok());
  EXPECT_EQ(Fingerprint(fresh_read.value()), fp);
}

TEST(SnapshotIsolationTest, FaultRollbackPublishesNothing) {
  auto engine = MakeEngine();
  Session session(engine.get());
  ASSERT_TRUE(session.Pin().ok());
  auto before = session.Query(kReadQuery);
  ASSERT_TRUE(before.ok());
  const std::string fp = Fingerprint(before.value());
  const uint64_t published = engine->published_epoch();
  const int64_t epochs_before = engine->governor_stats().epochs_published;

  {
    FaultConfig config = ParseFaultSpec("7:1.0:storage").value();
    config.max_injections = 1;
    ScopedFaultInjector scoped(config);
    Status st = engine->Insert("T", MakeRows(500, 8));
    ASSERT_FALSE(st.ok());
  }

  EXPECT_EQ(engine->published_epoch(), published);
  EXPECT_EQ(engine->governor_stats().epochs_published, epochs_before);
  auto pinned_read = session.Query(kReadQuery);
  ASSERT_TRUE(pinned_read.ok());
  EXPECT_EQ(Fingerprint(pinned_read.value()), fp);
  Session fresh(engine.get());
  auto fresh_read = fresh.Query(kReadQuery);
  ASSERT_TRUE(fresh_read.ok());
  EXPECT_EQ(Fingerprint(fresh_read.value()), fp);

  // The engine is not wedged: the same insert commits cleanly now and
  // publishes exactly one new epoch.
  ASSERT_TRUE(engine->Insert("T", MakeRows(500, 8)).ok());
  EXPECT_EQ(engine->published_epoch(), published + 1);
}

TEST(SnapshotIsolationTest, GcNeverReclaimsAPinnedEpoch) {
  auto engine = MakeEngine();
  Session session(engine.get());
  ASSERT_TRUE(session.Pin().ok());
  const uint64_t e = session.pinned_epoch();
  auto before = session.Query(kReadQuery);
  ASSERT_TRUE(before.ok());
  const std::string fp = Fingerprint(before.value());

  // 50 committed epochs later, the pinned view must still be fully alive
  // (ASan would flag a reclaimed table) while every intermediate unpinned
  // epoch is free to retire.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(engine->Insert("T", MakeRows(1000 + i, 1)).ok());
    if (i % 10 == 0) {
      auto read = session.Query(kReadQuery);
      ASSERT_TRUE(read.ok());
      ASSERT_EQ(Fingerprint(read.value()), fp) << "after commit " << i;
    }
  }
  Dvms::GovernorStats stats = engine->governor_stats();
  EXPECT_EQ(stats.pinned_snapshots, 1);
  EXPECT_GE(stats.epochs_published, 50);
  EXPECT_GT(stats.epochs_retired, 0);  // the unpinned middles did retire
  EXPECT_EQ(session.pinned_epoch(), e);
  auto last = session.Query(kReadQuery);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(Fingerprint(last.value()), fp);

  session.Unpin();
  EXPECT_EQ(engine->governor_stats().pinned_snapshots, 0);
}

TEST(SnapshotIsolationTest, RepinMovesToTheLatestEpoch) {
  auto engine = MakeEngine();
  Session session(engine.get());
  ASSERT_TRUE(session.Pin().ok());
  const uint64_t first = session.pinned_epoch();
  ASSERT_TRUE(engine->Insert("T", MakeRows(600, 4)).ok());
  ASSERT_TRUE(session.Pin().ok());  // re-pin: moves, never stacks
  EXPECT_GT(session.pinned_epoch(), first);
  EXPECT_EQ(engine->governor_stats().pinned_snapshots, 1);
  auto read = session.Query(kReadQuery);
  ASSERT_TRUE(read.ok());
  Session fresh(engine.get());
  auto latest = fresh.Query(kReadQuery);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(Fingerprint(read.value()), Fingerprint(latest.value()));
}

}  // namespace
}  // namespace dvms
