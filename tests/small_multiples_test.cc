#include "concurrency/small_multiples.h"
#include "render/pixels.h"
#include "render/rasterizer.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

SmallMultiplesConfig TestConfig() {
  SmallMultiplesConfig config;
  config.columns = 2;
  config.cell_width = 100;
  config.cell_height = 80;
  config.origin_x = 10;
  config.origin_y = 10;
  config.gap = 10;
  return config;
}

TEST(SmallMultiplesTest, CellOriginsFollowReadingOrder) {
  SmallMultiplesConfig config = TestConfig();
  EXPECT_EQ(SmallMultipleCellOrigin(0, config), std::make_pair(10.0, 10.0));
  EXPECT_EQ(SmallMultipleCellOrigin(1, config), std::make_pair(120.0, 10.0));
  EXPECT_EQ(SmallMultipleCellOrigin(2, config), std::make_pair(10.0, 100.0));
  EXPECT_EQ(SmallMultipleCellOrigin(3, config), std::make_pair(120.0, 100.0));
}

TEST(SmallMultiplesTest, BarsScaledByGlobalMaximum) {
  std::vector<ChartCopy> copies = {
      {"jan", {10, 20}},
      {"feb", {40, 5}},
  };
  Table marks = LayoutSmallMultiples(copies, TestConfig());
  ASSERT_EQ(marks.num_rows(), 4u);
  size_t h = marks.schema().IndexOf("height").value();
  // The global max (40) fills the cell height (80); 10 maps to 20 px.
  double max_height = 0;
  for (const Row& row : marks.rows()) {
    max_height = std::max(max_height, row[h].double_value());
  }
  EXPECT_DOUBLE_EQ(max_height, 80);
  EXPECT_DOUBLE_EQ(marks.row(0)[h].double_value(), 20);
}

TEST(SmallMultiplesTest, CopiesNeverOverlapPixels) {
  // The MVCC design goal: each copy's updates are confined to its cell.
  std::vector<ChartCopy> copies;
  for (int i = 0; i < 4; ++i) {
    copies.push_back({"c" + std::to_string(i), {30, 30, 30}});
  }
  SmallMultiplesConfig config = TestConfig();
  Table marks = LayoutSmallMultiples(copies, config);
  size_t x = marks.schema().IndexOf("x").value();
  size_t w = marks.schema().IndexOf("width").value();
  size_t y = marks.schema().IndexOf("y").value();
  size_t hh = marks.schema().IndexOf("height").value();
  for (size_t r = 0; r < marks.num_rows(); ++r) {
    size_t copy = r / 3;
    auto [cx, cy] = SmallMultipleCellOrigin(copy, config);
    EXPECT_GE(marks.row(r)[x].double_value(), cx);
    EXPECT_LE(marks.row(r)[x].double_value() + marks.row(r)[w].double_value(),
              cx + config.cell_width + 1e-9);
    EXPECT_GE(marks.row(r)[y].double_value(), cy);
    EXPECT_LE(marks.row(r)[y].double_value() + marks.row(r)[hh].double_value(),
              cy + config.cell_height + 1e-9);
  }
}

TEST(SmallMultiplesTest, EmptyAndZeroValueCopies) {
  std::vector<ChartCopy> copies = {
      {"empty", {}},
      {"zeros", {0, 0}},
      {"real", {5}},
  };
  Table marks = LayoutSmallMultiples(copies, TestConfig());
  EXPECT_EQ(marks.num_rows(), 1u);  // only the real bar draws
}

TEST(SmallMultiplesTest, RendersAsFigure4Grid) {
  std::vector<ChartCopy> copies = {
      {"jan", {20, 40, 30}},
      {"feb", {35, 10, 25}},
      {"mar", {15, 15, 40}},
  };
  SmallMultiplesConfig config = TestConfig();
  Table marks = LayoutSmallMultiples(copies, config);
  PixelBuffer buf(240, 200);
  ASSERT_TRUE(RenderMarks(marks, &buf).ok());
  RGBA blue = ParseColor("steelblue").value();
  EXPECT_GT(buf.CountColor(blue), 1000u);
  // Gaps between cells stay unpainted.
  EXPECT_EQ(buf.At(115, 50).a, 0);
}

}  // namespace
}  // namespace dvms
