// Thread-safety stress: concurrent interaction streams, queries, and
// inserts against one shared Dvms engine, plus ThreadPool contention from
// multiple submitting threads. Run under -DDVMS_SANITIZE=thread to turn
// every latent race into a hard failure.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/dvms.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

constexpr const char* kProgram = R"(
  C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U
      RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
             (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);
  BBOX = SELECT x AS x0, y AS y0, x + dx AS x1, y + dy AS y1
    FROM C ORDER BY t DESC LIMIT 1;
  totals = SELECT region, SUM(revenue) AS revenue, COUNT(*) AS n
    FROM Sales GROUP BY region;
  BARS = SELECT 10.0 + 20.0 * n.idx AS x, 10.0 AS y, 15.0 AS width,
      linear_scale(t.revenue, 0, 100000, 1, 80) AS height,
      'steelblue' AS fill
    FROM totals AS t, RegionDim AS n WHERE t.region = n.region;
  P = render(SELECT * FROM BARS);
)";

std::unique_ptr<Dvms> MakeStressEngine(size_t num_threads) {
  Dvms::Options options;
  options.canvas_width = 120;
  options.canvas_height = 100;
  options.num_threads = num_threads;
  auto engine = std::make_unique<Dvms>(options);
  EXPECT_TRUE(engine
                  ->CreateBaseTable("Sales",
                                    Schema({{"productId", ValueType::kInt64},
                                            {"region", ValueType::kString},
                                            {"revenue", ValueType::kDouble}}))
                  .ok());
  EXPECT_TRUE(engine
                  ->CreateBaseTable("RegionDim",
                                    Schema({{"region", ValueType::kString},
                                            {"idx", ValueType::kInt64}}))
                  .ok());
  const char* regions[] = {"east", "west", "north", "south"};
  std::vector<Row> dim;
  for (int i = 0; i < 4; ++i) {
    dim.push_back({Value::String(regions[i]), Value::Int(i)});
  }
  EXPECT_TRUE(engine->Insert("RegionDim", dim).ok());
  Rng rng(5);
  std::vector<Row> sales;
  for (int i = 0; i < 400; ++i) {
    sales.push_back({Value::Int(i), Value::String(regions[rng.UniformInt(0, 3)]),
                     Value::Double(rng.Uniform(0, 100))});
  }
  EXPECT_TRUE(engine->Insert("Sales", sales).ok());
  EXPECT_TRUE(engine->LoadProgram(kProgram).ok());
  return engine;
}

// Four threads hammer the same engine: two interaction streams, one
// analyst issuing ad-hoc queries, one data loader appending rows. The
// facade serializes them; the test asserts nothing corrupts and the
// engine stays fully usable afterwards.
TEST(ParallelStressTest, ConcurrentInteractionStreams) {
  std::unique_ptr<Dvms> engine = MakeStressEngine(2);
  constexpr int kIters = 40;
  std::atomic<int> query_failures{0};
  std::atomic<int> insert_failures{0};

  auto drag_stream = [&](int64_t t0) {
    for (int i = 0; i < kIters; ++i) {
      int64_t t = t0 + i * 10;
      // Interleaved streams can split one thread's gesture; the recognizer
      // must stay well-formed regardless of the resulting event salad.
      (void)engine->PushEvent(InputEvent::MouseDown(t, 10.0 + i, 20.0));
      (void)engine->PushEvent(InputEvent::MouseMove(t + 1, 30.0 + i, 40.0));
      (void)engine->PushEvent(InputEvent::MouseUp(t + 2, 50.0 + i, 60.0));
    }
  };
  std::thread brusher_a(drag_stream, 0);
  std::thread brusher_b(drag_stream, 100000);
  std::thread analyst([&] {
    for (int i = 0; i < kIters; ++i) {
      auto result = engine->Query(
          "SELECT region, SUM(revenue) AS r FROM Sales GROUP BY region");
      if (!result.ok() || result.value().num_rows() != 4) {
        query_failures.fetch_add(1);
      }
    }
  });
  std::thread loader([&] {
    Rng rng(11);
    const char* regions[] = {"east", "west", "north", "south"};
    for (int i = 0; i < kIters; ++i) {
      Status s = engine->Insert(
          "Sales", {{Value::Int(1000 + i),
                     Value::String(regions[rng.UniformInt(0, 3)]),
                     Value::Double(rng.Uniform(0, 100))}});
      if (!s.ok()) insert_failures.fetch_add(1);
    }
  });
  brusher_a.join();
  brusher_b.join();
  analyst.join();
  loader.join();

  EXPECT_EQ(query_failures.load(), 0);
  EXPECT_EQ(insert_failures.load(), 0);
  // Engine still consistent: all inserts landed and a fresh interaction
  // round-trips through recognition, maintenance, and rendering.
  auto count = engine->Query("SELECT COUNT(*) AS n FROM Sales");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value().row(0)[0].int_value(), 400 + kIters);
  EXPECT_TRUE(engine->PushEvent(InputEvent::MouseDown(900000, 5, 5)).ok());
  EXPECT_TRUE(engine->PushEvent(InputEvent::MouseUp(900001, 6, 6)).ok());
  EXPECT_EQ(engine->pixels().width(), 120u);
}

// Undo/redo racing against event processing — exercises the versioned
// snapshot restore path under the facade lock.
TEST(ParallelStressTest, UndoRedoUnderConcurrentEvents) {
  std::unique_ptr<Dvms> engine = MakeStressEngine(2);
  std::thread brusher([&] {
    for (int i = 0; i < 25; ++i) {
      int64_t t = i * 10;
      (void)engine->PushEvent(InputEvent::MouseDown(t, 10, 10));
      (void)engine->PushEvent(InputEvent::MouseUp(t + 1, 90, 90));
    }
  });
  std::thread historian([&] {
    for (int i = 0; i < 25; ++i) {
      if (engine->CanUndo()) (void)engine->Undo();
      if (engine->CanRedo()) (void)engine->Redo();
      (void)engine->DumpState();
    }
  });
  brusher.join();
  historian.join();
  auto totals = engine->Query("SELECT SUM(revenue) AS r FROM Sales");
  EXPECT_TRUE(totals.ok());
}

// Many external threads submitting ParallelFor work to one shared pool:
// each submission must see exactly its own morsels, exactly once.
TEST(ParallelStressTest, SharedPoolConcurrentSubmitters) {
  ThreadPool pool(4);
  constexpr int kSubmitters = 6;
  constexpr size_t kTotal = 10000;
  std::vector<std::thread> submitters;
  std::vector<uint64_t> sums(kSubmitters, 0);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int round = 0; round < 20; ++round) {
        std::vector<std::atomic<uint32_t>> hits(
            MorselCount(kTotal, /*grain=*/64));
        std::atomic<uint64_t> sum{0};
        pool.ParallelFor(kTotal, 64, 0, [&](const MorselRange& m) {
          hits[m.index].fetch_add(1);
          uint64_t local = 0;
          for (size_t i = m.begin; i < m.end; ++i) local += i;
          sum.fetch_add(local);
        });
        for (const auto& h : hits) ASSERT_EQ(h.load(), 1u);
        sums[s] = sum.load();
      }
    });
  }
  for (auto& t : submitters) t.join();
  for (int s = 0; s < kSubmitters; ++s) {
    EXPECT_EQ(sums[s], kTotal * (kTotal - 1) / 2);
  }
}

// Nested ParallelFor from inside a worker must degrade to inline
// execution instead of deadlocking the pool.
TEST(ParallelStressTest, NestedParallelForRunsInline) {
  ThreadPool pool(2);
  std::atomic<uint64_t> total{0};
  pool.ParallelFor(100, 10, 0, [&](const MorselRange& outer) {
    pool.ParallelFor(outer.end - outer.begin, 2, 0,
                     [&](const MorselRange& inner) {
                       total.fetch_add(inner.end - inner.begin);
                     });
  });
  EXPECT_EQ(total.load(), 100u);
}

}  // namespace
}  // namespace dvms
