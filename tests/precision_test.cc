#include "precision/interface_synth.h"
#include "precision/rules.h"
#include "precision/sql_ast.h"
#include "precision/transform_graph.h"
#include "workload/sdss.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

TEST(SqlAstTest, BuildsClauseStructure) {
  AstNodePtr ast =
      ParseToAst("SELECT ra, dec FROM photoobj WHERE ra > 180 ORDER BY ra "
                 "LIMIT 10")
          .value();
  EXPECT_EQ(ast->type, "Select");
  std::vector<AstNodePtr> found;
  FindNodesByType(ast, "ProjectClauses", &found);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->children.size(), 2u);
  found.clear();
  FindNodesByType(ast, "WhereClause", &found);
  EXPECT_EQ(found.size(), 1u);
  found.clear();
  FindNodesByType(ast, "LimitClause", &found);
  EXPECT_EQ(found.size(), 1u);
}

TEST(SqlAstTest, SerializationIsCanonical) {
  AstNodePtr a = ParseToAst("SELECT x FROM t WHERE x > 5").value();
  AstNodePtr b = ParseToAst("select x from t where x > 5").value();
  // Identifier case survives, keyword case does not matter.
  EXPECT_TRUE(AstEquals(*a, *b));
  AstNodePtr c = ParseToAst("SELECT x FROM t WHERE x > 6").value();
  EXPECT_FALSE(AstEquals(*a, *c));
}

TEST(SqlAstTest, UnparsableQueryReportsError) {
  EXPECT_FALSE(ParseToAst("EXEC dbo.fGetNearbyObjEq 180.0, -0.5, 3.0").ok());
}

TEST(RuleParserTest, ParsesPaperStyleRule) {
  auto rule = ParseTransformRule(
                  "FROM Select//ProjectClauses AS a\n"
                  "WHERE a@old subset a@new\n"
                  "MATCH: projection-add;")
                  .value();
  EXPECT_EQ(rule.interaction, "projection-add");
  ASSERT_EQ(rule.path.size(), 2u);
  EXPECT_EQ(rule.path[0], "Select");
  EXPECT_EQ(rule.path[1], "ProjectClauses");
  EXPECT_EQ(rule.pred, RulePred::kSubset);
  EXPECT_EQ(rule.var, "a");
}

TEST(RuleParserTest, ParsesUnaryPredicates) {
  auto rule = ParseTransformRule(
                  "FROM Select//WhereClause AS w WHERE numeric_changed(w) "
                  "MATCH: numeric-param-change;")
                  .value();
  EXPECT_EQ(rule.pred, RulePred::kNumericChanged);
}

TEST(RuleParserTest, RejectsMalformedRules) {
  EXPECT_FALSE(ParseTransformRule("FROM x").ok());
  EXPECT_FALSE(ParseTransformRule("FROM A AS a WHERE bogus(a) MATCH: x;").ok());
  EXPECT_FALSE(
      ParseTransformRule("FROM A AS a WHERE a@old near a@new MATCH: x;").ok());
}

class RuleMatchTest : public ::testing::Test {
 protected:
  bool Matches(const char* rule_text, const char* old_sql,
               const char* new_sql) {
    TransformRule rule = ParseTransformRule(rule_text).value();
    AstNodePtr old_ast = ParseToAst(old_sql).value();
    AstNodePtr new_ast = ParseToAst(new_sql).value();
    return RuleMatches(rule, old_ast, new_ast);
  }
};

TEST_F(RuleMatchTest, NumericParameterChange) {
  const char* rule =
      "FROM Select//WhereClause AS a WHERE numeric_changed(a) MATCH: n;";
  EXPECT_TRUE(Matches(rule, "SELECT x FROM t WHERE x > 5",
                      "SELECT x FROM t WHERE x > 7"));
  // A categorical change is not numeric.
  EXPECT_FALSE(Matches(rule, "SELECT x FROM t WHERE c = 'A'",
                       "SELECT x FROM t WHERE c = 'B'"));
  // A change outside the where clause does not match.
  EXPECT_FALSE(Matches(rule, "SELECT x FROM t WHERE x > 5",
                       "SELECT x, y FROM t WHERE x > 5"));
  // Identical queries do not match.
  EXPECT_FALSE(Matches(rule, "SELECT x FROM t WHERE x > 5",
                       "SELECT x FROM t WHERE x > 5"));
}

TEST_F(RuleMatchTest, SubsetDetectsProjectionGrowth) {
  const char* rule =
      "FROM Select//ProjectClauses AS a WHERE a@old subset a@new MATCH: p;";
  EXPECT_TRUE(Matches(rule, "SELECT x FROM t WHERE x > 5",
                      "SELECT x, y FROM t WHERE x > 5"));
  EXPECT_FALSE(Matches(rule, "SELECT x, y FROM t WHERE x > 5",
                       "SELECT x FROM t WHERE x > 5"));
  // Replacing a column is neither subset nor superset.
  EXPECT_FALSE(Matches(rule, "SELECT x FROM t", "SELECT y FROM t"));
}

TEST_F(RuleMatchTest, ClauseAdditionMatchesChanged) {
  const char* rule =
      "FROM Select//LimitClause AS a WHERE changed(a) MATCH: l;";
  EXPECT_TRUE(
      Matches(rule, "SELECT x FROM t", "SELECT x FROM t LIMIT 10"));
  EXPECT_TRUE(Matches(rule, "SELECT x FROM t LIMIT 10",
                      "SELECT x FROM t LIMIT 50"));
  EXPECT_FALSE(Matches(rule, "SELECT x FROM t WHERE x > 1 LIMIT 10",
                       "SELECT x FROM t WHERE x > 2 LIMIT 50"));
}

TEST_F(RuleMatchTest, StructuralChangeInWhere) {
  const char* rule =
      "FROM Select//WhereClause AS a WHERE struct_changed(a) MATCH: s;";
  EXPECT_TRUE(Matches(rule, "SELECT x FROM t WHERE x > 5",
                      "SELECT x FROM t WHERE x > 5 AND y < 2"));
  EXPECT_FALSE(Matches(rule, "SELECT x FROM t WHERE x > 5",
                       "SELECT x FROM t WHERE x > 6"));
}

TEST_F(RuleMatchTest, DefaultRulesClassifyTheExpectedTweaks) {
  auto rules = DefaultSdssRules();
  ASSERT_EQ(rules.size(), 8u);
  auto classify = [&rules](const char* a, const char* b) -> std::string {
    AstNodePtr old_ast = ParseToAst(a).value();
    AstNodePtr new_ast = ParseToAst(b).value();
    for (const TransformRule& rule : rules) {
      if (RuleMatches(rule, old_ast, new_ast)) return rule.interaction;
    }
    return "(none)";
  };
  EXPECT_EQ(classify("SELECT x FROM t WHERE x > 1 LIMIT 5",
                     "SELECT x FROM t WHERE x > 2 LIMIT 5"),
            "numeric-param-change");
  EXPECT_EQ(classify("SELECT x FROM t WHERE c = 'QSO'",
                     "SELECT x FROM t WHERE c = 'STAR'"),
            "categorical-change");
  EXPECT_EQ(classify("SELECT x FROM t", "SELECT x, y FROM t"),
            "projection-add");
  EXPECT_EQ(classify("SELECT x, y FROM t", "SELECT y FROM t"),
            "projection-remove");
  EXPECT_EQ(classify("SELECT x FROM t LIMIT 5", "SELECT x FROM t LIMIT 9"),
            "limit-change");
  EXPECT_EQ(classify("SELECT x FROM t ORDER BY x", "SELECT x FROM t ORDER BY x DESC"),
            "orderby-change");
  EXPECT_EQ(classify("SELECT f, COUNT(*) AS n FROM t GROUP BY f",
                     "SELECT g, COUNT(*) AS n FROM t GROUP BY g"),
            "(none)");  // changes both projection and grouping: ambiguous
  EXPECT_EQ(classify("SELECT x FROM t", "SELECT x FROM u"), "table-change");
}

TEST(TransformGraphTest, BuildsVerticesAndEdges) {
  std::vector<std::vector<std::string>> sessions = {
      {"SELECT x FROM t WHERE x > 1", "SELECT x FROM t WHERE x > 2",
       "SELECT x, y FROM t WHERE x > 2"},
  };
  TransformGraph graph = BuildTransformGraph(sessions, DefaultSdssRules());
  EXPECT_EQ(graph.queries.size(), 3u);
  ASSERT_EQ(graph.edges.size(), 2u);
  EXPECT_EQ(graph.edges[0].interaction, "numeric-param-change");
  EXPECT_EQ(graph.edges[1].interaction, "projection-add");
  EXPECT_EQ(graph.matched_pairs, 2u);
  EXPECT_EQ(graph.total_queries, 3u);
}

TEST(TransformGraphTest, RepeatedQueriesShareVertices) {
  std::vector<std::vector<std::string>> sessions = {
      {"SELECT x FROM t WHERE x > 1", "SELECT x FROM t WHERE x > 2",
       "SELECT x FROM t WHERE x > 1"},
  };
  TransformGraph graph = BuildTransformGraph(sessions, DefaultSdssRules());
  EXPECT_EQ(graph.queries.size(), 2u);
  EXPECT_EQ(graph.edges.size(), 2u);
}

TEST(TransformGraphTest, UnparsableQueriesBreakAdjacency) {
  std::vector<std::vector<std::string>> sessions = {
      {"SELECT x FROM t WHERE x > 1", "EXEC spBroken 1",
       "SELECT x FROM t WHERE x > 2"},
  };
  TransformGraph graph = BuildTransformGraph(sessions, DefaultSdssRules());
  EXPECT_EQ(graph.unparsed_queries, 1u);
  EXPECT_TRUE(graph.edges.empty());
  EXPECT_NEAR(graph.ParsedFraction(), 2.0 / 3.0, 1e-9);
}

TEST(SdssLogTest, MatchesPaperStatistics) {
  SdssLogConfig config;
  config.num_sessions = 300;
  SdssLog log = GenerateSdssLog(config);
  TransformGraph graph = BuildTransformGraph(log.sessions, DefaultSdssRules());
  // >99.1% of the log maps to the templates.
  EXPECT_GT(graph.ParsedFraction(), 0.985);
  // The two most frequent interactions cover roughly 70% and 12%.
  auto counts = graph.InteractionCounts();
  ASSERT_GE(counts.size(), 2u);
  EXPECT_EQ(counts[0].first, "numeric-param-change");
  EXPECT_NEAR(graph.CoverageOf(counts[0].first), 0.70, 0.08);
  EXPECT_NEAR(graph.CoverageOf(counts[1].first), 0.12, 0.05);
  // The graph is dense: far more edges than interaction types.
  EXPECT_GT(graph.edges.size(), 1000u);
}

TEST(SdssLogTest, Deterministic) {
  SdssLogConfig config;
  config.num_sessions = 10;
  SdssLog a = GenerateSdssLog(config);
  SdssLog b = GenerateSdssLog(config);
  ASSERT_EQ(a.sessions.size(), b.sessions.size());
  EXPECT_EQ(a.sessions[3], b.sessions[3]);
}

TEST(InterfaceSynthTest, ObjectiveUsesCheapestCoveringWidget) {
  TransformGraph graph;
  graph.queries = {"a", "b"};
  graph.edges = {{0, 1, "numeric-param-change"}};
  graph.matched_pairs = 1;
  SynthesisConfig config;
  // Both the slider (act 1) and the text box (act 3) cover numeric.
  std::vector<WidgetSpec> widgets = {DefaultWidgetLibrary()[0],
                                     DefaultWidgetLibrary()[1]};
  EXPECT_DOUBLE_EQ(EvaluateInterface(graph, widgets, config), 1.0);
  // No widgets: the penalty applies.
  EXPECT_DOUBLE_EQ(EvaluateInterface(graph, {}, config), config.penalty);
}

TEST(InterfaceSynthTest, BudgetControlsSimplicityVsCoverage) {
  SdssLogConfig log_config;
  log_config.num_sessions = 200;
  SdssLog log = GenerateSdssLog(log_config);
  TransformGraph graph = BuildTransformGraph(log.sessions, DefaultSdssRules());

  SynthesisConfig tight;
  tight.max_visual_complexity = 4.0;
  SynthesizedInterface simple =
      SynthesizeInterface(graph, DefaultWidgetLibrary(), tight);

  SynthesisConfig loose;
  loose.max_visual_complexity = 12.0;
  SynthesizedInterface broad =
      SynthesizeInterface(graph, DefaultWidgetLibrary(), loose);

  // Figure 7: a simplicity-preferring interface is drastically smaller; a
  // coverage-preferring one covers (nearly) everything.
  EXPECT_LT(simple.widgets.size(), broad.widgets.size());
  EXPECT_LE(simple.total_visual_complexity, 4.0);
  EXPECT_GT(simple.coverage, 0.8);  // even the small interface covers most
  EXPECT_GT(broad.coverage, 0.99);
  EXPECT_LE(broad.objective, simple.objective);
}

TEST(InterfaceSynthTest, GreedyIsNearExhaustiveOnSmallInstance) {
  TransformGraph graph;
  graph.queries = {"q0", "q1", "q2", "q3"};
  graph.edges = {{0, 1, "numeric-param-change"},
                 {1, 2, "limit-change"},
                 {2, 3, "orderby-change"}};
  graph.matched_pairs = 3;
  SynthesisConfig config;
  config.max_visual_complexity = 4.0;
  const auto& library = DefaultWidgetLibrary();
  SynthesizedInterface greedy = SynthesizeInterface(graph, library, config);

  // Exhaustive search over all widget subsets within budget.
  double best = 1e18;
  for (size_t mask = 0; mask < (1u << library.size()); ++mask) {
    std::vector<WidgetSpec> subset;
    double vis = 0;
    for (size_t i = 0; i < library.size(); ++i) {
      if (mask & (1u << i)) {
        subset.push_back(library[i]);
        vis += library[i].visual_complexity;
      }
    }
    if (vis > config.max_visual_complexity) continue;
    best = std::min(best, EvaluateInterface(graph, subset, config));
  }
  // The paper solves the knapsack with a greedy heuristic; it can be
  // suboptimal (here it may prefer the cheap-but-clunky text box over the
  // slider), but must stay within a small factor of the optimum and never
  // beat it.
  EXPECT_GE(greedy.objective, best - 1e-9);
  EXPECT_LE(greedy.objective, 2.0 * best + 1e-9);
}

TEST(TransformGraphTest, DotExportColorsEdgesByInteraction) {
  std::vector<std::vector<std::string>> sessions = {
      {"SELECT x FROM t WHERE x > 1", "SELECT x FROM t WHERE x > 2",
       "SELECT x, y FROM t WHERE x > 2"},
  };
  TransformGraph graph = BuildTransformGraph(sessions, DefaultSdssRules());
  std::string dot = graph.ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("q0 -> q1"), std::string::npos);
  EXPECT_NE(dot.find("color="), std::string::npos);
  // Edge cap respected, and the cut is announced in the artifact itself.
  std::string capped = graph.ToDot(1);
  EXPECT_EQ(capped.find("q1 -> q2"), std::string::npos);
  EXPECT_NE(capped.find("// truncated 1 of 2 edges"), std::string::npos);
  // An uncapped dump carries no truncation banner.
  EXPECT_EQ(dot.find("truncated"), std::string::npos);
}

TEST(InterfaceSynthTest, ZeroBudgetYieldsEmptyInterface) {
  TransformGraph graph;
  graph.edges = {{0, 0, "numeric-param-change"}};
  graph.matched_pairs = 1;
  SynthesisConfig config;
  config.max_visual_complexity = 0.0;
  SynthesizedInterface iface =
      SynthesizeInterface(graph, DefaultWidgetLibrary(), config);
  EXPECT_TRUE(iface.widgets.empty());
  EXPECT_DOUBLE_EQ(iface.objective, config.penalty);
  EXPECT_DOUBLE_EQ(iface.coverage, 0.0);
}

}  // namespace
}  // namespace dvms
