#include "precision/interface_synth.h"
#include "precision/script_ast.h"
#include "precision/transform_graph.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

TEST(ScriptAstTest, ParsesCallWithKwargs) {
  AstNodePtr ast =
      ParseScriptToAst("plot(table='photoobj', x='ra', bins=20)").value();
  EXPECT_EQ(ast->type, "Call");
  EXPECT_EQ(ast->value, "plot");
  ASSERT_EQ(ast->children.size(), 3u);
  EXPECT_EQ(ast->children[0]->type, "Kwarg");
  EXPECT_EQ(ast->children[0]->value, "table");
  EXPECT_EQ(ast->children[0]->children[0]->value, "photoobj");
  EXPECT_EQ(ast->children[2]->children[0]->value, "20");
}

TEST(ScriptAstTest, ParsesEmptyCallAndQuotes) {
  EXPECT_EQ(ParseScriptToAst("redraw()").value()->children.size(), 0u);
  AstNodePtr ast = ParseScriptToAst("f(a=\"x y\", b=1.5)").value();
  EXPECT_EQ(ast->children[0]->children[0]->value, "x y");
}

TEST(ScriptAstTest, RejectsMalformedScripts) {
  EXPECT_FALSE(ParseScriptToAst("plot(").ok());
  EXPECT_FALSE(ParseScriptToAst("plot(a)").ok());
  EXPECT_FALSE(ParseScriptToAst("plot(a=1) trailing").ok());
  EXPECT_FALSE(ParseScriptToAst("plot(a='unterminated)").ok());
  EXPECT_FALSE(ParseScriptToAst("= bad").ok());
}

TEST(ScriptAstTest, SameRuleMachineryClassifiesScriptTweaks) {
  // The core §3.4 claim: the rule language and matcher are AST-generic —
  // the same predicates classify tweaks in a completely different
  // language.
  auto rules = DefaultScriptRules();
  ASSERT_EQ(rules.size(), 5u);
  auto classify = [&rules](const char* a, const char* b) -> std::string {
    AstNodePtr old_ast = ParseScriptToAst(a).value();
    AstNodePtr new_ast = ParseScriptToAst(b).value();
    for (const TransformRule& rule : rules) {
      if (RuleMatches(rule, old_ast, new_ast)) return rule.interaction;
    }
    return "(none)";
  };
  EXPECT_EQ(classify("plot(x='ra', bins=20)", "plot(x='ra', bins=40)"),
            "numeric-param-change");
  EXPECT_EQ(classify("plot(x='ra', color='red')",
                     "plot(x='ra', color='blue')"),
            "categorical-change");
  EXPECT_EQ(classify("plot(x='ra')", "plot(x='ra', bins=20)"),
            "projection-add");
  EXPECT_EQ(classify("plot(x='ra', bins=20)", "plot(x='ra')"),
            "projection-remove");
  EXPECT_EQ(classify("plot(x='ra', bins=20)", "plot(x='ra', y='dec')"),
            "call-restructure");
  EXPECT_EQ(classify("plot(x='ra')", "plot(x='ra')"), "(none)");
}

TEST(ScriptAstTest, TransformGraphOverScriptSessions) {
  std::vector<std::vector<std::string>> sessions = {
      {"plot(x='ra', bins=10)", "plot(x='ra', bins=20)",
       "plot(x='ra', bins=20, color='red')",
       "plot(x='ra', bins=20, color='green')"},
      {"hist(col='z', buckets=5)", "hist(col='z', buckets=9)",
       "not a script at all", "hist(col='z', buckets=12)"},
  };
  TransformGraph graph =
      BuildTransformGraph(sessions, DefaultScriptRules(),
                          [](const std::string& s) {
                            return ParseScriptToAst(s);
                          });
  EXPECT_EQ(graph.unparsed_queries, 1u);
  ASSERT_EQ(graph.edges.size(), 4u);
  EXPECT_EQ(graph.edges[0].interaction, "numeric-param-change");
  EXPECT_EQ(graph.edges[1].interaction, "projection-add");
  EXPECT_EQ(graph.edges[2].interaction, "categorical-change");
  EXPECT_EQ(graph.edges[3].interaction, "numeric-param-change");
}

TEST(ScriptAstTest, InterfaceSynthesisWorksAcrossLanguages) {
  // The downstream knapsack consumes only interaction labels, so a script
  // log synthesizes an interface exactly like a SQL log.
  std::vector<std::vector<std::string>> sessions;
  for (int s = 0; s < 20; ++s) {
    std::vector<std::string> session;
    for (int i = 0; i < 10; ++i) {
      session.push_back("plot(x='ra', bins=" + std::to_string(10 + i) + ")");
    }
    sessions.push_back(std::move(session));
  }
  TransformGraph graph =
      BuildTransformGraph(sessions, DefaultScriptRules(),
                          [](const std::string& s) {
                            return ParseScriptToAst(s);
                          });
  SynthesisConfig config;
  config.max_visual_complexity = 4.0;
  SynthesizedInterface iface =
      SynthesizeInterface(graph, DefaultWidgetLibrary(), config);
  ASSERT_FALSE(iface.widgets.empty());
  // A pure numeric-tweak log gets a slider-style interface.
  bool covers_numeric = false;
  for (const WidgetSpec& w : iface.widgets) {
    if (w.Covers("numeric-param-change")) covers_numeric = true;
  }
  EXPECT_TRUE(covers_numeric);
  EXPECT_DOUBLE_EQ(iface.coverage, 1.0);
}

}  // namespace
}  // namespace dvms
