#include "render/axis.h"
#include "render/pixels.h"
#include "render/rasterizer.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

TEST(AxisTest, TickValuesSpanTheDomain) {
  AxisSpec spec;
  spec.domain_min = 0;
  spec.domain_max = 100;
  spec.ticks = 5;
  auto values = AxisTickValues(spec);
  ASSERT_EQ(values.size(), 5u);
  EXPECT_DOUBLE_EQ(values.front(), 0);
  EXPECT_DOUBLE_EQ(values.back(), 100);
  EXPECT_DOUBLE_EQ(values[2], 50);
}

TEST(AxisTest, SingleAndZeroTicks) {
  AxisSpec spec;
  spec.ticks = 1;
  EXPECT_EQ(AxisTickValues(spec).size(), 1u);
  spec.ticks = 0;
  EXPECT_TRUE(AxisTickValues(spec).empty());
}

TEST(AxisTest, BottomAxisGeometry) {
  AxisSpec spec;
  spec.orientation = AxisOrientation::kBottom;
  spec.range_min = 10;
  spec.range_max = 110;
  spec.cross = 90;
  spec.ticks = 3;
  Table marks = MakeAxisMarks(spec);
  ASSERT_EQ(marks.num_rows(), 4u);  // baseline + 3 ticks
  // Baseline is horizontal at y = cross.
  EXPECT_DOUBLE_EQ(marks.row(0)[1].double_value(), 90);
  EXPECT_DOUBLE_EQ(marks.row(0)[3].double_value(), 90);
  // Middle tick at pixel 60, pointing down.
  EXPECT_DOUBLE_EQ(marks.row(2)[0].double_value(), 60);
  EXPECT_DOUBLE_EQ(marks.row(2)[3].double_value(), 94);
}

TEST(AxisTest, LeftAxisGeometry) {
  AxisSpec spec;
  spec.orientation = AxisOrientation::kLeft;
  spec.range_min = 20;
  spec.range_max = 220;
  spec.cross = 30;
  spec.ticks = 2;
  Table marks = MakeAxisMarks(spec);
  ASSERT_EQ(marks.num_rows(), 3u);
  // Baseline is vertical at x = cross.
  EXPECT_DOUBLE_EQ(marks.row(0)[0].double_value(), 30);
  EXPECT_DOUBLE_EQ(marks.row(0)[2].double_value(), 30);
  // Ticks point left (negative x).
  EXPECT_DOUBLE_EQ(marks.row(1)[2].double_value(), 26);
}

TEST(AxisTest, AxisMarksRender) {
  AxisSpec spec;
  spec.range_min = 5;
  spec.range_max = 55;
  spec.cross = 30;
  PixelBuffer buf(60, 40);
  ASSERT_TRUE(RenderMarks(MakeAxisMarks(spec), &buf).ok());
  RGBA black = ParseColor("black").value();
  EXPECT_EQ(buf.At(30, 30), black);   // on the baseline
  EXPECT_EQ(buf.At(5, 32), black);    // on the first tick
  EXPECT_EQ(buf.At(30, 20).a, 0);     // above the axis
}

}  // namespace
}  // namespace dvms
