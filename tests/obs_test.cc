// PR-4 observability: registry semantics (counters, histograms, spans,
// Save/Restore), the dvms_metrics / dvms_spans system relations, EXPLAIN /
// EXPLAIN ANALYZE, the full-Stats DumpState + snapshot round-trip, and the
// rollback no-leak guarantee under fault injection.

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "core/dvms.h"
#include "core/session.h"
#include "obs/trace.h"
#include "parser/parser.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

namespace fs = std::filesystem;

// The obs registry is process-global; every fixture starts from a clean,
// enabled registry and leaves tracing off for the next test.
class ObsRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::ResetForTesting();
    obs::SetEnabled(true);
  }
  void TearDown() override {
    obs::SetEnabled(false);
    obs::ResetForTesting();
  }
};

const obs::MetricRow* FindMetric(const std::vector<obs::MetricRow>& rows,
                                 const std::string& name) {
  for (const obs::MetricRow& r : rows) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

TEST_F(ObsRegistryTest, CountersAccumulate) {
  obs::Count("a");
  obs::Count("a", 4);
  obs::Count("b", 2);
  auto rows = obs::SnapshotMetrics();
  const obs::MetricRow* a = FindMetric(rows, "a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->kind, "counter");
  EXPECT_EQ(a->count, 5u);
  const obs::MetricRow* b = FindMetric(rows, "b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->count, 2u);
  // Rows come back sorted by name.
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "a");
  EXPECT_EQ(rows[1].name, "b");
}

TEST_F(ObsRegistryTest, HistogramStatsAndPercentiles) {
  for (int i = 0; i < 100; ++i) obs::Observe("h", 8.0);
  auto rows = obs::SnapshotMetrics();
  const obs::MetricRow* h = FindMetric(rows, "h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->kind, "histogram");
  EXPECT_EQ(h->count, 100u);
  EXPECT_DOUBLE_EQ(h->sum, 800.0);
  EXPECT_DOUBLE_EQ(h->min, 8.0);
  EXPECT_DOUBLE_EQ(h->max, 8.0);
  // All mass in one bucket: percentiles clamp to the observed range.
  EXPECT_DOUBLE_EQ(h->p50, 8.0);
  EXPECT_DOUBLE_EQ(h->p95, 8.0);
  EXPECT_DOUBLE_EQ(h->p99, 8.0);
}

TEST_F(ObsRegistryTest, HistogramPercentilesAreOrderedAndBounded) {
  for (int i = 1; i <= 1000; ++i) obs::Observe("h", static_cast<double>(i));
  auto rows = obs::SnapshotMetrics();
  const obs::MetricRow* h = FindMetric(rows, "h");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->min, 1.0);
  EXPECT_DOUBLE_EQ(h->max, 1000.0);
  EXPECT_LE(h->min, h->p50);
  EXPECT_LE(h->p50, h->p95);
  EXPECT_LE(h->p95, h->p99);
  EXPECT_LE(h->p99, h->max);
  // Log2 buckets are coarse but p50 must land in the right half-ish.
  EXPECT_GT(h->p50, 100.0);
}

TEST_F(ObsRegistryTest, DisabledRecordsNothing) {
  obs::SetEnabled(false);
  obs::Count("a");
  obs::Observe("h", 1.0);
  { obs::Span span("s"); }
  EXPECT_TRUE(obs::SnapshotMetrics().empty());
  EXPECT_TRUE(obs::SnapshotSpans().empty());
}

TEST_F(ObsRegistryTest, SuppressScopeSilencesThread) {
  {
    obs::SuppressScope quiet;
    EXPECT_FALSE(obs::Enabled());
    obs::Count("a");
  }
  EXPECT_TRUE(obs::Enabled());
  obs::Count("b");
  auto rows = obs::SnapshotMetrics();
  EXPECT_EQ(FindMetric(rows, "a"), nullptr);
  EXPECT_NE(FindMetric(rows, "b"), nullptr);
}

TEST_F(ObsRegistryTest, SpansNestWithParentIds) {
  {
    obs::Span outer("outer");
    { obs::Span inner("inner"); }
  }
  auto spans = obs::SnapshotSpans();
  ASSERT_EQ(spans.size(), 2u);
  // Completion order: inner closes first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[0].parent, spans[1].id);
  EXPECT_NE(spans[0].id, spans[1].id);
  EXPECT_GE(spans[0].dur_us, 0);
  // The child starts no earlier than its parent.
  EXPECT_GE(spans[0].start_us, spans[1].start_us);
}

TEST_F(ObsRegistryTest, SaveRestoreRewindsCountersHistogramsAndSpans) {
  obs::Count("kept", 3);
  obs::Observe("h", 2.0);
  { obs::Span span("before"); }
  obs::SavedState saved = obs::Save();
  ASSERT_TRUE(saved.valid);

  obs::Count("kept", 10);
  obs::Count("fresh");
  obs::Observe("h", 64.0);
  { obs::Span span("after"); }

  obs::Restore(saved);
  auto rows = obs::SnapshotMetrics();
  const obs::MetricRow* kept = FindMetric(rows, "kept");
  ASSERT_NE(kept, nullptr);
  EXPECT_EQ(kept->count, 3u);
  // Metrics first touched after the capture vanish entirely.
  EXPECT_EQ(FindMetric(rows, "fresh"), nullptr);
  const obs::MetricRow* h = FindMetric(rows, "h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_DOUBLE_EQ(h->sum, 2.0);
  EXPECT_DOUBLE_EQ(h->max, 2.0);
  auto spans = obs::SnapshotSpans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "before");
}

TEST_F(ObsRegistryTest, SaveWhileDisabledIsInvalidAndRestoreIsNoop) {
  obs::SetEnabled(false);
  obs::SavedState saved = obs::Save();
  EXPECT_FALSE(saved.valid);
  obs::SetEnabled(true);
  obs::Count("a");
  obs::Restore(saved);  // must not wipe anything
  EXPECT_NE(FindMetric(obs::SnapshotMetrics(), "a"), nullptr);
}

// ---------------------------------------------------------------------------
// Engine-level: system relations, EXPLAIN, DumpState
// ---------------------------------------------------------------------------

class ObsEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::ResetForTesting();
    Dvms::Options options;
    options.canvas_width = 100;
    options.canvas_height = 100;
    options.trace = true;
    engine_ = std::make_unique<Dvms>(options);
    ASSERT_TRUE(engine_
                    ->CreateBaseTable("Sales",
                                      Schema({{"productId", ValueType::kInt64},
                                              {"region", ValueType::kString},
                                              {"revenue", ValueType::kDouble}}))
                    .ok());
    std::vector<Row> rows = {
        {Value::Int(1), Value::String("east"), Value::Double(100)},
        {Value::Int(2), Value::String("west"), Value::Double(200)},
        {Value::Int(3), Value::String("east"), Value::Double(300)},
        {Value::Int(4), Value::String("west"), Value::Double(400)},
    };
    ASSERT_TRUE(engine_->Insert("Sales", rows).ok());
  }
  void TearDown() override {
    engine_.reset();
    obs::SetEnabled(false);
    obs::ResetForTesting();
  }

  std::unique_ptr<Dvms> engine_;
};

TEST_F(ObsEngineTest, MetricsRelationIsQueryable) {
  // Generate executor traffic, then read it back through DeVIL itself —
  // via a read session, the path an observability dashboard would use.
  ASSERT_TRUE(engine_->Query("SELECT * FROM Sales").ok());
  Table t = Session(engine_.get())
                .Query("SELECT name, count FROM dvms_metrics "
                       "WHERE name = 'exec.rows.Scan'")
                .value();
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_GE(t.At(0, "count").value().int_value(), 4);
}

TEST_F(ObsEngineTest, MetricsRelationRendersCounterGaugesAsNull) {
  ASSERT_TRUE(engine_->Query("SELECT * FROM Sales").ok());
  Table t = engine_
                ->Query("SELECT min, p50 FROM dvms_metrics "
                        "WHERE name = 'exec.rows.Scan'")
                .value();
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_TRUE(t.At(0, "min").value().is_null());
  EXPECT_TRUE(t.At(0, "p50").value().is_null());
}

TEST_F(ObsEngineTest, SpansRelationIsQueryable) {
  ASSERT_TRUE(engine_->Query("SELECT * FROM Sales").ok());
  Table t = Session(engine_.get())
                .Query("SELECT name, dur_us FROM dvms_spans "
                       "WHERE name = 'engine.query'")
                .value();
  ASSERT_GE(t.num_rows(), 1u);
  EXPECT_GE(t.At(0, "dur_us").value().int_value(), 0);
}

TEST_F(ObsEngineTest, SystemRelationsAreExcludedFromCommitHistory) {
  ASSERT_TRUE(engine_->Query("SELECT * FROM dvms_metrics").ok());
  auto kind = engine_->catalog()->KindOf("dvms_metrics");
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(kind.value(), RelationKind::kSystem);
  std::string state = engine_->DumpState();
  EXPECT_NE(state.find("dvms_metrics [SYSTEM]"), std::string::npos);
}

TEST_F(ObsEngineTest, ExplainReturnsPlanWithoutExecuting) {
  Table t = engine_
                ->Query("EXPLAIN SELECT region, SUM(revenue) AS total "
                        "FROM Sales GROUP BY region")
                .value();
  ASSERT_GE(t.num_rows(), 2u);
  bool saw_scan = false, saw_agg = false;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const std::string op = t.At(r, "operator").value().string_value();
    if (op == "Scan") {
      saw_scan = true;
      EXPECT_EQ(t.At(r, "detail").value().string_value(), "Sales");
    }
    if (op == "Aggregate") saw_agg = true;
    // Plan-only report: no runtime columns.
    EXPECT_TRUE(t.At(r, "rows").value().is_null());
    EXPECT_TRUE(t.At(r, "self_us").value().is_null());
  }
  EXPECT_TRUE(saw_scan);
  EXPECT_TRUE(saw_agg);
}

TEST_F(ObsEngineTest, ExplainAnalyzeReportsRowsTimeAndMorsels) {
  Table t = engine_
                ->Query("EXPLAIN ANALYZE SELECT region, SUM(revenue) AS total "
                        "FROM Sales GROUP BY region")
                .value();
  ASSERT_GE(t.num_rows(), 2u);
  // Row 0 is the root (depth 0); its output is the query result size.
  EXPECT_EQ(t.At(0, "depth").value().int_value(), 0);
  EXPECT_EQ(t.At(0, "rows").value().int_value(), 2);
  bool saw_scan = false;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_GE(t.At(r, "rows").value().int_value(), 0);
    EXPECT_GE(t.At(r, "morsels").value().int_value(), 1);
    EXPECT_GE(t.At(r, "self_us").value().int_value(), 0);
    EXPECT_GE(t.At(r, "total_us").value().int_value(),
              t.At(r, "self_us").value().int_value());
    if (t.At(r, "operator").value().string_value() == "Scan") {
      saw_scan = true;
      EXPECT_EQ(t.At(r, "rows").value().int_value(), 4);
    }
  }
  EXPECT_TRUE(saw_scan);
}

TEST_F(ObsEngineTest, ExplainAnalyzeWorksWithTracingDisabled) {
  obs::SetEnabled(false);
  Table t = engine_->Query("EXPLAIN ANALYZE SELECT * FROM Sales").value();
  ASSERT_GE(t.num_rows(), 1u);
  EXPECT_EQ(t.At(0, "rows").value().int_value(), 4);
}

TEST_F(ObsEngineTest, NamedExplainMaterializesSystemRelation) {
  ASSERT_TRUE(
      engine_->LoadProgram("rep = EXPLAIN ANALYZE SELECT * FROM Sales;").ok());
  auto kind = engine_->catalog()->KindOf("rep");
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(kind.value(), RelationKind::kSystem);
  const Table* rep = engine_->GetTable("rep").value();
  ASSERT_GE(rep->num_rows(), 1u);
  // And it joins like any other relation.
  Table t = engine_->Query("SELECT operator FROM rep WHERE rows = 4").value();
  EXPECT_GE(t.num_rows(), 1u);
}

TEST_F(ObsEngineTest, NamedExplainRejectsNonSystemTarget) {
  EXPECT_FALSE(
      engine_->LoadProgram("Sales = EXPLAIN SELECT * FROM Sales;").ok());
}

TEST_F(ObsEngineTest, ExplainOfViewNamedExplainStillParses) {
  // A view literally named EXPLAIN: `EXPLAIN = SELECT ...` must stay a view
  // definition, not a bare EXPLAIN statement.
  ASSERT_TRUE(
      engine_->LoadProgram("EXPLAIN = SELECT productId FROM Sales;").ok());
  EXPECT_EQ(engine_->GetTable("EXPLAIN").value()->num_rows(), 4u);
}

TEST_F(ObsEngineTest, DumpStatePrintsEveryStatsCounter) {
  std::string state = engine_->DumpState();
  for (const char* field :
       {"events_processed:", "transactions_started:",
        "transactions_committed:", "transactions_aborted:", "renders:",
        "trace_recomputes:", "rollbacks:"}) {
    EXPECT_NE(state.find(field), std::string::npos) << field;
  }
}

// ---------------------------------------------------------------------------
// Full-Stats durability round-trip
// ---------------------------------------------------------------------------

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static int counter = 0;
    path_ = fs::path(::testing::TempDir()) /
            ("dvms_obs_" + tag + "_" + std::to_string(counter++));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

TEST(ObsStatsRoundTripTest, SnapshotRestoresEveryStatsCounter) {
  const char* kProgram = R"(
    C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U
        RETURN (D.t, D.x, D.y);
    v = SELECT productId, revenue FROM Sales WHERE revenue > 150;
    F = FORWARD TRACE FROM Sales WHERE productId = 3 TO v;
    P = render(SELECT 4 AS radius, 'red' AS fill,
               revenue / 4 AS center_x, revenue / 4 AS center_y FROM v);
  )";
  TempDir dir("stats");
  Dvms::Options options;
  options.canvas_width = 120;
  options.canvas_height = 120;
  options.data_dir = dir.str();
  options.wal_fsync = "always";
  Dvms::Stats want;
  {
    Dvms engine(options);
    ASSERT_TRUE(engine
                    .CreateBaseTable(
                        "Sales", Schema({{"productId", ValueType::kInt64},
                                         {"revenue", ValueType::kDouble}}))
                    .ok());
    ASSERT_TRUE(engine
                    .Insert("Sales",
                            {{Value::Int(1), Value::Double(100)},
                             {Value::Int(2), Value::Double(200)},
                             {Value::Int(3), Value::Double(300)}})
                    .ok());
    ASSERT_TRUE(engine.LoadProgram(kProgram).ok());
    // Committed click: started + committed.
    ASSERT_TRUE(engine.PushEvent(InputEvent::MouseDown(0, 10, 10)).ok());
    ASSERT_TRUE(engine.PushEvent(InputEvent::MouseUp(1, 10, 10)).ok());
    // A second MOUSE_DOWN mid-pattern: started + aborted.
    ASSERT_TRUE(engine.PushEvent(InputEvent::MouseDown(2, 20, 20)).ok());
    ASSERT_TRUE(engine.PushEvent(InputEvent::MouseMove(3, 30, 30)).ok());
    ASSERT_TRUE(engine.PushEvent(InputEvent::MouseDown(4, 31, 31)).ok());
    // A failing statement inside a mutation unit: one rollback.
    EXPECT_FALSE(engine.Delete("v", nullptr).ok());
    ASSERT_TRUE(engine.Render().ok());
    ASSERT_TRUE(engine.Checkpoint().ok());
    want = engine.stats();
    // The workload drove every counter away from zero.
    EXPECT_GT(want.events_processed, 0u);
    EXPECT_GT(want.transactions_started, 0u);
    EXPECT_GT(want.transactions_committed, 0u);
    EXPECT_GT(want.transactions_aborted, 0u);
    EXPECT_GT(want.renders, 0u);
    EXPECT_GT(want.trace_recomputes, 0u);
    EXPECT_GT(want.interactions_rolled_back, 0u);
  }
  Dvms recovered(options);
  ASSERT_TRUE(recovered.recovery_status().ok())
      << recovered.recovery_status().message();
  const Dvms::Stats& got = recovered.stats();
  EXPECT_EQ(got.events_processed, want.events_processed);
  EXPECT_EQ(got.transactions_started, want.transactions_started);
  EXPECT_EQ(got.transactions_committed, want.transactions_committed);
  EXPECT_EQ(got.transactions_aborted, want.transactions_aborted);
  EXPECT_EQ(got.renders, want.renders);
  EXPECT_EQ(got.trace_recomputes, want.trace_recomputes);
  EXPECT_EQ(got.interactions_rolled_back, want.interactions_rolled_back);
}

// ---------------------------------------------------------------------------
// Rollback no-leak under fault injection
// ---------------------------------------------------------------------------

std::map<std::string, uint64_t> CounterValues() {
  std::map<std::string, uint64_t> out;
  for (const obs::MetricRow& m : obs::SnapshotMetrics()) {
    out[m.name] = m.count;
  }
  return out;
}

TEST(ObsFaultTest, RolledBackUnitLeaksNoMetricsOrSpans) {
  obs::ResetForTesting();
  obs::SetEnabled(true);
  Dvms::Options options;
  options.canvas_width = 200;
  options.canvas_height = 150;
  options.num_threads = 4;  // pool workers must be wiped too
  Dvms engine(options);
  Schema schema({{"id", ValueType::kInt64},
                 {"v", ValueType::kDouble},
                 {"px", ValueType::kDouble}});
  ASSERT_TRUE(engine.CreateBaseTable("Pts", schema).ok());
  std::vector<Row> rows;
  for (int i = 0; i < 24; ++i) {
    rows.push_back({Value::Int(i), Value::Double((i * 37) % 100),
                    Value::Double(5.0 + i * 8.0)});
  }
  ASSERT_TRUE(engine.Insert("Pts", rows).ok());
  ASSERT_TRUE(engine.LoadProgram(R"(
    C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U
        RETURN (D.t, D.x AS x, D.x AS x2),
               (M.t, D.x AS x, M.x AS x2);
    C_RANGE = SELECT min2(x, x2) AS lo, max2(x, x2) AS hi
      FROM C ORDER BY t DESC LIMIT 1;
    picked = SELECT p.id AS id, p.v AS v
      FROM C_RANGE, Pts AS p
      WHERE p.px >= C_RANGE.lo AND p.px <= C_RANGE.hi;
    MARKS = SELECT 4 AS radius, 'red' AS fill,
        linear_scale(k.v, 0, 100, 0, 180) AS center_x,
        linear_scale(k.id, 0, 24, 0, 120) AS center_y
      FROM picked AS k;
    P = render(SELECT * FROM MARKS);
  )")
                  .ok());
  ASSERT_TRUE(engine.PushEvent(InputEvent::MouseDown(0, 40, 50)).ok());
  ASSERT_TRUE(engine.PushEvent(InputEvent::MouseUp(1, 90, 50)).ok());

  for (const char* site : {"storage", "ivm", "raster"}) {
    SCOPED_TRACE(site);
    const auto before = CounterValues();
    const size_t spans_before = obs::SnapshotSpans().size();
    FaultConfig config = ParseFaultSpec(std::string("1:1.0:") + site).value();
    config.max_injections = 1;
    Status st;
    {
      ScopedFaultInjector scoped(config);
      st = engine.PushEvent(InputEvent::MouseDown(2, 20, 40));
    }
    ASSERT_FALSE(st.ok());
    // Everything the failed unit recorded — on any thread — was rewound;
    // only the rollback itself is visible.
    auto after = CounterValues();
    auto expected = before;
    ++expected["dvms.rollbacks"];
    EXPECT_EQ(after, expected);
    EXPECT_EQ(obs::SnapshotSpans().size(), spans_before);
    // Replay the op cleanly so the next site starts from a committed state.
    ASSERT_TRUE(engine.PushEvent(InputEvent::MouseDown(2, 20, 40)).ok());
    ASSERT_TRUE(engine.PushEvent(InputEvent::MouseUp(3, 160, 40)).ok());
  }
  obs::SetEnabled(false);
  obs::ResetForTesting();
}

}  // namespace
}  // namespace dvms
