#include "expr/eval.h"
#include "expr/expr.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

class EvalTest : public ::testing::Test {
 protected:
  void SetUp() override { udfs_ = UdfRegistry::WithBuiltins(); }

  Result<Value> Eval(const ExprPtr& e, const Row& row = {}) {
    EvalContext ctx;
    ctx.udfs = &udfs_;
    return EvalExpr(*e, row, ctx);
  }

  UdfRegistry udfs_;
};

TEST_F(EvalTest, IntegerArithmeticStaysIntegral) {
  auto v = Eval(MakeBinary(BinaryOp::kAdd, MakeLiteral(Value::Int(2)),
                           MakeLiteral(Value::Int(3))))
               .value();
  EXPECT_EQ(v.type(), ValueType::kInt64);
  EXPECT_EQ(v.int_value(), 5);
  v = Eval(MakeBinary(BinaryOp::kDiv, MakeLiteral(Value::Int(7)),
                      MakeLiteral(Value::Int(2))))
          .value();
  EXPECT_EQ(v.int_value(), 3);  // truncating integer division
  v = Eval(MakeBinary(BinaryOp::kMod, MakeLiteral(Value::Int(7)),
                      MakeLiteral(Value::Int(4))))
          .value();
  EXPECT_EQ(v.int_value(), 3);
}

TEST_F(EvalTest, MixedArithmeticPromotesToDouble) {
  auto v = Eval(MakeBinary(BinaryOp::kMul, MakeLiteral(Value::Int(2)),
                           MakeLiteral(Value::Double(1.5))))
               .value();
  EXPECT_EQ(v.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(v.double_value(), 3.0);
}

TEST_F(EvalTest, DivisionByZeroIsAnError) {
  EXPECT_FALSE(Eval(MakeBinary(BinaryOp::kDiv, MakeLiteral(Value::Int(1)),
                               MakeLiteral(Value::Int(0))))
                   .ok());
  EXPECT_FALSE(Eval(MakeBinary(BinaryOp::kDiv, MakeLiteral(Value::Double(1)),
                               MakeLiteral(Value::Double(0))))
                   .ok());
  EXPECT_FALSE(Eval(MakeBinary(BinaryOp::kMod, MakeLiteral(Value::Int(1)),
                               MakeLiteral(Value::Int(0))))
                   .ok());
}

TEST_F(EvalTest, NullPropagatesThroughArithmetic) {
  auto v = Eval(MakeBinary(BinaryOp::kAdd, MakeLiteral(Value::Null()),
                           MakeLiteral(Value::Int(1))))
               .value();
  EXPECT_TRUE(v.is_null());
}

TEST_F(EvalTest, NullComparisonsAreFalse) {
  for (BinaryOp op : {BinaryOp::kEq, BinaryOp::kNe, BinaryOp::kLt,
                      BinaryOp::kGe}) {
    auto v = Eval(MakeBinary(op, MakeLiteral(Value::Null()),
                             MakeLiteral(Value::Int(1))))
                 .value();
    EXPECT_FALSE(v.bool_value());
  }
}

TEST_F(EvalTest, StringConcatenationViaPlus) {
  auto v = Eval(MakeBinary(BinaryOp::kAdd, MakeLiteral(Value::String("ab")),
                           MakeLiteral(Value::String("cd"))))
               .value();
  EXPECT_EQ(v.string_value(), "abcd");
}

TEST_F(EvalTest, StringArithmeticOtherwiseFails) {
  EXPECT_FALSE(Eval(MakeBinary(BinaryOp::kMul,
                               MakeLiteral(Value::String("ab")),
                               MakeLiteral(Value::Int(2))))
                   .ok());
}

TEST_F(EvalTest, ShortCircuitAndOr) {
  // AND short-circuits: the erroring right side is never evaluated.
  auto division_by_zero =
      MakeBinary(BinaryOp::kDiv, MakeLiteral(Value::Int(1)),
                 MakeLiteral(Value::Int(0)));
  auto v = Eval(MakeBinary(BinaryOp::kAnd, MakeLiteral(Value::Bool(false)),
                           division_by_zero));
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v.value().bool_value());
  v = Eval(MakeBinary(BinaryOp::kOr, MakeLiteral(Value::Bool(true)),
                      division_by_zero));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.value().bool_value());
}

TEST_F(EvalTest, UnaryOperators) {
  EXPECT_EQ(Eval(MakeUnary(UnaryOp::kNegate, MakeLiteral(Value::Int(5))))
                .value()
                .int_value(),
            -5);
  EXPECT_DOUBLE_EQ(
      Eval(MakeUnary(UnaryOp::kNegate, MakeLiteral(Value::Double(2.5))))
          .value()
          .double_value(),
      -2.5);
  EXPECT_TRUE(Eval(MakeUnary(UnaryOp::kNot, MakeLiteral(Value::Int(0))))
                  .value()
                  .bool_value());
  EXPECT_TRUE(
      Eval(MakeUnary(UnaryOp::kNegate, MakeLiteral(Value::Null())))
          .value()
          .is_null());
}

TEST_F(EvalTest, ColumnRefReadsRow) {
  auto ref = MakeColumnRef("x");
  ref->resolved_index = 1;
  Row row = {Value::Int(1), Value::String("hello")};
  EXPECT_EQ(Eval(ref, row).value().string_value(), "hello");
}

TEST_F(EvalTest, UnresolvedColumnRefFails) {
  auto r = Eval(MakeColumnRef("x"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

TEST_F(EvalTest, OutOfRangeResolvedIndexFails) {
  auto ref = MakeColumnRef("x");
  ref->resolved_index = 5;
  EXPECT_FALSE(Eval(ref, {Value::Int(1)}).ok());
}

TEST_F(EvalTest, UnknownFunctionFails) {
  auto r = Eval(MakeCall("frobnicate", {MakeLiteral(Value::Int(1))}));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(EvalTest, WrongArityFails) {
  EXPECT_FALSE(Eval(MakeCall("abs", {})).ok());
  EXPECT_FALSE(Eval(MakeCall("abs", {MakeLiteral(Value::Int(1)),
                                     MakeLiteral(Value::Int(2))}))
                   .ok());
}

TEST_F(EvalTest, InRelationWithNullNeedleIsFalse) {
  auto set = std::make_shared<ValueSet>();
  set->insert(Value::Int(1));
  std::unordered_map<std::string, std::shared_ptr<const ValueSet>> sets;
  sets.emplace("sel", set);
  EvalContext ctx;
  ctx.udfs = &udfs_;
  ctx.in_sets = &sets;
  auto e = MakeInRelation(MakeLiteral(Value::Null()), "sel", false);
  EXPECT_FALSE(EvalExpr(*e, {}, ctx).value().bool_value());
  // NOT IN with NULL is also false (SQL-ish collapsed semantics).
  auto ne = MakeInRelation(MakeLiteral(Value::Null()), "sel", true);
  EXPECT_FALSE(EvalExpr(*ne, {}, ctx).value().bool_value());
}

TEST_F(EvalTest, InRectangleHandlesReversedCorners) {
  auto call = [this](double px, double py, double x0, double y0, double x1,
                     double y1) {
    return Eval(MakeCall("in_rectangle",
                         {MakeLiteral(Value::Double(px)),
                          MakeLiteral(Value::Double(py)),
                          MakeLiteral(Value::Double(x0)),
                          MakeLiteral(Value::Double(y0)),
                          MakeLiteral(Value::Double(x1)),
                          MakeLiteral(Value::Double(y1))}))
        .value()
        .bool_value();
  };
  // Dragging up-left gives reversed corners; the hit test still works.
  EXPECT_TRUE(call(5, 5, 10, 10, 0, 0));
  EXPECT_TRUE(call(5, 5, 0, 0, 10, 10));
  EXPECT_FALSE(call(15, 5, 0, 0, 10, 10));
  // Boundary points are inside.
  EXPECT_TRUE(call(10, 10, 0, 0, 10, 10));
}

TEST_F(EvalTest, BandScalePartitionsRange) {
  auto band = [this](int i) {
    return Eval(MakeCall("band_scale",
                         {MakeLiteral(Value::Int(i)),
                          MakeLiteral(Value::Int(4)),
                          MakeLiteral(Value::Double(0)),
                          MakeLiteral(Value::Double(400)),
                          MakeLiteral(Value::Double(0))}))
        .value()
        .double_value();
  };
  EXPECT_DOUBLE_EQ(band(0), 0);
  EXPECT_DOUBLE_EQ(band(1), 100);
  EXPECT_DOUBLE_EQ(band(3), 300);
  // band_width with padding eats into the band.
  auto width = Eval(MakeCall("band_width",
                             {MakeLiteral(Value::Int(4)),
                              MakeLiteral(Value::Double(0)),
                              MakeLiteral(Value::Double(400)),
                              MakeLiteral(Value::Double(0.2))}))
                   .value()
                   .double_value();
  EXPECT_DOUBLE_EQ(width, 80);
}

TEST_F(EvalTest, LinearScaleDegenerateDomain) {
  auto v = Eval(MakeCall("linear_scale",
                         {MakeLiteral(Value::Double(5)),
                          MakeLiteral(Value::Double(5)),
                          MakeLiteral(Value::Double(5)),
                          MakeLiteral(Value::Double(0)),
                          MakeLiteral(Value::Double(100))}))
               .value();
  EXPECT_DOUBLE_EQ(v.double_value(), 0);  // collapses to range_min
}

}  // namespace
}  // namespace dvms
