// Resource-governor coverage: QueryContext deadline/cancel/budget
// semantics on a fake clock, the admission gate, and the engine-level
// contract — a governed abort is cooperative, rolls back all-or-nothing,
// appends no WAL frame, and is visible in governor_stats() and the
// dvms_governor system relation. Deterministic throughout: every deadline
// test drives an injected clock, never wall time.

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/dvms.h"
#include "governor/governor.h"
#include "parser/parser.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// QueryContext unit coverage
// ---------------------------------------------------------------------------

TEST(QueryContextTest, DeadlineAbortsAtFirstCheckPastIt) {
  int64_t now = 1000;
  QueryContext ctx;
  ctx.ArmDeadline(10, [&now] { return now; });  // absolute: 1000 + 10ms
  EXPECT_TRUE(ctx.Check().ok());
  now += 9999;
  EXPECT_TRUE(ctx.Check().ok());
  now += 2;  // past 11000
  Status st = ctx.Check();
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(ctx.aborted());
  EXPECT_EQ(ctx.abort_code(), StatusCode::kDeadlineExceeded);
}

TEST(QueryContextTest, AbortIsSticky) {
  int64_t now = 0;
  QueryContext ctx;
  ctx.ArmDeadline(1, [&now] { return now; });
  now = 10'000'000;
  ASSERT_EQ(ctx.Check().code(), StatusCode::kDeadlineExceeded);
  // Later checks — even ones that would pass in isolation — repeat the
  // terminal status so every morsel unwinds with the same error.
  now = 0;
  EXPECT_EQ(ctx.Check().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ctx.Charge(1).code(), StatusCode::kDeadlineExceeded);
}

TEST(QueryContextTest, CancelFlagObservedAtNextCheck) {
  QueryContext ctx;
  auto flag = std::make_shared<std::atomic<bool>>(false);
  ctx.ShareCancelFlag(flag);
  EXPECT_TRUE(ctx.Check().ok());
  flag->store(true);
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);
  EXPECT_EQ(ctx.abort_code(), StatusCode::kCancelled);
}

TEST(QueryContextTest, MemoryBudgetChargesReleasesAndPeaks) {
  QueryContext ctx;
  ctx.ArmMemoryBudget(1000);
  EXPECT_TRUE(ctx.Charge(400).ok());
  EXPECT_TRUE(ctx.Charge(400).ok());
  EXPECT_EQ(ctx.charged_bytes(), 800);
  ctx.Release(300);
  EXPECT_EQ(ctx.charged_bytes(), 500);
  EXPECT_EQ(ctx.peak_bytes(), 800);
  EXPECT_TRUE(ctx.Charge(400).ok());  // back to 900, still under
  Status st = ctx.Charge(200);        // would be 1100
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.abort_code(), StatusCode::kResourceExhausted);
}

TEST(QueryContextTest, UnarmedContextNeverAborts) {
  QueryContext ctx;
  EXPECT_TRUE(ctx.Check().ok());
  EXPECT_TRUE(ctx.Charge(INT64_MAX / 2).ok());
  EXPECT_EQ(ctx.checkpoints(), 1u);
}

// ---------------------------------------------------------------------------
// Free-function plumbing
// ---------------------------------------------------------------------------

TEST(GovernorPlumbingTest, UncontextedCheckpointIsFree) {
  ASSERT_EQ(governor::Current(), nullptr);
  EXPECT_TRUE(governor::CheckPoint().ok());
  EXPECT_TRUE(governor::ChargeMemory(1 << 30).ok());
}

TEST(GovernorPlumbingTest, SuppressScopeMasksInstalledContext) {
  QueryContext ctx;
  auto flag = std::make_shared<std::atomic<bool>>(true);  // pre-cancelled
  ctx.ShareCancelFlag(flag);
  GovernorRequestScope scope(&ctx);
  {
    GovernorSuppressScope suppress;
    EXPECT_TRUE(governor::Suppressed());
    EXPECT_TRUE(governor::CheckPoint().ok());
  }
  EXPECT_FALSE(governor::Suppressed());
  EXPECT_EQ(governor::CheckPoint().code(), StatusCode::kCancelled);
}

TEST(GovernorPlumbingTest, SuppressionIsThreadLocal) {
  // One request's suppression (rollback, replica apply) must never blind
  // the governor on a concurrently executing request's thread.
  GovernorSuppressScope suppress;
  ASSERT_TRUE(governor::Suppressed());
  bool other_suppressed = true;
  std::thread peer([&] { other_suppressed = governor::Suppressed(); });
  peer.join();
  EXPECT_FALSE(other_suppressed) << "suppression leaked across threads";
}

// ---------------------------------------------------------------------------
// Admission gate
// ---------------------------------------------------------------------------

TEST(AdmissionGateTest, ShedsAtCapacityWithZeroQueue) {
  AdmissionGate gate(/*max_inflight=*/1, /*queue_us=*/0);
  ASSERT_TRUE(gate.Enter().ok());
  Status st = gate.Enter();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(gate.rejected(), 1);
  gate.Leave();
  EXPECT_TRUE(gate.Enter().ok());
  gate.Leave();
  EXPECT_EQ(gate.admitted(), 2);
}

TEST(AdmissionGateTest, QueuedArrivalAdmitsWhenSlotFrees) {
  AdmissionGate gate(1, /*queue_us=*/5'000'000);
  ASSERT_TRUE(gate.Enter().ok());
  std::thread releaser([&gate] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    gate.Leave();
  });
  // Blocks until the releaser frees the slot — well inside the queue wait.
  EXPECT_TRUE(gate.Enter().ok());
  releaser.join();
  gate.Leave();
  EXPECT_EQ(gate.admitted(), 2);
  EXPECT_EQ(gate.rejected(), 0);
}

// ---------------------------------------------------------------------------
// Engine-level contract
// ---------------------------------------------------------------------------

const char* kGovernedProgram = R"(
  totals = SELECT bucket, SUM(v) AS total FROM Pts GROUP BY bucket;
  MARKS = SELECT 3 AS radius, 'blue' AS fill,
      linear_scale(t.total, 0, 5000, 0, 180) AS center_x,
      linear_scale(t.bucket, 0, 16, 0, 120) AS center_y
    FROM totals AS t;
  P = render(SELECT * FROM MARKS);
)";

/// Step-controlled fake clock: returns a counter that advances by `step`
/// microseconds per read. step = 0 freezes time (setup never expires).
struct FakeClock {
  std::shared_ptr<std::atomic<int64_t>> now =
      std::make_shared<std::atomic<int64_t>>(0);
  std::shared_ptr<std::atomic<int64_t>> step =
      std::make_shared<std::atomic<int64_t>>(0);
  QueryContext::Clock fn() const {
    auto n = now;
    auto s = step;
    return [n, s] { return n->fetch_add(s->load()); };
  }
};

std::unique_ptr<Dvms> MakeGovernedEngine(Dvms::Options options) {
  options.canvas_width = 200;
  options.canvas_height = 150;
  auto engine = std::make_unique<Dvms>(options);
  Schema schema({{"bucket", ValueType::kInt64}, {"v", ValueType::kDouble}});
  EXPECT_TRUE(engine->CreateBaseTable("Pts", schema).ok());
  std::vector<Row> rows;
  for (int i = 0; i < 256; ++i) {
    rows.push_back({Value::Int(i % 16), Value::Double(i)});
  }
  EXPECT_TRUE(engine->Insert("Pts", rows).ok());
  EXPECT_TRUE(engine->LoadProgram(kGovernedProgram).ok());
  return engine;
}

std::string Fingerprint(const Dvms& engine) {
  std::ostringstream out;
  for (const std::string& name : engine.catalog().Names()) {
    auto table = engine.GetTable(name);
    if (!table.ok()) continue;
    out << "== " << name << " ==\n";
    for (size_t r = 0; r < table.value()->num_rows(); ++r) {
      for (const Value& v : table.value()->row(r)) out << v.ToString() << "|";
      out << "\n";
    }
  }
  return out.str();
}

std::vector<Row> SomeRows(int n, int base) {
  std::vector<Row> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back({Value::Int((base + i) % 16), Value::Double(base + i)});
  }
  return rows;
}

TEST(GovernorEngineTest, DeadlineAbortRollsBackBitIdentically) {
  FakeClock clock;
  Dvms::Options options;
  options.deadline_ms = 50;
  options.governor_clock = clock.fn();
  auto engine = MakeGovernedEngine(options);

  const std::string before = Fingerprint(*engine);
  const PixelBuffer before_pixels = engine->pixels();

  // 20 ms per checkpoint: the third check crosses the 50 ms deadline, so
  // the insert aborts cooperatively mid-maintenance.
  clock.step->store(20'000);
  Status st = engine->Insert("Pts", SomeRows(64, 1000));
  clock.step->store(0);
  ASSERT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.message();

  EXPECT_EQ(Fingerprint(*engine), before);
  EXPECT_TRUE(engine->pixels().Equals(before_pixels));
  Dvms::GovernorStats stats = engine->governor_stats();
  EXPECT_EQ(stats.deadline_aborts, 1u);
  EXPECT_GT(stats.checkpoints, 0u);

  // Frozen clock again: the identical statement lands cleanly.
  EXPECT_TRUE(engine->Insert("Pts", SomeRows(64, 1000)).ok());
}

TEST(GovernorEngineTest, CancelAbortsNextRequestAndIsConsumed) {
  FakeClock clock;
  Dvms::Options options;
  options.deadline_ms = 1'000'000;  // arms the governor; never expires
  options.governor_clock = clock.fn();
  auto engine = MakeGovernedEngine(options);
  const std::string before = Fingerprint(*engine);

  engine->RequestCancel();
  Status st = engine->Insert("Pts", SomeRows(8, 500));
  ASSERT_EQ(st.code(), StatusCode::kCancelled) << st.message();
  EXPECT_EQ(Fingerprint(*engine), before);
  EXPECT_EQ(engine->governor_stats().cancel_aborts, 1u);

  // The flag is consumed by the abort: the retry goes through.
  EXPECT_TRUE(engine->Insert("Pts", SomeRows(8, 500)).ok());
  EXPECT_EQ(engine->governor_stats().cancel_aborts, 1u);
}

TEST(GovernorEngineTest, MemoryBudgetAbortsOversizedJoin) {
  Dvms::Options options;
  options.mem_budget = 256 * 1024;
  auto engine = MakeGovernedEngine(options);

  // Setup traffic (256-row inserts, small views) fits the budget easily;
  // a self-cross-join (256 x 256 pairs) does not.
  Status st = engine->Query(
                       "SELECT a.v AS x, b.v AS y FROM Pts AS a, Pts AS b")
                  .status();
  ASSERT_EQ(st.code(), StatusCode::kResourceExhausted) << st.message();
  Dvms::GovernorStats stats = engine->governor_stats();
  EXPECT_EQ(stats.mem_aborts, 1u);
  EXPECT_GT(stats.peak_mem_bytes, 0);

  // The engine stays usable and in-budget statements still run.
  EXPECT_TRUE(engine->Query("SELECT COUNT(*) AS n FROM Pts").ok());
  EXPECT_TRUE(engine->Insert("Pts", SomeRows(8, 900)).ok());
}

TEST(GovernorEngineTest, AdmissionShedsConcurrentArrival) {
  // A clock that parks the first governed request until released, so the
  // second arrival deterministically finds the gate full.
  std::mutex m;
  std::condition_variable cv;
  bool in_request = false;
  bool release = true;  // un-parked during engine setup

  Dvms::Options options;
  options.deadline_ms = 1'000'000;
  options.max_inflight = 1;
  options.queue_ms = 0;  // shed immediately at capacity
  options.governor_clock = [&]() -> int64_t {
    std::unique_lock<std::mutex> lock(m);
    if (!in_request) {
      in_request = true;
      cv.notify_all();
    }
    cv.wait(lock, [&] { return release; });
    return 0;
  };
  auto engine = MakeGovernedEngine(options);

  // Park the next governed request at its first clock read.
  {
    std::unique_lock<std::mutex> lock(m);
    release = false;
    in_request = false;
  }
  std::thread holder([&] {
    EXPECT_TRUE(engine->Insert("Pts", SomeRows(4, 700)).ok());
  });
  {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return in_request; });
  }
  // The holder owns the single slot and is parked inside its request.
  Status st = engine->Insert("Pts", SomeRows(4, 800));
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.message();
  {
    std::unique_lock<std::mutex> lock(m);
    release = true;
    cv.notify_all();
  }
  holder.join();

  Dvms::GovernorStats stats = engine->governor_stats();
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_GT(stats.admitted, 0);

  // With the slot free again the shed statement retries cleanly.
  EXPECT_TRUE(engine->Insert("Pts", SomeRows(4, 800)).ok());
}

TEST(GovernorEngineTest, AbortedRequestAppendsNoWalFrame) {
  fs::path dir = fs::path(::testing::TempDir()) /
                 ("dvms_governor_wal_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  FakeClock clock;
  Dvms::Options options;
  options.deadline_ms = 50;
  options.governor_clock = clock.fn();
  options.data_dir = dir.string();
  options.snapshot_interval = 0;  // log-only: byte comparison is exact
  {
    auto engine = MakeGovernedEngine(options);
    ASSERT_TRUE(engine->Insert("Pts", SomeRows(16, 400)).ok());
    ASSERT_TRUE(engine->FlushWal().ok());
    const uint64_t committed_frames =
        engine->durability_stats().frames_appended;
    uintmax_t log_bytes = 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
      log_bytes += fs::file_size(entry.path());
    }

    clock.step->store(20'000);
    Status st = engine->Insert("Pts", SomeRows(64, 2000));
    clock.step->store(0);
    ASSERT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.message();

    // No frame, no bytes: the log cannot contain an aborted request.
    ASSERT_TRUE(engine->FlushWal().ok());
    EXPECT_EQ(engine->durability_stats().frames_appended, committed_frames);
    uintmax_t log_bytes_after = 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
      log_bytes_after += fs::file_size(entry.path());
    }
    EXPECT_EQ(log_bytes_after, log_bytes);
  }

  // Recovery replays only committed frames: the recovered engine matches a
  // never-aborted twin.
  Dvms::Options recovered_options;
  recovered_options.canvas_width = 200;
  recovered_options.canvas_height = 150;
  recovered_options.data_dir = dir.string();
  Dvms recovered(recovered_options);
  ASSERT_TRUE(recovered.recovery_status().ok())
      << recovered.recovery_status().message();

  auto control = MakeGovernedEngine(Dvms::Options());
  ASSERT_TRUE(control->Insert("Pts", SomeRows(16, 400)).ok());
  EXPECT_EQ(Fingerprint(recovered), Fingerprint(*control));
  fs::remove_all(dir);
}

TEST(GovernorEngineTest, GovernorRelationIsQueryable) {
  FakeClock clock;
  Dvms::Options options;
  options.deadline_ms = 50;
  options.mem_budget = 1 << 30;
  options.governor_clock = clock.fn();
  auto engine = MakeGovernedEngine(options);

  clock.step->store(20'000);
  ASSERT_EQ(engine->Insert("Pts", SomeRows(32, 300)).code(),
            StatusCode::kDeadlineExceeded);
  clock.step->store(0);

  auto result = engine->Query(
      "SELECT name, value FROM dvms_governor ORDER BY name");
  ASSERT_TRUE(result.ok()) << result.status().message();
  const Table& t = result.value();
  int64_t deadline_aborts = -1, armed = -1, deadline_ms = -1;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const std::string key = t.row(r)[0].ToString();
    int64_t value = t.row(r)[1].AsInt().value();
    if (key == "deadline_aborts") deadline_aborts = value;
    if (key == "armed") armed = value;
    if (key == "deadline_ms") deadline_ms = value;
  }
  EXPECT_EQ(deadline_aborts, 1);
  EXPECT_EQ(armed, 1);
  EXPECT_EQ(deadline_ms, 50);
}

TEST(GovernorEngineTest, ArmedButUntriggeredMatchesUnarmedBitIdentically) {
  // The governor must be pure overhead policy: armed-with-roomy-limits and
  // unarmed engines produce identical tables and pixels.
  auto unarmed = MakeGovernedEngine(Dvms::Options());

  Dvms::Options armed_options;
  armed_options.deadline_ms = 1'000'000'000;
  armed_options.mem_budget = INT64_MAX / 2;
  armed_options.max_inflight = 8;
  armed_options.queue_ms = 1000;
  auto armed = MakeGovernedEngine(armed_options);

  for (Dvms* engine : {unarmed.get(), armed.get()}) {
    ASSERT_TRUE(engine->Insert("Pts", SomeRows(64, 600)).ok());
    ASSERT_TRUE(
        engine->Query("SELECT a.v AS x, b.v AS y FROM Pts AS a, Pts AS b "
                      "WHERE a.bucket = b.bucket")
            .ok());
    auto removed = engine->Delete(
        "Pts", ParseExpression("bucket % 3 = 1").value());
    ASSERT_TRUE(removed.ok());
    ASSERT_TRUE(engine->Render().ok());
  }
  EXPECT_EQ(Fingerprint(*armed), Fingerprint(*unarmed));
  EXPECT_TRUE(armed->pixels().Equals(unarmed->pixels()));
  EXPECT_GT(armed->governor_stats().checkpoints, 0u);
  EXPECT_EQ(armed->governor_stats().deadline_aborts, 0u);
  EXPECT_EQ(armed->governor_stats().mem_aborts, 0u);
  EXPECT_EQ(armed->governor_stats().rejected, 0);
}

}  // namespace
}  // namespace dvms
