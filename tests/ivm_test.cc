#include "query/ivm.h"
#include "workload/tpch.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

class CrossfilterCubeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchConfig config;
    config.num_rows = 2000;
    config.seed = 7;
    fact_ = GenerateTpchSales(config);
    cube_ = std::make_unique<CrossfilterCube>(
        CrossfilterCube::Build(fact_, {"region", "year", "month", "dow"},
                               "revenue")
            .value());
  }

  /// Reference: direct scan-based group-by-sum with an optional filter.
  std::map<std::string, double> DirectSums(const std::string& dim,
                                           const std::string& filter_dim,
                                           const ValueSet* filter) {
    std::map<std::string, double> out;
    size_t d = fact_.schema().IndexOf(dim).value();
    size_t f = filter == nullptr
                   ? 0
                   : fact_.schema().IndexOf(filter_dim).value();
    size_t m = fact_.schema().IndexOf("revenue").value();
    for (const Row& row : fact_.rows()) {
      if (filter != nullptr && filter->count(row[f]) == 0) continue;
      out[row[d].ToString()] += row[m].double_value();
    }
    return out;
  }

  Table fact_;
  std::unique_ptr<CrossfilterCube> cube_;
};

TEST_F(CrossfilterCubeTest, TotalsMatchDirectScan) {
  Table totals = cube_->GroupTotals("region").value();
  auto direct = DirectSums("region", "", nullptr);
  ASSERT_EQ(totals.num_rows(), direct.size());
  for (const Row& row : totals.rows()) {
    EXPECT_NEAR(row[1].double_value(), direct[row[0].ToString()], 1e-6);
  }
}

TEST_F(CrossfilterCubeTest, FilteredSumsMatchDirectScan) {
  // Filter years to {1997, 1998} — the Figure 1 selection.
  ValueSet years;
  years.insert(Value::Int(1997));
  years.insert(Value::Int(1998));
  Table filtered = cube_->FilteredGroupSums("region", "year", years).value();
  auto direct = DirectSums("region", "year", &years);
  ASSERT_EQ(filtered.num_rows(), 5u);
  for (const Row& row : filtered.rows()) {
    EXPECT_NEAR(row[1].double_value(), direct[row[0].ToString()], 1e-6);
  }
}

TEST_F(CrossfilterCubeTest, EverySelectedValueSumsToTotal) {
  // Selecting every filter value reproduces the unfiltered totals.
  ValueSet all;
  for (int y = 1992; y <= 1998; ++y) all.insert(Value::Int(y));
  Table filtered = cube_->FilteredGroupSums("month", "year", all).value();
  Table totals = cube_->GroupTotals("month").value();
  ASSERT_EQ(filtered.num_rows(), totals.num_rows());
  for (size_t i = 0; i < filtered.num_rows(); ++i) {
    EXPECT_NEAR(filtered.row(i)[1].double_value(),
                totals.row(i)[1].double_value(), 1e-6);
  }
}

TEST_F(CrossfilterCubeTest, EmptySelectionYieldsZeros) {
  ValueSet none;
  Table filtered = cube_->FilteredGroupSums("region", "year", none).value();
  for (const Row& row : filtered.rows()) {
    EXPECT_DOUBLE_EQ(row[1].double_value(), 0.0);
  }
}

TEST_F(CrossfilterCubeTest, SameDimensionRejected) {
  ValueSet v;
  EXPECT_FALSE(cube_->FilteredGroupSums("year", "year", v).ok());
  EXPECT_FALSE(cube_->FilteredGroupSums("nope", "year", v).ok());
  EXPECT_FALSE(cube_->GroupTotals("nope").ok());
}

TEST_F(CrossfilterCubeTest, UpdateFoldsDeltaRows) {
  Table delta(fact_.schema());
  delta.AppendUnchecked({Value::Int(999999), Value::String("ASIA"),
                         Value::Int(1997), Value::Int(6), Value::Int(3),
                         Value::Double(1), Value::Double(1000.0)});
  Table before = cube_->GroupTotals("region").value();
  ASSERT_TRUE(cube_->Update(delta).ok());
  Table after = cube_->GroupTotals("region").value();
  size_t asia = 0;
  for (size_t i = 0; i < after.num_rows(); ++i) {
    if (after.row(i)[0].string_value() == "ASIA") asia = i;
  }
  EXPECT_NEAR(after.row(asia)[1].double_value(),
              before.row(asia)[1].double_value() + 1000.0, 1e-6);
}

TEST_F(CrossfilterCubeTest, BuildRequiresTwoDims) {
  EXPECT_FALSE(CrossfilterCube::Build(fact_, {"region"}, "revenue").ok());
  EXPECT_FALSE(
      CrossfilterCube::Build(fact_, {"region", "nope"}, "revenue").ok());
}

TEST(TpchGeneratorTest, DeterministicAndShaped) {
  TpchConfig config;
  config.num_rows = 500;
  Table a = GenerateTpchSales(config);
  Table b = GenerateTpchSales(config);
  EXPECT_TRUE(a.SameContents(b));
  EXPECT_EQ(a.num_rows(), 500u);
  // Values within the documented domains.
  size_t year = a.schema().IndexOf("year").value();
  size_t month = a.schema().IndexOf("month").value();
  size_t revenue = a.schema().IndexOf("revenue").value();
  for (const Row& row : a.rows()) {
    EXPECT_GE(row[year].int_value(), 1992);
    EXPECT_LE(row[year].int_value(), 1998);
    EXPECT_GE(row[month].int_value(), 1);
    EXPECT_LE(row[month].int_value(), 12);
    EXPECT_GT(row[revenue].double_value(), 0);
  }
}

TEST(TpchGeneratorTest, AllRegionsPresent) {
  TpchConfig config;
  config.num_rows = 2000;
  Table t = GenerateTpchSales(config);
  size_t region = t.schema().IndexOf("region").value();
  std::set<std::string> seen;
  for (const Row& row : t.rows()) seen.insert(row[region].string_value());
  EXPECT_EQ(seen.size(), TpchRegions().size());
}

}  // namespace
}  // namespace dvms
