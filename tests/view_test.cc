#include "query/maintenance.h"
#include "query/view.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

class ViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    udfs_ = UdfRegistry::WithBuiltins();
    maintainer_ = std::make_unique<ViewMaintainer>(&catalog_, &udfs_);
    auto sales = catalog_
                     .CreateTable("Sales",
                                  Schema({{"productId", ValueType::kInt64},
                                          {"revenue", ValueType::kDouble}}),
                                  RelationKind::kBase)
                     .value();
    for (int i = 1; i <= 5; ++i) {
      ASSERT_TRUE(
          sales->Append({Value::Int(i), Value::Double(i * 100.0)}).ok());
    }
  }

  Catalog catalog_;
  UdfRegistry udfs_;
  std::unique_ptr<ViewMaintainer> maintainer_;
};

TEST_F(ViewTest, DefineAndRecompute) {
  auto plan = MakeFilter(MakeScan("Sales"),
                         MakeBinary(BinaryOp::kGt, MakeColumnRef("revenue"),
                                    MakeLiteral(Value::Double(250))));
  ASSERT_TRUE(maintainer_->DefineView("big", plan).ok());
  ASSERT_TRUE(maintainer_->RecomputeAll().ok());
  auto big = catalog_.Get("big").value();
  EXPECT_EQ(big->current().num_rows(), 3u);
}

TEST_F(ViewTest, ChainedViewsRecomputeInOrder) {
  ASSERT_TRUE(maintainer_
                  ->DefineView("big",
                               MakeFilter(MakeScan("Sales"),
                                          MakeBinary(BinaryOp::kGt,
                                                     MakeColumnRef("revenue"),
                                                     MakeLiteral(Value::Double(
                                                         250)))))
                  .ok());
  ASSERT_TRUE(
      maintainer_
          ->DefineView("big_ids", MakeProject(MakeScan("big"),
                                              {MakeColumnRef("productId")},
                                              {"productId"}))
          .ok());
  ASSERT_TRUE(maintainer_->RecomputeAll().ok());
  EXPECT_EQ(catalog_.Get("big_ids").value()->current().num_rows(), 3u);

  // Appending a base row and notifying propagates through the chain.
  ASSERT_TRUE(catalog_.Get("Sales")
                  .value()
                  ->Append({Value::Int(6), Value::Double(600)})
                  .ok());
  ASSERT_TRUE(maintainer_->OnChanged({"Sales"}).ok());
  EXPECT_EQ(catalog_.Get("big_ids").value()->current().num_rows(), 4u);
}

TEST_F(ViewTest, OnChangedSkipsUnaffectedViews) {
  ASSERT_TRUE(maintainer_
                  ->DefineView("v1", MakeProject(MakeScan("Sales"),
                                                 {MakeColumnRef("productId")},
                                                 {"p"}))
                  .ok());
  auto other = catalog_
                   .CreateTable("Other", Schema({{"x", ValueType::kInt64}}),
                                RelationKind::kBase)
                   .value();
  ASSERT_TRUE(other->Append({Value::Int(1)}).ok());
  ASSERT_TRUE(
      maintainer_
          ->DefineView("v2", MakeProject(MakeScan("Other"),
                                         {MakeColumnRef("x")}, {"x"}))
          .ok());
  ASSERT_TRUE(maintainer_->RecomputeAll().ok());
  size_t before = maintainer_->recompute_count();
  ASSERT_TRUE(maintainer_->OnChanged({"Other"}).ok());
  EXPECT_EQ(maintainer_->recompute_count(), before + 1);  // only v2
}

TEST_F(ViewTest, RecursionThroughCurrentVersionRejected) {
  // selected reads marks (current), marks reads selected (current): cycle.
  ASSERT_TRUE(maintainer_
                  ->DefineView("marks", MakeProject(MakeScan("Sales"),
                                                    {MakeColumnRef("productId")},
                                                    {"productId"}))
                  .ok());
  ASSERT_TRUE(
      maintainer_
          ->DefineView("selected",
                       MakeProject(MakeScan("marks"),
                                   {MakeColumnRef("productId")}, {"productId"}))
          .ok());
  // Redefine marks to read selected at the current version: recursive.
  auto recursive = MakeProject(
      MakeFilter(MakeScan("Sales"),
                 MakeInRelation(MakeColumnRef("productId"), "selected", false)),
      {MakeColumnRef("productId")}, {"productId"});
  Status s = maintainer_->DefineView("marks", recursive);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("recursive"), std::string::npos);
}

TEST_F(ViewTest, RecursionBrokenByVersionedReference) {
  // The DeVIL 3 pattern: selected reads marks@vnow-1, marks reads selected.
  ASSERT_TRUE(maintainer_
                  ->DefineView("marks", MakeProject(MakeScan("Sales"),
                                                    {MakeColumnRef("productId")},
                                                    {"productId"}))
                  .ok());
  ASSERT_TRUE(maintainer_
                  ->DefineView("selected",
                               MakeProject(MakeScan("marks", VersionRef::Vnow(1)),
                                           {MakeColumnRef("productId")},
                                           {"productId"}))
                  .ok());
  auto redefined = MakeProject(
      MakeFilter(MakeScan("Sales"),
                 MakeInRelation(MakeColumnRef("productId"), "selected", false)),
      {MakeColumnRef("productId")}, {"productId"});
  EXPECT_TRUE(maintainer_->DefineView("marks", redefined).ok());
  EXPECT_TRUE(maintainer_->RecomputeAll().ok());
}

TEST_F(ViewTest, RedefinitionMustKeepCompatibleSchema) {
  ASSERT_TRUE(maintainer_
                  ->DefineView("v", MakeProject(MakeScan("Sales"),
                                                {MakeColumnRef("productId")},
                                                {"p"}))
                  .ok());
  // Redefining with a string column where an int was: incompatible.
  Status s = maintainer_->DefineView(
      "v", MakeProject(MakeScan("Sales"),
                       {MakeLiteral(Value::String("x"))}, {"p"}));
  EXPECT_FALSE(s.ok());
}

TEST_F(ViewTest, CannotRedefineBaseRelationAsView) {
  Status s = maintainer_->DefineView(
      "Sales",
      MakeProject(MakeScan("Sales"), {MakeColumnRef("productId")}, {"p"}));
  EXPECT_FALSE(s.ok());
}

TEST_F(ViewTest, TopoOrderPutsDependenciesFirst) {
  ASSERT_TRUE(maintainer_
                  ->DefineView("a", MakeProject(MakeScan("Sales"),
                                                {MakeColumnRef("productId")},
                                                {"p"}))
                  .ok());
  ASSERT_TRUE(maintainer_
                  ->DefineView("b", MakeProject(MakeScan("a"),
                                                {MakeColumnRef("p")}, {"p"}))
                  .ok());
  ASSERT_TRUE(maintainer_
                  ->DefineView("c", MakeProject(MakeScan("b"),
                                                {MakeColumnRef("p")}, {"p"}))
                  .ok());
  auto order = maintainer_->registry().TopoOrder().value();
  auto pos = [&order](const std::string& n) {
    for (size_t i = 0; i < order.size(); ++i) {
      if (IdentEquals(order[i], n)) return i;
    }
    return order.size();
  };
  EXPECT_LT(pos("a"), pos("b"));
  EXPECT_LT(pos("b"), pos("c"));
}

TEST_F(ViewTest, LineageCaptureAndCommittedSnapshot) {
  maintainer_->set_capture_lineage(true);
  ASSERT_TRUE(maintainer_
                  ->DefineView("big",
                               MakeFilter(MakeScan("Sales"),
                                          MakeBinary(BinaryOp::kGt,
                                                     MakeColumnRef("revenue"),
                                                     MakeLiteral(Value::Double(
                                                         250)))))
                  .ok());
  ASSERT_TRUE(maintainer_->RecomputeAll().ok());
  const NodeResult* r = maintainer_->LastResult("big").value();
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->has_lineage);
  EXPECT_EQ(r->table.num_rows(), 3u);
  // Filter lineage points at scan rows 2,3,4.
  EXPECT_EQ(r->lineage[0][0].row, 2u);

  maintainer_->SnapshotCommitted();
  EXPECT_TRUE(maintainer_->CommittedResult("big").ok());
  EXPECT_FALSE(maintainer_->CommittedResult("nope").ok());
}

TEST_F(ViewTest, ViewOnViewUsingInRelation) {
  ASSERT_TRUE(maintainer_
                  ->DefineView("selected",
                               MakeProject(
                                   MakeFilter(MakeScan("Sales"),
                                              MakeBinary(
                                                  BinaryOp::kGe,
                                                  MakeColumnRef("revenue"),
                                                  MakeLiteral(Value::Double(400)))),
                                   {MakeColumnRef("productId")}, {"productId"}))
                  .ok());
  auto plan = MakeFilter(
      MakeScan("Sales"),
      MakeInRelation(MakeColumnRef("productId"), "selected", true));
  ASSERT_TRUE(maintainer_->DefineView("unselected", plan).ok());
  ASSERT_TRUE(maintainer_->RecomputeAll().ok());
  EXPECT_EQ(catalog_.Get("selected").value()->current().num_rows(), 2u);
  EXPECT_EQ(catalog_.Get("unselected").value()->current().num_rows(), 3u);
}

}  // namespace
}  // namespace dvms
