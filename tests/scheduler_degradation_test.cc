// Deadline-degrading streaming: the per-tick watchdog, bounded retry with
// simulated backoff, and graceful degradation to the resident coarse
// wavelet prefix. All timing runs on an injected fake clock, so every
// assertion is deterministic.

#include <memory>

#include "common/fault.h"
#include "streaming/scheduler.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

StreamTile MakeTile(const std::string& id, size_t coeffs) {
  StreamTile tile;
  tile.id = id;
  tile.utility.push_back(0.0);
  for (size_t k = 1; k <= coeffs; ++k) {
    // Concave: diminishing returns per coefficient.
    tile.utility.push_back(tile.utility.back() + 1.0 / static_cast<double>(k));
  }
  return tile;
}

// A fake microsecond clock that advances a fixed step per reading.
struct FakeClock {
  int64_t now = 0;
  int64_t step = 0;
  std::function<int64_t()> fn() {
    return [this]() {
      int64_t t = now;
      now += step;
      return t;
    };
  }
};

TEST(SchedulerDeadlineTest, WatchdogNeverRunsPastBudget) {
  StreamScheduler sched(1000);  // bandwidth far above what the tick allows
  sched.AddTile(MakeTile("a", 500));
  sched.AddTile(MakeTile("b", 500));
  // Tile b is so unlikely that the greedy loop never reaches it before
  // the watchdog fires — it must be reported as degraded, not dropped.
  sched.SetProbabilities({{"a", 1.0}, {"b", 1e-6}});

  FakeClock clock;
  clock.step = 10;  // each watchdog reading costs 10 "us"
  sched.set_clock(clock.fn());
  TickPolicy policy;
  policy.budget_us = 200;  // ~20 loop iterations before the deadline
  sched.set_tick_policy(policy);

  TickReport report = sched.TickDetailed();
  EXPECT_TRUE(report.deadline_missed);
  // Some coefficients went out, but nowhere near the full budget.
  EXPECT_GT(sched.total_sent(), 0u);
  EXPECT_LT(sched.total_sent(), 1000u);
  // Starved tiles are reported as degraded (served from the coarse prefix).
  EXPECT_FALSE(report.degraded.empty());
  EXPECT_EQ(sched.stats().deadline_misses, 1u);
  EXPECT_GT(sched.stats().degraded_serves, 0u);
}

TEST(SchedulerDeadlineTest, NextTickMakesProgressAfterMiss) {
  StreamScheduler sched(8);
  sched.AddTile(MakeTile("a", 64));

  FakeClock clock;
  clock.step = 1000;
  sched.set_clock(clock.fn());
  TickPolicy policy;
  policy.budget_us = 1500;  // the first reading fits, little else
  sched.set_tick_policy(policy);

  (void)sched.TickDetailed();  // likely misses
  size_t after_first = sched.total_sent();

  // A relaxed clock on the next tick: delivery resumes where it left off.
  clock.step = 0;
  TickReport second = sched.TickDetailed();
  EXPECT_FALSE(second.deadline_missed);
  EXPECT_EQ(sched.total_sent(), after_first + 8);
}

TEST(SchedulerFaultTest, PersistentFaultsDegradeWithoutStalling) {
  StreamScheduler sched(4);
  sched.AddTile(MakeTile("a", 16));
  sched.AddTile(MakeTile("b", 16));

  FakeClock clock;
  clock.step = 1;
  sched.set_clock(clock.fn());

  {
    FaultConfig config = ParseFaultSpec("11:1.0:stream").value();
    ScopedFaultInjector scoped(config);
    TickReport report = sched.TickDetailed();

    // Every send attempt faults: nothing is delivered, retries stay
    // bounded, and both tiles degrade to their resident coarse prefix.
    EXPECT_TRUE(report.sent.empty());
    EXPECT_EQ(sched.total_sent(), 0u);
    EXPECT_GT(report.faults, 0u);
    EXPECT_LE(report.retries, report.faults);
    EXPECT_EQ(report.degraded.size(), 2u);
    EXPECT_EQ(sched.stats().degraded_serves, 2u);
  }

  // The moment faults clear, the same scheduler converges.
  TickReport clean = sched.TickDetailed();
  EXPECT_EQ(clean.faults, 0u);
  EXPECT_EQ(sched.total_sent(), 4u);
}

TEST(SchedulerFaultTest, RetryBackoffChargesTheTickBudget) {
  StreamScheduler sched(100);
  sched.AddTile(MakeTile("a", 200));

  FakeClock clock;
  clock.step = 0;  // real time frozen: only backoff penalties advance
  sched.set_clock(clock.fn());
  TickPolicy policy;
  policy.budget_us = 2000;
  policy.max_retries = 3;
  policy.retry_backoff_us = 500;  // 4 retries exhaust the whole budget
  sched.set_tick_policy(policy);

  FaultConfig config = ParseFaultSpec("11:1.0:stream").value();
  ScopedFaultInjector scoped(config);
  TickReport report = sched.TickDetailed();

  // Retry storms run the watchdog down instead of spinning: the simulated
  // backoff makes the deadline fire even though the fake clock is frozen.
  EXPECT_TRUE(report.deadline_missed || report.sent.empty());
  EXPECT_GT(report.retries, 0u);
  EXPECT_EQ(sched.total_sent(), 0u);
}

TEST(SchedulerFaultTest, TransientFaultsOnlyDelayDelivery) {
  StreamScheduler sched(6);
  sched.AddTile(MakeTile("a", 32));

  FakeClock clock;
  clock.step = 1;
  sched.set_clock(clock.fn());

  // ~30% of sends fault transiently; bounded retry absorbs them.
  FaultConfig config = ParseFaultSpec("42:0.3:stream").value();
  ScopedFaultInjector scoped(config);
  size_t delivered = 0;
  for (int tick = 0; tick < 12 && delivered < 32; ++tick) {
    (void)sched.TickDetailed();
    delivered = sched.total_sent();
  }
  EXPECT_EQ(delivered, 32u);
  EXPECT_GT(sched.stats().retries, 0u);
  EXPECT_GT(sched.stats().faults_injected, 0u);
}

}  // namespace
}  // namespace dvms
