#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/value.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseResult(int x, int* out) {
  DVMS_ASSIGN_OR_RETURN(*out, ParsePositive(x));
  return Status::OK();
}

TEST(ResultTest, ValueAndErrorPaths) {
  int out = 0;
  EXPECT_TRUE(UseResult(5, &out).ok());
  EXPECT_EQ(out, 5);
  Status s = UseResult(-1, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(42).int_value(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::String("hi").string_value(), "hi");
  EXPECT_TRUE(Value::Bool(true).bool_value());
}

TEST(ValueTest, NumericCoercion) {
  EXPECT_DOUBLE_EQ(Value::Int(3).AsDouble().value(), 3.0);
  EXPECT_EQ(Value::Double(3.9).AsInt().value(), 3);
  EXPECT_FALSE(Value::String("x").AsDouble().ok());
  EXPECT_FALSE(Value::Null().AsInt().ok());
}

TEST(ValueTest, CrossTypeNumericEquality) {
  EXPECT_TRUE(Value::Int(3).Equals(Value::Double(3.0)));
  EXPECT_FALSE(Value::Int(3).Equals(Value::Double(3.5)));
  EXPECT_FALSE(Value::Int(3).Equals(Value::String("3")));
  EXPECT_TRUE(Value::Null().Equals(Value::Null()));
  EXPECT_FALSE(Value::Null().Equals(Value::Int(0)));
}

TEST(ValueTest, EqualValuesHashEqual) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Double(7.0).Hash());
  EXPECT_EQ(Value::String("a").Hash(), Value::String("a").Hash());
}

TEST(ValueTest, CompareTotalOrder) {
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_GT(Value::Double(2.5).Compare(Value::Int(2)), 0);
  EXPECT_LT(Value::Int(999).Compare(Value::String("a")), 0);
  EXPECT_LT(Value::String("a").Compare(Value::String("b")), 0);
  EXPECT_EQ(Value::Int(5).Compare(Value::Double(5.0)), 0);
}

TEST(ValueTest, NaNSortsAfterEveryNumberAndEqualsItself) {
  // Regression: Compare used raw `<` on doubles, so NaN was incomparable
  // (neither side ever "less"), breaking strict weak ordering and letting
  // std::sort scramble or crash on NaN-bearing columns. NaN now sorts
  // after every finite number and compares equal to itself, consistent
  // with Equals and Hash.
  const Value nan = Value::Double(std::numeric_limits<double>::quiet_NaN());
  EXPECT_GT(nan.Compare(Value::Double(std::numeric_limits<double>::max())), 0);
  EXPECT_GT(nan.Compare(Value::Double(-1e308)), 0);
  EXPECT_GT(nan.Compare(Value::Int(std::numeric_limits<int64_t>::max())), 0);
  EXPECT_GT(nan.Compare(Value::Bool(true)), 0);
  EXPECT_LT(Value::Double(0.0).Compare(nan), 0);
  EXPECT_LT(Value::Int(0).Compare(nan), 0);
  EXPECT_EQ(nan.Compare(nan), 0);
  EXPECT_EQ(nan.Compare(Value::Double(std::nan("payload"))), 0);
  // Equals/Hash agree with Compare == 0.
  EXPECT_TRUE(nan.Equals(Value::Double(std::nan(""))));
  EXPECT_EQ(nan.Hash(), Value::Double(std::nan("")).Hash());
  // Type ranks unchanged: numbers (NaN included) below strings, above NULL.
  EXPECT_LT(nan.Compare(Value::String("")), 0);
  EXPECT_GT(nan.Compare(Value::Null()), 0);
}

TEST(ValueTest, SortingWithNaNsIsAStrictWeakOrder) {
  // A shuffled mix of NaNs and finite doubles must sort cleanly with all
  // NaNs at the end — this hangs or scrambles under the old comparator.
  Rng rng(11);
  std::vector<Value> vals;
  for (int i = 0; i < 400; ++i) {
    vals.push_back(rng.Bernoulli(0.3)
                       ? Value::Double(std::numeric_limits<double>::quiet_NaN())
                       : Value::Double(rng.Uniform(-10, 10)));
  }
  std::sort(vals.begin(), vals.end(),
            [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
  bool seen_nan = false;
  for (const Value& v : vals) {
    if (std::isnan(v.double_value())) {
      seen_nan = true;
    } else {
      EXPECT_FALSE(seen_nan) << "finite double sorted after a NaN";
    }
  }
}

TEST(ValueTest, LargeIntegerDoubleComparisonIsExact) {
  // Regression: mixed int64/double comparison coerced both sides to
  // double, collapsing integers that differ beyond 2^53 (the last integer
  // with unit double spacing) into spurious equality.
  constexpr int64_t k2p53 = int64_t{1} << 53;
  const double d2p53 = 9007199254740992.0;  // exactly 2^53
  EXPECT_EQ(Value::Int(k2p53).Compare(Value::Double(d2p53)), 0);
  EXPECT_TRUE(Value::Int(k2p53).Equals(Value::Double(d2p53)));
  EXPECT_GT(Value::Int(k2p53 + 1).Compare(Value::Double(d2p53)), 0);
  EXPECT_FALSE(Value::Int(k2p53 + 1).Equals(Value::Double(d2p53)));
  EXPECT_LT(Value::Double(d2p53).Compare(Value::Int(k2p53 + 1)), 0);
  EXPECT_LT(Value::Int(-(k2p53 + 1)).Compare(Value::Double(-d2p53)), 0);
  EXPECT_FALSE(Value::Int(-(k2p53 + 1)).Equals(Value::Double(-d2p53)));
}

TEST(ValueTest, Int64RangeBoundariesAgainstDoubles) {
  const int64_t imax = std::numeric_limits<int64_t>::max();
  const int64_t imin = std::numeric_limits<int64_t>::min();
  const double d2p63 = 9223372036854775808.0;  // exactly 2^63
  // 2^63 as a double exceeds every int64 (INT64_MAX is 2^63 - 1).
  EXPECT_LT(Value::Int(imax).Compare(Value::Double(d2p63)), 0);
  EXPECT_FALSE(Value::Int(imax).Equals(Value::Double(d2p63)));
  EXPECT_GT(Value::Double(d2p63).Compare(Value::Int(imax)), 0);
  // -2^63 as a double is exactly INT64_MIN.
  EXPECT_EQ(Value::Int(imin).Compare(Value::Double(-d2p63)), 0);
  EXPECT_TRUE(Value::Int(imin).Equals(Value::Double(-d2p63)));
  // Anything below the int64 range sorts under every integer.
  EXPECT_GT(Value::Int(imin).Compare(Value::Double(-1.0e19)), 0);
  EXPECT_GT(Value::Int(imin).Compare(
                Value::Double(-std::numeric_limits<double>::infinity())),
            0);
  EXPECT_LT(Value::Int(imax).Compare(
                Value::Double(std::numeric_limits<double>::infinity())),
            0);
  // Fractional doubles order strictly between neighbouring integers.
  EXPECT_LT(Value::Int(100).Compare(Value::Double(100.5)), 0);
  EXPECT_GT(Value::Int(101).Compare(Value::Double(100.5)), 0);
}

TEST(ValueTest, Truthiness) {
  EXPECT_FALSE(Value::Null().IsTruthy());
  EXPECT_FALSE(Value::Int(0).IsTruthy());
  EXPECT_TRUE(Value::Int(-1).IsTruthy());
  EXPECT_FALSE(Value::String("").IsTruthy());
  EXPECT_TRUE(Value::String("x").IsTruthy());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Int(12).ToString(), "12");
  EXPECT_EQ(Value::Double(2.0).ToString(), "2.0");
  EXPECT_EQ(Value::String("abc").ToString(), "abc");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
}

TEST(RowTest, HashAndEquality) {
  Row a = {Value::Int(1), Value::String("x")};
  Row b = {Value::Int(1), Value::String("x")};
  Row c = {Value::Int(2), Value::String("x")};
  EXPECT_TRUE(RowsEqual(a, b));
  EXPECT_FALSE(RowsEqual(a, c));
  EXPECT_EQ(HashRow(a), HashRow(b));
  EXPECT_EQ(CompareRows(a, c), -1);
}

TEST(SchemaTest, CaseInsensitiveLookup) {
  Schema s({{"ProductId", ValueType::kInt64}, {"price", ValueType::kDouble}});
  EXPECT_EQ(s.FindColumn("productid").value(), 0u);
  EXPECT_EQ(s.FindColumn("PRICE").value(), 1u);
  EXPECT_FALSE(s.FindColumn("nope").has_value());
  EXPECT_FALSE(s.IndexOf("nope").ok());
}

TEST(SchemaTest, UnionCompatibility) {
  Schema a({{"x", ValueType::kInt64}, {"y", ValueType::kString}});
  Schema b({{"u", ValueType::kDouble}, {"v", ValueType::kString}});
  Schema c({{"u", ValueType::kString}, {"v", ValueType::kString}});
  EXPECT_TRUE(a.UnionCompatible(b));  // numeric widening allowed
  EXPECT_FALSE(a.UnionCompatible(c));
}

TEST(SchemaTest, RowValidation) {
  Schema s({{"x", ValueType::kInt64}, {"name", ValueType::kString}});
  EXPECT_TRUE(s.RowMatches({Value::Int(1), Value::String("a")}));
  EXPECT_TRUE(s.RowMatches({Value::Null(), Value::String("a")}));
  EXPECT_TRUE(s.RowMatches({Value::Double(1.5), Value::String("a")}));
  EXPECT_FALSE(s.RowMatches({Value::String("bad"), Value::String("a")}));
  EXPECT_FALSE(s.RowMatches({Value::Int(1)}));
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, UniformIntWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Rng rng(99);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(RngTest, NormalMomentsRoughlyCorrect) {
  Rng rng(5);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, ForkDiverges) {
  Rng a(1);
  Rng b = a.Fork();
  // Forked stream should not track the parent.
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(StringUtilTest, Basics) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Split("a,b,,c", ',').size(), 4u);
  EXPECT_EQ(Trim("  hi \n"), "hi");
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_TRUE(StartsWith("SELECT *", "SELECT"));
  EXPECT_FALSE(StartsWith("SE", "SELECT"));
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
}

TEST(IdentTest, CaseInsensitive) {
  EXPECT_TRUE(IdentEquals("Sales", "SALES"));
  EXPECT_FALSE(IdentEquals("Sales", "Sale"));
  EXPECT_EQ(IdentKey("SPLOT_Points"), "splot_points");
}

}  // namespace
}  // namespace dvms
