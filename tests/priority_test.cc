#include "events/recognizer.h"
#include "parser/parser.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

EventStmt ParseEvent(const std::string& source) {
  return ParseProgram(source).value().statements[0].event;
}

class PriorityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    udfs_ = UdfRegistry::WithBuiltins();
    recognizer_ = std::make_unique<EventRecognizer>(&catalog_, &udfs_);
  }

  /// Two overlapping interactions: a full drag and a simple click, both
  /// beginning on MOUSE_DOWN — the ambiguity AnalyzeAmbiguity warns about.
  void DefineOverlapping(int drag_priority, int click_priority) {
    ASSERT_TRUE(recognizer_
                    ->DefinePattern(
                        "DRAG",
                        ParseEvent("D = EVENT MOUSE_DOWN AS A, MOUSE_MOVE* AS "
                                   "M, MOUSE_UP AS U RETURN (A.t, A.x, A.y);"),
                        drag_priority)
                    .ok());
    ASSERT_TRUE(recognizer_
                    ->DefinePattern(
                        "CLICK",
                        ParseEvent("K = EVENT MOUSE_DOWN AS A, MOUSE_UP AS U "
                                   "RETURN (A.t, A.x, A.y);"),
                        click_priority)
                    .ok());
  }

  Catalog catalog_;
  UdfRegistry udfs_;
  std::unique_ptr<EventRecognizer> recognizer_;
};

TEST_F(PriorityTest, NonExclusiveModeFeedsAllPatterns) {
  DefineOverlapping(1, 0);
  auto outcomes = recognizer_->Feed(InputEvent::MouseDown(0, 5, 5)).value();
  EXPECT_EQ(outcomes.size(), 2u);  // both patterns start
}

TEST_F(PriorityTest, ExclusiveModeSuppressesLowerPriority) {
  DefineOverlapping(1, 0);
  recognizer_->set_exclusive(true);
  auto outcomes = recognizer_->Feed(InputEvent::MouseDown(0, 5, 5)).value();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].table, "DRAG");
  // The click pattern never saw the DOWN, so the UP does not commit it —
  // it commits the drag instead.
  auto up = recognizer_->Feed(InputEvent::MouseUp(1, 5, 5)).value();
  ASSERT_EQ(up.size(), 1u);
  EXPECT_EQ(up[0].table, "DRAG");
  EXPECT_EQ(up[0].action, MatchAction::kCommitted);
  EXPECT_EQ(catalog_.Get("CLICK").value()->current().num_rows(), 0u);
}

TEST_F(PriorityTest, PriorityOrderBeatsDefinitionOrder) {
  // CLICK is defined second but carries the higher priority.
  DefineOverlapping(0, 5);
  recognizer_->set_exclusive(true);
  auto outcomes = recognizer_->Feed(InputEvent::MouseDown(0, 5, 5)).value();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].table, "CLICK");
}

TEST_F(PriorityTest, NonConsumedEventsFallThrough) {
  // A wheel-only pattern at high priority does not block mouse patterns.
  ASSERT_TRUE(recognizer_
                  ->DefinePattern(
                      "ZOOM",
                      ParseEvent("Z = EVENT WHEEL AS W, WHEEL AS W2 "
                                 "RETURN (W.delta);"),
                      10)
                  .ok());
  DefineOverlapping(1, 0);
  recognizer_->set_exclusive(true);
  auto outcomes = recognizer_->Feed(InputEvent::MouseDown(0, 5, 5)).value();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].table, "DRAG");
}

TEST_F(PriorityTest, PatternNamesReflectPriorityOrder) {
  DefineOverlapping(0, 5);
  auto names = recognizer_->PatternNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "CLICK");
  EXPECT_EQ(names[1], "DRAG");
}

}  // namespace
}  // namespace dvms
