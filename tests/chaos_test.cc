// Chaos differential harness: replays interaction traces under seeded,
// site-tagged fault injection and asserts the engine converges to the
// bit-identical fault-free final state — at 1 and at 4 threads. Every
// statement batch is all-or-nothing (transactional interaction rollback),
// so a faulted op leaves no trace and a bounded retry eventually lands it.

#include <atomic>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/thread_pool.h"
#include "core/dvms.h"
#include "parser/parser.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

// ---------------------------------------------------------------------------
// Fault framework unit coverage
// ---------------------------------------------------------------------------

TEST(FaultSpecTest, ParsesSeedRateAndSites) {
  FaultConfig c = ParseFaultSpec("42:0.25").value();
  EXPECT_EQ(c.seed, 42u);
  EXPECT_DOUBLE_EQ(c.rate, 0.25);
  for (size_t i = 0; i < kNumFaultSites; ++i) {
    EXPECT_TRUE(c.SiteEnabled(static_cast<FaultSite>(i)));
  }

  FaultConfig masked = ParseFaultSpec("7:1.0:storage,raster").value();
  EXPECT_TRUE(masked.SiteEnabled(FaultSite::kStorageAppend));
  EXPECT_TRUE(masked.SiteEnabled(FaultSite::kRasterBand));
  EXPECT_FALSE(masked.SiteEnabled(FaultSite::kIvmApply));
  EXPECT_FALSE(masked.SiteEnabled(FaultSite::kThreadPoolTask));
  EXPECT_FALSE(masked.SiteEnabled(FaultSite::kStreamTick));
}

TEST(FaultSpecTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseFaultSpec("").ok());
  EXPECT_FALSE(ParseFaultSpec("notanumber:0.5").ok());
  EXPECT_FALSE(ParseFaultSpec("1:2.0").ok());   // rate out of [0, 1]
  EXPECT_FALSE(ParseFaultSpec("1:-0.5").ok());
  EXPECT_FALSE(ParseFaultSpec("1:0.5:warp_core").ok());  // unknown site
  EXPECT_FALSE(ParseFaultSpec("1").ok());
}

TEST(FaultSpecTest, SiteNamesRoundTrip) {
  for (size_t i = 0; i < kNumFaultSites; ++i) {
    FaultSite site = static_cast<FaultSite>(i);
    EXPECT_EQ(FaultSiteFromName(FaultSiteToString(site)).value(), site);
  }
  EXPECT_FALSE(FaultSiteFromName("bogus").ok());
}

TEST(FaultInjectorTest, ScheduleIsDeterministicPerSeed) {
  FaultConfig config;
  config.seed = 1234;
  config.rate = 0.3;
  FaultInjector a(config), b(config);
  for (size_t i = 0; i < kNumFaultSites; ++i) {
    FaultSite site = static_cast<FaultSite>(i);
    for (int n = 0; n < 500; ++n) {
      EXPECT_EQ(a.ShouldInject(site), b.ShouldInject(site));
    }
  }
  // A different seed produces a different schedule (overwhelmingly likely
  // across 500 draws at rate 0.3).
  config.seed = 1235;
  FaultInjector c(config);
  a.Reset();
  int diffs = 0;
  for (int n = 0; n < 500; ++n) {
    diffs += a.ShouldInject(FaultSite::kStorageAppend) !=
             c.ShouldInject(FaultSite::kStorageAppend);
  }
  EXPECT_GT(diffs, 0);
}

TEST(FaultInjectorTest, RateBoundsAndBudgetHold) {
  FaultConfig config;
  config.seed = 9;
  config.rate = 0.2;
  FaultInjector inj(config);
  int fired = 0;
  for (int n = 0; n < 2000; ++n) {
    fired += inj.ShouldInject(FaultSite::kIvmApply);
  }
  EXPECT_GT(fired, 2000 * 0.1);
  EXPECT_LT(fired, 2000 * 0.3);

  config.rate = 1.0;
  config.max_injections = 3;
  FaultInjector budgeted(config);
  int total = 0;
  for (int n = 0; n < 100; ++n) {
    total += budgeted.ShouldInject(FaultSite::kStorageAppend);
  }
  EXPECT_EQ(total, 3);
  EXPECT_EQ(budgeted.total_injections(), 3u);
}

TEST(FaultInjectorTest, SuppressionScopeMasksInjection) {
  FaultConfig config;
  config.seed = 5;
  config.rate = 1.0;
  ScopedFaultInjector scoped(config);
  EXPECT_FALSE(fault::MaybeInject(FaultSite::kStorageAppend).ok());
  {
    FaultSuppressScope suppress;
    EXPECT_TRUE(fault::MaybeInject(FaultSite::kStorageAppend).ok());
    EXPECT_FALSE(fault::ShouldInject(FaultSite::kIvmApply));
  }
  EXPECT_FALSE(fault::MaybeInject(FaultSite::kStorageAppend).ok());
}

TEST(FaultInjectorTest, SuppressionIsThreadLocal) {
  // A writer's rollback suppressing faults must not silence checks on
  // concurrent threads (e.g. a replica's tailer or a session read).
  FaultConfig config;
  config.seed = 5;
  config.rate = 1.0;
  ScopedFaultInjector scoped(config);
  FaultSuppressScope suppress;
  EXPECT_TRUE(fault::Suppressed());
  EXPECT_TRUE(fault::MaybeInject(FaultSite::kStorageAppend).ok());
  bool other_suppressed = true;
  bool other_injected = false;
  std::thread peer([&] {
    other_suppressed = fault::Suppressed();
    other_injected = fault::ShouldInject(FaultSite::kStorageAppend);
  });
  peer.join();
  EXPECT_FALSE(other_suppressed) << "suppression leaked across threads";
  EXPECT_TRUE(other_injected);
}

TEST(FaultInjectorTest, ParallelForInheritsSubmitterSuppression) {
  // Work fanned onto pool threads runs on behalf of the submitter: if the
  // submitter is suppressed (recovery, rollback, replica apply), its
  // morsels must be too — and only for that ParallelFor, not permanently.
  FaultConfig config;
  config.seed = 5;
  config.rate = 1.0;
  ScopedFaultInjector scoped(config);
  ThreadPool pool(4);
  std::atomic<int> injected{0};
  {
    FaultSuppressScope suppress;
    pool.ParallelFor(64, 1, 0, [&](const MorselRange&) {
      injected += fault::ShouldInject(FaultSite::kThreadPoolTask) ? 1 : 0;
    });
  }
  EXPECT_EQ(injected.load(), 0) << "pool threads ignored the submitter";
  pool.ParallelFor(64, 1, 0, [&](const MorselRange&) {
    injected += fault::ShouldInject(FaultSite::kThreadPoolTask) ? 1 : 0;
  });
  EXPECT_GT(injected.load(), 0) << "suppression stuck to the pool threads";
}

TEST(FaultInjectorTest, MaybeInjectTagsSiteInMessage) {
  FaultConfig config;
  config.seed = 5;
  config.rate = 1.0;
  ScopedFaultInjector scoped(config);
  Status st = fault::MaybeInject(FaultSite::kRasterBand);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("raster"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Chaos differential replay
// ---------------------------------------------------------------------------

// One scripted mutation against the engine; retried verbatim after a fault.
struct TraceOp {
  std::string label;
  std::function<Status(Dvms&)> run;
};

const char* kChaosProgram = R"(
  C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U
      RETURN (D.t, D.x AS x, D.x AS x2),
             (M.t, D.x AS x, M.x AS x2);
  C_RANGE = SELECT min2(x, x2) AS lo, max2(x, x2) AS hi
    FROM C ORDER BY t DESC LIMIT 1;
  picked = SELECT p.id AS id, p.v AS v
    FROM C_RANGE, Pts AS p
    WHERE p.px >= C_RANGE.lo AND p.px <= C_RANGE.hi;
  MARKS = SELECT 4 AS radius, 'red' AS fill,
      linear_scale(k.v, 0, 100, 0, 180) AS center_x,
      linear_scale(k.id, 0, 24, 0, 120) AS center_y
    FROM picked AS k;
  P = render(SELECT * FROM MARKS);
)";

std::unique_ptr<Dvms> MakeChaosEngine(size_t num_threads) {
  Dvms::Options options;
  options.canvas_width = 200;
  options.canvas_height = 150;
  options.num_threads = num_threads;
  auto engine = std::make_unique<Dvms>(options);
  Schema schema({{"id", ValueType::kInt64},
                 {"v", ValueType::kDouble},
                 {"px", ValueType::kDouble}});
  EXPECT_TRUE(engine->CreateBaseTable("Pts", schema).ok());
  std::vector<Row> rows;
  for (int i = 0; i < 24; ++i) {
    rows.push_back({Value::Int(i), Value::Double((i * 37) % 100),
                    Value::Double(5.0 + i * 8.0)});
  }
  EXPECT_TRUE(engine->Insert("Pts", rows).ok());
  EXPECT_TRUE(engine->LoadProgram(kChaosProgram).ok());
  return engine;
}

// Serializes every relation (schema + rows, creation order) — the textual
// half of the bit-identical check; pixels are compared separately.
std::string Fingerprint(const Dvms& engine) {
  std::ostringstream out;
  for (const std::string& name : engine.catalog().Names()) {
    auto table = engine.GetTable(name);
    if (!table.ok()) continue;
    out << "== " << name << " ==\n";
    const Table* t = table.value();
    for (size_t c = 0; c < t->schema().num_columns(); ++c) {
      out << t->schema().column(c).name << "|";
    }
    out << "\n";
    for (size_t r = 0; r < t->num_rows(); ++r) {
      for (const Value& v : t->row(r)) out << v.ToString() << "|";
      out << "\n";
    }
  }
  return out.str();
}

// A deterministic interaction trace: two brushes with inserts and a delete
// interleaved, exercising storage appends, IVM recomputes, and rendering.
std::vector<TraceOp> ChaosTrace() {
  std::vector<TraceOp> ops;
  auto push = [](InputEvent e) {
    return [e](Dvms& d) { return d.PushEvent(e); };
  };
  ops.push_back({"down@40", push(InputEvent::MouseDown(0, 40, 50))});
  ops.push_back({"move@90", push(InputEvent::MouseMove(1, 90, 50))});
  ops.push_back({"up@90", push(InputEvent::MouseUp(2, 90, 50))});
  ops.push_back({"insert", [](Dvms& d) {
                   return d.Insert("Pts", {{Value::Int(100), Value::Double(55),
                                            Value::Double(60.0)}});
                 }});
  ops.push_back({"down@20", push(InputEvent::MouseDown(3, 20, 40))});
  ops.push_back({"move@160", push(InputEvent::MouseMove(4, 160, 40))});
  ops.push_back({"up@160", push(InputEvent::MouseUp(5, 160, 40))});
  ops.push_back({"delete", [](Dvms& d) {
                   auto removed = d.Delete(
                       "Pts", ParseExpression("id % 2 = 1").value());
                   return removed.ok() ? Status::OK() : removed.status();
                 }});
  ops.push_back({"down@10", push(InputEvent::MouseDown(6, 10, 30))});
  ops.push_back({"up@10", push(InputEvent::MouseUp(7, 10, 30))});
  return ops;
}

// Replays the trace fault-free and returns the final state.
void RunCleanTrace(Dvms& engine) {
  for (const TraceOp& op : ChaosTrace()) {
    ASSERT_TRUE(op.run(engine).ok()) << op.label;
  }
}

class ChaosDifferentialTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ChaosDifferentialTest, FaultedReplayConvergesToCleanState) {
  const size_t threads = GetParam();
  auto clean = MakeChaosEngine(threads);
  RunCleanTrace(*clean);
  const std::string want = Fingerprint(*clean);
  const PixelBuffer want_pixels = clean->pixels();

  for (uint64_t seed : {11u, 23u, 47u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    auto engine = MakeChaosEngine(threads);
    FaultConfig config;
    config.seed = seed;
    config.rate = 0.02;
    ScopedFaultInjector scoped(config);

    size_t failures = 0;
    for (const TraceOp& op : ChaosTrace()) {
      SCOPED_TRACE(op.label);
      bool done = false;
      // Per-op bounded retry: the site schedules advance on every draw, so
      // at rate 0.02 a clean pass lands with overwhelming probability well
      // inside the bound.
      for (int attempt = 0; attempt < 50 && !done; ++attempt) {
        Status st = op.run(*engine);
        if (st.ok()) {
          done = true;
        } else {
          ++failures;
          EXPECT_NE(st.message().find("injected fault"), std::string::npos)
              << st.message();
        }
      }
      ASSERT_TRUE(done) << "op never landed within the retry bound";
    }
    EXPECT_EQ(engine->stats().interactions_rolled_back, failures);
    EXPECT_EQ(Fingerprint(*engine), want);
    EXPECT_TRUE(engine->pixels().Equals(want_pixels));
    // The injector saw real traffic (checks at the wired sites).
    EXPECT_GT(scoped.injector()->checks(FaultSite::kStorageAppend), 0u);
    EXPECT_GT(scoped.injector()->checks(FaultSite::kIvmApply), 0u);
  }
}

TEST_P(ChaosDifferentialTest, SingleFaultRollsBackBitIdentically) {
  const size_t threads = GetParam();
  for (const char* site : {"storage", "ivm", "raster"}) {
    SCOPED_TRACE(site);
    auto engine = MakeChaosEngine(threads);
    // A committed brush first, so rollback must preserve real history.
    ASSERT_TRUE(engine->PushEvent(InputEvent::MouseDown(0, 40, 50)).ok());
    ASSERT_TRUE(engine->PushEvent(InputEvent::MouseUp(1, 40, 50)).ok());
    const std::string before = Fingerprint(*engine);
    const PixelBuffer before_pixels = engine->pixels();
    const size_t before_events = engine->stats().events_processed;

    FaultConfig config = ParseFaultSpec(std::string("1:1.0:") + site).value();
    config.max_injections = 1;  // exactly one fault, then clean
    Status st;
    {
      ScopedFaultInjector scoped(config);
      st = engine->PushEvent(InputEvent::MouseDown(2, 20, 40));
    }
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("injected fault"), std::string::npos);

    // Bit-identical pre-op state: tables, pixels, and stats.
    EXPECT_EQ(Fingerprint(*engine), before);
    EXPECT_TRUE(engine->pixels().Equals(before_pixels));
    EXPECT_EQ(engine->stats().events_processed, before_events);
    EXPECT_EQ(engine->stats().interactions_rolled_back, 1u);

    // The replayed op (injection budget spent) matches a never-faulted run.
    ASSERT_TRUE(engine->PushEvent(InputEvent::MouseDown(2, 20, 40)).ok());
    ASSERT_TRUE(engine->PushEvent(InputEvent::MouseUp(3, 160, 40)).ok());

    auto control = MakeChaosEngine(threads);
    ASSERT_TRUE(control->PushEvent(InputEvent::MouseDown(0, 40, 50)).ok());
    ASSERT_TRUE(control->PushEvent(InputEvent::MouseUp(1, 40, 50)).ok());
    ASSERT_TRUE(control->PushEvent(InputEvent::MouseDown(2, 20, 40)).ok());
    ASSERT_TRUE(control->PushEvent(InputEvent::MouseUp(3, 160, 40)).ok());
    EXPECT_EQ(Fingerprint(*engine), Fingerprint(*control));
    EXPECT_TRUE(engine->pixels().Equals(control->pixels()));
  }
}

TEST_P(ChaosDifferentialTest, PoolFaultsAreTransparentlyRetried) {
  // Thread-pool faults are transient: the morsel is rescheduled (bounded),
  // then runs exactly once — results stay bit-identical and no op fails.
  const size_t threads = GetParam();
  auto clean = MakeChaosEngine(threads);
  RunCleanTrace(*clean);

  auto engine = MakeChaosEngine(threads);
  FaultConfig config = ParseFaultSpec("3:0.5:pool").value();
  ScopedFaultInjector scoped(config);
  for (const TraceOp& op : ChaosTrace()) {
    EXPECT_TRUE(op.run(*engine).ok()) << op.label;
  }
  EXPECT_EQ(Fingerprint(*engine), Fingerprint(*clean));
  EXPECT_TRUE(engine->pixels().Equals(clean->pixels()));
  EXPECT_GT(scoped.injector()->retries(), 0u);
  EXPECT_EQ(engine->stats().interactions_rolled_back, 0u);
}

TEST_P(ChaosDifferentialTest, RollbackDisabledReproducesLegacyEngine) {
  // transactional_rollback = false must not change fault-free behavior.
  const size_t threads = GetParam();
  Dvms::Options options;
  options.canvas_width = 200;
  options.canvas_height = 150;
  options.num_threads = threads;
  options.transactional_rollback = false;
  Dvms legacy(options);
  Schema schema({{"id", ValueType::kInt64},
                 {"v", ValueType::kDouble},
                 {"px", ValueType::kDouble}});
  ASSERT_TRUE(legacy.CreateBaseTable("Pts", schema).ok());
  std::vector<Row> rows;
  for (int i = 0; i < 24; ++i) {
    rows.push_back({Value::Int(i), Value::Double((i * 37) % 100),
                    Value::Double(5.0 + i * 8.0)});
  }
  ASSERT_TRUE(legacy.Insert("Pts", rows).ok());
  ASSERT_TRUE(legacy.LoadProgram(kChaosProgram).ok());
  for (const TraceOp& op : ChaosTrace()) {
    ASSERT_TRUE(op.run(legacy).ok()) << op.label;
  }

  auto transactional = MakeChaosEngine(threads);
  RunCleanTrace(*transactional);
  EXPECT_EQ(Fingerprint(legacy), Fingerprint(*transactional));
  EXPECT_TRUE(legacy.pixels().Equals(transactional->pixels()));
}

TEST_P(ChaosDifferentialTest, GovernorArmedFaultedReplayConverges) {
  // The resource governor armed (roomy limits, real clock) on top of fault
  // injection must change nothing: checkpoints fire on every morsel, yet
  // the faulted replay still converges to the bit-identical clean state.
  const size_t threads = GetParam();
  auto clean = MakeChaosEngine(threads);
  RunCleanTrace(*clean);
  const std::string want = Fingerprint(*clean);

  Dvms::Options options;
  options.canvas_width = 200;
  options.canvas_height = 150;
  options.num_threads = threads;
  options.deadline_ms = 1'000'000'000;  // armed, never expires
  options.mem_budget = INT64_MAX / 2;
  Dvms engine(options);
  Schema schema({{"id", ValueType::kInt64},
                 {"v", ValueType::kDouble},
                 {"px", ValueType::kDouble}});
  ASSERT_TRUE(engine.CreateBaseTable("Pts", schema).ok());
  std::vector<Row> rows;
  for (int i = 0; i < 24; ++i) {
    rows.push_back({Value::Int(i), Value::Double((i * 37) % 100),
                    Value::Double(5.0 + i * 8.0)});
  }
  ASSERT_TRUE(engine.Insert("Pts", rows).ok());
  ASSERT_TRUE(engine.LoadProgram(kChaosProgram).ok());

  FaultConfig config;
  config.seed = 23;
  config.rate = 0.02;
  ScopedFaultInjector scoped(config);
  size_t op_index = 0;
  size_t cancels = 0;
  for (const TraceOp& op : ChaosTrace()) {
    SCOPED_TRACE(op.label);
    // Every third op first arrives pre-cancelled: the governed abort must
    // roll back exactly like an injected fault, then the retry lands.
    if (op_index++ % 3 == 2) {
      engine.RequestCancel();
      // The attempt fails — with kCancelled at its first checkpoint, or
      // with an injected fault that happened to fire even earlier (the
      // still-raised flag then cancels the next attempt instead). Either
      // way exactly one later abort consumes the flag.
      Status st = op.run(engine);
      EXPECT_FALSE(st.ok());
      ++cancels;
    }
    bool done = false;
    for (int attempt = 0; attempt < 50 && !done; ++attempt) {
      done = op.run(engine).ok();
    }
    ASSERT_TRUE(done) << "op never landed within the retry bound";
  }
  EXPECT_EQ(Fingerprint(engine), want);
  EXPECT_TRUE(engine.pixels().Equals(clean->pixels()));
  EXPECT_EQ(engine.governor_stats().cancel_aborts, cancels);
  EXPECT_GT(engine.governor_stats().checkpoints, 0u);
  EXPECT_EQ(engine.governor_stats().deadline_aborts, 0u);
  EXPECT_EQ(engine.governor_stats().mem_aborts, 0u);
}

INSTANTIATE_TEST_SUITE_P(Threads, ChaosDifferentialTest,
                         ::testing::Values(1, 4));

// ---------------------------------------------------------------------------
// Undo/redo boundaries, including during faulted rollback
// ---------------------------------------------------------------------------

TEST(UndoRedoBoundaryTest, ExhaustedHistoryFailsCleanly) {
  auto engine = MakeChaosEngine(1);
  ASSERT_TRUE(engine->PushEvent(InputEvent::MouseDown(0, 40, 50)).ok());
  ASSERT_TRUE(engine->PushEvent(InputEvent::MouseUp(1, 40, 50)).ok());

  // Redo at the newest state fails and changes nothing.
  const std::string newest = Fingerprint(*engine);
  EXPECT_FALSE(engine->CanRedo());
  EXPECT_FALSE(engine->Redo().ok());
  EXPECT_EQ(Fingerprint(*engine), newest);

  // Undo to exhaustion, then one more: clean failure, state intact.
  int undone = 0;
  while (engine->CanUndo() && undone < 32) {
    ASSERT_TRUE(engine->Undo().ok());
    ++undone;
  }
  ASSERT_GT(undone, 0);
  const std::string oldest = Fingerprint(*engine);
  EXPECT_FALSE(engine->Undo().ok());
  EXPECT_EQ(Fingerprint(*engine), oldest);

  // Walk forward again to the newest state.
  while (engine->CanRedo()) ASSERT_TRUE(engine->Redo().ok());
  EXPECT_EQ(Fingerprint(*engine), newest);
}

TEST(UndoRedoBoundaryTest, FaultedUndoRollsBackAndHistorySurvives) {
  auto engine = MakeChaosEngine(1);
  ASSERT_TRUE(engine->PushEvent(InputEvent::MouseDown(0, 40, 50)).ok());
  ASSERT_TRUE(engine->PushEvent(InputEvent::MouseUp(1, 40, 50)).ok());
  ASSERT_TRUE(engine->CanUndo());
  const std::string before = Fingerprint(*engine);
  const PixelBuffer before_pixels = engine->pixels();

  // Undo itself faults mid-recompute: it must roll back to the pre-undo
  // state (cursor included), not leave a half-restored engine.
  FaultConfig config = ParseFaultSpec("1:1.0:ivm").value();
  config.max_injections = 1;
  Status st;
  {
    ScopedFaultInjector scoped(config);
    st = engine->Undo();
  }
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(Fingerprint(*engine), before);
  EXPECT_TRUE(engine->pixels().Equals(before_pixels));
  EXPECT_EQ(engine->stats().interactions_rolled_back, 1u);

  // History is uncorrupted: undo/redo still round-trip.
  ASSERT_TRUE(engine->CanUndo());
  ASSERT_TRUE(engine->Undo().ok());
  ASSERT_TRUE(engine->CanRedo());
  ASSERT_TRUE(engine->Redo().ok());
  EXPECT_EQ(Fingerprint(*engine), before);
  EXPECT_TRUE(engine->pixels().Equals(before_pixels));
}

}  // namespace
}  // namespace dvms
