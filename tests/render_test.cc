#include "render/pixels.h"
#include "render/rasterizer.h"
#include "render/scale.h"
#include "storage/catalog.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

constexpr RGBA kRed = {214, 39, 40, 255};
constexpr RGBA kWhite = {255, 255, 255, 255};

TEST(ColorTest, NamedAndHexColors) {
  EXPECT_EQ(ParseColor("red").value(), kRed);
  EXPECT_EQ(ParseColor("RED").value(), kRed);
  RGBA hex = ParseColor("#102030").value();
  EXPECT_EQ(hex.r, 0x10);
  EXPECT_EQ(hex.g, 0x20);
  EXPECT_EQ(hex.b, 0x30);
  EXPECT_EQ(hex.a, 255);
  RGBA hexa = ParseColor("#10203040").value();
  EXPECT_EQ(hexa.a, 0x40);
  EXPECT_FALSE(ParseColor("notacolor").ok());
  EXPECT_FALSE(ParseColor("#12").ok());
  EXPECT_EQ(ParseColor("none").value().a, 0);
}

TEST(PixelBufferTest, SetAtAndClipping) {
  PixelBuffer buf(10, 5);
  buf.Set(3, 2, kRed);
  EXPECT_EQ(buf.At(3, 2), kRed);
  EXPECT_EQ(buf.At(-1, 0).a, 0);
  EXPECT_EQ(buf.At(100, 100).a, 0);
  buf.Set(-5, -5, kRed);  // no crash
  buf.Set(100, 100, kRed);
  EXPECT_EQ(buf.CountColor(kRed), 1u);
}

TEST(PixelBufferTest, BlendSrcOver) {
  PixelBuffer buf(4, 4);
  buf.Clear(kWhite);
  RGBA half_red = {255, 0, 0, 128};
  buf.Blend(1, 1, half_red);
  RGBA out = buf.At(1, 1);
  EXPECT_GT(out.r, 200);       // red stays strong
  EXPECT_GT(out.g, 100);       // white shows through
  EXPECT_LT(out.g, 140);
  EXPECT_EQ(out.a, 255);
  // Fully transparent blend is a no-op.
  buf.Blend(2, 2, RGBA{0, 255, 0, 0});
  EXPECT_EQ(buf.At(2, 2), kWhite);
}

TEST(PixelBufferTest, ToRelationSkipsTransparent) {
  PixelBuffer buf(4, 4);
  buf.Set(0, 0, kRed);
  buf.Set(3, 3, kRed);
  Table p = buf.ToRelation();
  EXPECT_EQ(p.num_rows(), 2u);
  EXPECT_EQ(p.schema().num_columns(), 6u);
  Table all = buf.ToRelation(/*skip_transparent=*/false);
  EXPECT_EQ(all.num_rows(), 16u);
}

TEST(PixelBufferTest, WritePpm) {
  PixelBuffer buf(8, 8);
  buf.Clear(kRed);
  std::string path = ::testing::TempDir() + "/dvms_test.ppm";
  ASSERT_TRUE(buf.WritePpm(path).ok());
  FILE* f = fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char magic[3] = {0};
  ASSERT_EQ(fread(magic, 1, 2, f), 2u);
  EXPECT_EQ(std::string(magic), "P6");
  fclose(f);
}

TEST(RasterizerTest, FilledCircleCoversCenterNotCorners) {
  PixelBuffer buf(40, 40);
  DrawFilledCircle(&buf, 20, 20, 8, kRed);
  EXPECT_EQ(buf.At(20, 20), kRed);
  EXPECT_EQ(buf.At(20, 13), kRed);   // inside top
  EXPECT_EQ(buf.At(20, 5).a, 0);     // above the circle
  EXPECT_EQ(buf.At(5, 5).a, 0);      // far corner
  // Rough area check: |painted - pi*r^2| small.
  double area = static_cast<double>(buf.CountPainted());
  EXPECT_NEAR(area, 3.14159 * 64, 20);
}

TEST(RasterizerTest, RectFillAndOutline) {
  PixelBuffer buf(30, 30);
  DrawFilledRect(&buf, 5, 5, 10, 8, kRed);
  EXPECT_EQ(buf.CountPainted(), 80u);
  EXPECT_EQ(buf.At(5, 5), kRed);
  EXPECT_EQ(buf.At(14, 12), kRed);
  EXPECT_EQ(buf.At(15, 5).a, 0);

  PixelBuffer buf2(30, 30);
  DrawRectOutline(&buf2, 5, 5, 10, 8, kRed);
  EXPECT_EQ(buf2.At(5, 5), kRed);
  EXPECT_EQ(buf2.At(14, 12), kRed);
  EXPECT_EQ(buf2.At(10, 9).a, 0);  // interior unpainted
}

TEST(RasterizerTest, LineIsConnected) {
  PixelBuffer buf(30, 30);
  DrawLine(&buf, 2, 2, 27, 15, kRed);
  EXPECT_EQ(buf.At(2, 2), kRed);
  EXPECT_EQ(buf.At(27, 15), kRed);
  // At least as many pixels as the max dimension span.
  EXPECT_GE(buf.CountPainted(), 26u);
}

TEST(RasterizerTest, InferMarkTypeFromSchema) {
  Schema circle({{"center_x", ValueType::kDouble},
                 {"center_y", ValueType::kDouble},
                 {"radius", ValueType::kDouble},
                 {"fill", ValueType::kString}});
  EXPECT_EQ(InferMarkType(circle).value(), MarkType::kCircle);
  Schema rect({{"x", ValueType::kDouble},
               {"y", ValueType::kDouble},
               {"width", ValueType::kDouble},
               {"height", ValueType::kDouble}});
  EXPECT_EQ(InferMarkType(rect).value(), MarkType::kRect);
  Schema line({{"x1", ValueType::kDouble},
               {"y1", ValueType::kDouble},
               {"x2", ValueType::kDouble},
               {"y2", ValueType::kDouble}});
  EXPECT_EQ(InferMarkType(line).value(), MarkType::kLine);
  Schema nope({{"foo", ValueType::kDouble}});
  EXPECT_FALSE(InferMarkType(nope).ok());
}

TEST(RasterizerTest, RenderMarksRelationWithFillColors) {
  Table marks(Schema({{"center_x", ValueType::kDouble},
                      {"center_y", ValueType::kDouble},
                      {"radius", ValueType::kDouble},
                      {"fill", ValueType::kString}}));
  ASSERT_TRUE(marks
                  .Append({Value::Double(10), Value::Double(10),
                           Value::Double(3), Value::String("red")})
                  .ok());
  ASSERT_TRUE(marks
                  .Append({Value::Double(30), Value::Double(10),
                           Value::Double(3), Value::String("blue")})
                  .ok());
  PixelBuffer buf(40, 20);
  ASSERT_TRUE(RenderMarks(marks, &buf).ok());
  EXPECT_EQ(buf.At(10, 10), ParseColor("red").value());
  EXPECT_EQ(buf.At(30, 10), ParseColor("blue").value());
}

TEST(RasterizerTest, NullGeometryRowsSkipped) {
  Table marks(Schema({{"center_x", ValueType::kDouble},
                      {"center_y", ValueType::kDouble},
                      {"radius", ValueType::kDouble}}));
  ASSERT_TRUE(
      marks.Append({Value::Null(), Value::Double(10), Value::Double(3)}).ok());
  PixelBuffer buf(20, 20);
  ASSERT_TRUE(RenderMarks(marks, &buf).ok());
  EXPECT_EQ(buf.CountPainted(), 0u);
}

TEST(RasterizerTest, BadColorReportsError) {
  Table marks(Schema({{"center_x", ValueType::kDouble},
                      {"center_y", ValueType::kDouble},
                      {"radius", ValueType::kDouble},
                      {"fill", ValueType::kString}}));
  ASSERT_TRUE(marks
                  .Append({Value::Double(5), Value::Double(5), Value::Double(2),
                           Value::String("chartreuse-ish")})
                  .ok());
  PixelBuffer buf(10, 10);
  EXPECT_FALSE(RenderMarks(marks, &buf).ok());
}

TEST(ScaleTest, CreateScaleRelationShape) {
  Catalog catalog;
  ASSERT_TRUE(CreateScaleRelation(&catalog, "scale_x", 0, 100, 0, 400).ok());
  const Table& t = catalog.Get("scale_x").value()->current();
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(t.At(0, "domain_max").value().double_value(), 100);
  EXPECT_DOUBLE_EQ(t.At(0, "range_max").value().double_value(), 400);
  // Replacing updates in place.
  ASSERT_TRUE(CreateScaleRelation(&catalog, "scale_x", 0, 50, 0, 400).ok());
  EXPECT_EQ(catalog.Get("scale_x").value()->current().num_rows(), 1u);
}

TEST(ScaleTest, ComputeDomainIgnoresNulls) {
  Table t(Schema({{"v", ValueType::kDouble}}));
  ASSERT_TRUE(t.Append({Value::Double(5)}).ok());
  ASSERT_TRUE(t.Append({Value::Null()}).ok());
  ASSERT_TRUE(t.Append({Value::Double(-2)}).ok());
  auto domain = ComputeDomain(t, "v").value();
  EXPECT_DOUBLE_EQ(domain.first, -2);
  EXPECT_DOUBLE_EQ(domain.second, 5);
  Table empty(Schema({{"v", ValueType::kDouble}}));
  EXPECT_FALSE(ComputeDomain(empty, "v").ok());
}

TEST(ScaleTest, CreateScaleFromColumnWithPadding) {
  Catalog catalog;
  Table t(Schema({{"v", ValueType::kDouble}}));
  ASSERT_TRUE(t.Append({Value::Double(0)}).ok());
  ASSERT_TRUE(t.Append({Value::Double(10)}).ok());
  ASSERT_TRUE(
      CreateScaleFromColumn(&catalog, "s", t, "v", 0, 100, 0.1).ok());
  const Table& s = catalog.Get("s").value()->current();
  EXPECT_DOUBLE_EQ(s.At(0, "domain_min").value().double_value(), -1);
  EXPECT_DOUBLE_EQ(s.At(0, "domain_max").value().double_value(), 11);
}

}  // namespace
}  // namespace dvms
