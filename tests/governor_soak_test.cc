// Governor soak: four client threads hammer one armed engine (memory
// budget + admission gate + cross-thread cancels) for thousands of
// requests. The invariant is the mutation-unit contract under governed
// aborts: every Insert either commits wholly (acknowledged) or leaves
// nothing, so the final row count must equal the initial rows plus exactly
// the acknowledged inserted rows — no torn batches, no double-applies,
// regardless of which thread's request was shed, cancelled, or
// budget-aborted. Labeled `slow` in ctest.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/dvms.h"
#include "governor/governor.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

const char* kSoakProgram = R"(
  totals = SELECT bucket, SUM(v) AS total, COUNT(*) AS n
    FROM Pts GROUP BY bucket;
  MARKS = SELECT 3 AS radius, 'green' AS fill,
      linear_scale(t.total, 0, 100000, 0, 180) AS center_x,
      linear_scale(t.bucket, 0, 16, 0, 120) AS center_y
    FROM totals AS t;
  P = render(SELECT * FROM MARKS);
)";

constexpr int64_t kInitialRows = 128;

std::unique_ptr<Dvms> MakeSoakEngine() {
  Dvms::Options options;
  options.canvas_width = 200;
  options.canvas_height = 150;
  options.deadline_ms = 60'000;  // armed; the soak must never hit it
  options.mem_budget = 512 * 1024;
  options.max_inflight = 2;
  options.queue_ms = 5;
  auto engine = std::make_unique<Dvms>(options);
  Schema schema({{"bucket", ValueType::kInt64}, {"v", ValueType::kDouble}});
  EXPECT_TRUE(engine->CreateBaseTable("Pts", schema).ok());
  std::vector<Row> rows;
  for (int64_t i = 0; i < kInitialRows; ++i) {
    rows.push_back({Value::Int(i % 16), Value::Double(double(i))});
  }
  EXPECT_TRUE(engine->Insert("Pts", rows).ok());
  EXPECT_TRUE(engine->LoadProgram(kSoakProgram).ok());
  return engine;
}

TEST(GovernorSoakTest, ConcurrentGovernedLoadKeepsStateConsistent) {
  auto engine = MakeSoakEngine();
  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 400;

  std::atomic<int64_t> acked_rows{0};  // rows the engine acknowledged
  std::atomic<long> governed_aborts{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const int op = (t * 7919 + i) % 8;
        Status st;
        if (op == 7) {
          // Cross-thread cancel: whichever request (possibly this
          // thread's own insert below) reaches the next checkpoint
          // aborts. Integrity is what matters, not who got hit.
          engine->RequestCancel();
        }
        if (op < 4 || op == 7) {
          // In-budget insert — the bread-and-butter mutation.
          const size_t n = 1 + static_cast<size_t>(i % 4);
          std::vector<Row> rows;
          for (size_t r = 0; r < n; ++r) {
            rows.push_back({Value::Int(int64_t(t + i + r) % 16),
                            Value::Double(t * 1000.0 + i)});
          }
          st = engine->Insert("Pts", std::move(rows));
          if (st.ok()) acked_rows.fetch_add(static_cast<int64_t>(n));
        } else if (op < 6) {
          // In-budget aggregate read.
          st = engine->Query("SELECT COUNT(*) AS n FROM Pts").status();
        } else {
          // Over-budget cross join: must abort kResourceExhausted, never
          // OOM and never corrupt state. (Pts only grows, so the pair
          // count only gets further past the budget.)
          st = engine->Query(
                        "SELECT a.v AS x, b.v AS y FROM Pts AS a, Pts AS b")
                   .status();
          EXPECT_FALSE(st.ok());
        }
        if (!st.ok()) {
          if (st.code() == StatusCode::kResourceExhausted ||
              st.code() == StatusCode::kCancelled ||
              st.code() == StatusCode::kDeadlineExceeded) {
            governed_aborts.fetch_add(1);
          } else {
            ADD_FAILURE() << "unexpected error: " << st.message();
          }
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  // A cancel raised by the final iterations may still be pending; burn it
  // off so the verification statements below cannot be aborted by it.
  for (int i = 0; i < 4; ++i) {
    (void)engine->Query("SELECT COUNT(*) AS n FROM Pts");
  }

  // The core invariant: acknowledged rows and only acknowledged rows.
  auto result = engine->Query("SELECT COUNT(*) AS n FROM Pts");
  ASSERT_TRUE(result.ok()) << result.status().message();
  ASSERT_EQ(result.value().num_rows(), 1u);
  EXPECT_EQ(result.value().row(0)[0].AsInt().value(),
            kInitialRows + acked_rows.load());

  Dvms::GovernorStats stats = engine->governor_stats();
  EXPECT_GT(stats.mem_aborts, 0u) << "over-budget joins never triggered";
  EXPECT_GT(governed_aborts.load(), 0);
  EXPECT_EQ(stats.deadline_aborts, 0u) << "60 s deadline fired during soak";
  EXPECT_GT(stats.checkpoints, 0u);

  // Every relation is still internally consistent: a full render and an
  // aggregate over the grown table succeed, and the views match the base.
  EXPECT_TRUE(engine->Render().ok());
  auto totals = engine->Query("SELECT SUM(n) AS total_rows FROM totals");
  ASSERT_TRUE(totals.ok()) << totals.status().message();
  EXPECT_DOUBLE_EQ(totals.value().row(0)[0].AsDouble().value(),
                   static_cast<double>(kInitialRows + acked_rows.load()));
}

}  // namespace
}  // namespace dvms
