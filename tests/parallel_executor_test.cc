// Differential serial-vs-parallel harness: every query shape, at 1, 2, 4,
// and 8 threads, must produce bit-identical rows — and every rendered
// program bit-identical pixels — because parallel operators merge partial
// results by morsel index, never by completion order.

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/dvms.h"
#include "parser/parser.h"
#include "parser/planner.h"
#include "query/binder.h"
#include "query/executor.h"
#include "render/rasterizer.h"
#include "storage/catalog.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 4, 8};

// ---- Bit-identical comparison -------------------------------------------
// Value::Equals treats Int(1) == Double(1.0) and -0.0 == +0.0; the
// determinism contract is stronger, so compare types and raw bits.

bool BitIdentical(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kBool:
      return a.bool_value() == b.bool_value();
    case ValueType::kInt64:
      return a.int_value() == b.int_value();
    case ValueType::kDouble: {
      uint64_t ba, bb;
      double da = a.double_value(), db = b.double_value();
      std::memcpy(&ba, &da, sizeof(ba));
      std::memcpy(&bb, &db, sizeof(bb));
      return ba == bb;
    }
    case ValueType::kString:
      return a.string_value() == b.string_value();
  }
  return false;
}

::testing::AssertionResult TablesBitIdentical(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows()) {
    return ::testing::AssertionFailure()
           << "row counts differ: " << a.num_rows() << " vs " << b.num_rows();
  }
  for (size_t i = 0; i < a.num_rows(); ++i) {
    const Row& ra = a.row(i);
    const Row& rb = b.row(i);
    if (ra.size() != rb.size()) {
      return ::testing::AssertionFailure() << "row " << i << " arity differs";
    }
    for (size_t c = 0; c < ra.size(); ++c) {
      if (!BitIdentical(ra[c], rb[c])) {
        return ::testing::AssertionFailure()
               << "row " << i << " col " << c << " differs: "
               << ra[c].ToString() << " vs " << rb[c].ToString();
      }
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult PixelsBitIdentical(const PixelBuffer& a,
                                              const PixelBuffer& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    return ::testing::AssertionFailure() << "dimensions differ";
  }
  for (size_t y = 0; y < a.height(); ++y) {
    for (size_t x = 0; x < a.width(); ++x) {
      RGBA pa = a.At(static_cast<int64_t>(x), static_cast<int64_t>(y));
      RGBA pb = b.At(static_cast<int64_t>(x), static_cast<int64_t>(y));
      if (!(pa == pb)) {
        return ::testing::AssertionFailure()
               << "pixel (" << x << ", " << y << ") differs: rgba("
               << int(pa.r) << "," << int(pa.g) << "," << int(pa.b) << ","
               << int(pa.a) << ") vs rgba(" << int(pb.r) << "," << int(pb.g)
               << "," << int(pb.b) << "," << int(pb.a) << ")";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

// ---- Plan-level differential over a randomized fact table ---------------

class ParallelExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    udfs_ = UdfRegistry::WithBuiltins();
    auto sales = catalog_
                     .CreateTable("Sales",
                                  Schema({{"productId", ValueType::kInt64},
                                          {"region", ValueType::kString},
                                          {"year", ValueType::kInt64},
                                          {"price", ValueType::kDouble},
                                          {"revenue", ValueType::kDouble}}),
                                  RelationKind::kBase)
                     .value();
    const char* regions[] = {"east", "west", "north", "south"};
    Rng rng(7);
    for (int i = 0; i < 3000; ++i) {
      // NULLs and awkward doubles (negatives, tiny magnitudes) probe the
      // deterministic-merge path, not just the happy path.
      Value revenue = rng.Bernoulli(0.05)
                          ? Value::Null()
                          : Value::Double(rng.Uniform(-100, 100) *
                                          (rng.Bernoulli(0.1) ? 1e-9 : 1.0));
      ASSERT_TRUE(sales
                      ->Append({Value::Int(i),
                                Value::String(regions[rng.UniformInt(0, 3)]),
                                Value::Int(1992 + rng.UniformInt(0, 6)),
                                Value::Double(rng.Uniform(0, 50)), revenue})
                      .ok());
    }
    auto dim = catalog_
                   .CreateTable("RegionDim",
                                Schema({{"region", ValueType::kString},
                                        {"idx", ValueType::kInt64}}),
                                RelationKind::kBase)
                   .value();
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(dim->Append({Value::String(regions[i]), Value::Int(i)}).ok());
    }
  }

  Result<Table> RunSql(const std::string& sql, size_t threads,
                       ThreadPool* pool) {
    DVMS_ASSIGN_OR_RETURN(SelectStmt stmt, ParseSelect(sql));
    CatalogSchemaResolver resolver(&catalog_);
    Planner planner(&resolver);
    DVMS_ASSIGN_OR_RETURN(PlanPtr plan, planner.PlanSelect(stmt));
    Binder binder(&resolver, &udfs_);
    DVMS_RETURN_IF_ERROR(binder.Bind(plan.get()));
    Executor exec(&catalog_, &udfs_);
    ExecOptions opts;
    opts.num_threads = threads;
    opts.pool = pool;
    opts.morsel_rows = 256;  // many morsels even at this table size
    DVMS_ASSIGN_OR_RETURN(std::unique_ptr<NodeResult> result,
                          exec.Execute(*plan, opts));
    return std::move(result->table);
  }

  void ExpectDifferentialMatch(const std::string& sql) {
    SCOPED_TRACE(sql);
    auto reference = RunSql(sql, 1, nullptr);
    ASSERT_TRUE(reference.ok()) << reference.status().message();
    for (size_t threads : kThreadCounts) {
      if (threads == 1) continue;
      ThreadPool pool(threads);
      auto parallel = RunSql(sql, threads, &pool);
      ASSERT_TRUE(parallel.ok()) << parallel.status().message();
      EXPECT_TRUE(TablesBitIdentical(reference.value(), parallel.value()))
          << "at " << threads << " threads";
    }
  }

  Catalog catalog_;
  UdfRegistry udfs_;
};

TEST_F(ParallelExecutorTest, FilterProjectPipeline) {
  ExpectDifferentialMatch(
      "SELECT productId, price * 2 + revenue AS v FROM Sales "
      "WHERE revenue > 10 AND year < 1997");
}

TEST_F(ParallelExecutorTest, AggregateGroupBy) {
  ExpectDifferentialMatch(
      "SELECT region, SUM(revenue) AS s, COUNT(*) AS n, AVG(price) AS a, "
      "MIN(revenue) AS lo, MAX(revenue) AS hi FROM Sales GROUP BY region");
}

TEST_F(ParallelExecutorTest, GlobalAggregate) {
  ExpectDifferentialMatch(
      "SELECT SUM(revenue) AS s, COUNT(revenue) AS n, MIN(price) AS lo "
      "FROM Sales");
}

TEST_F(ParallelExecutorTest, FilteredAggregate) {
  ExpectDifferentialMatch(
      "SELECT year, SUM(revenue) AS s FROM Sales WHERE region = 'east' "
      "GROUP BY year");
}

TEST_F(ParallelExecutorTest, OrderByParallelSort) {
  ExpectDifferentialMatch(
      "SELECT productId, revenue FROM Sales ORDER BY revenue DESC, productId");
}

TEST_F(ParallelExecutorTest, OrderByWithDuplicateKeysIsStable) {
  ExpectDifferentialMatch(
      "SELECT productId, region FROM Sales ORDER BY region");
}

TEST_F(ParallelExecutorTest, DistinctUnionMinus) {
  ExpectDifferentialMatch("SELECT DISTINCT region, year FROM Sales");
  ExpectDifferentialMatch(
      "SELECT region FROM Sales WHERE year = 1993 "
      "UNION SELECT region FROM Sales WHERE year = 1994");
  ExpectDifferentialMatch(
      "SELECT region FROM Sales MINUS SELECT region FROM Sales "
      "WHERE region = 'east'");
}

TEST_F(ParallelExecutorTest, JoinThenAggregate) {
  ExpectDifferentialMatch(
      "SELECT idx, SUM(revenue) AS total FROM Sales AS s, RegionDim AS d "
      "WHERE s.region = d.region GROUP BY idx ORDER BY idx");
}

TEST_F(ParallelExecutorTest, LimitAfterSort) {
  ExpectDifferentialMatch(
      "SELECT productId FROM Sales ORDER BY price LIMIT 17");
}

TEST_F(ParallelExecutorTest, LineageIdenticalAcrossThreadCounts) {
  const std::string sql =
      "SELECT region, SUM(revenue) AS s FROM Sales WHERE price < 25 "
      "GROUP BY region";
  auto run = [&](size_t threads,
                 ThreadPool* pool) -> Result<std::unique_ptr<NodeResult>> {
    DVMS_ASSIGN_OR_RETURN(SelectStmt stmt, ParseSelect(sql));
    CatalogSchemaResolver resolver(&catalog_);
    Planner planner(&resolver);
    DVMS_ASSIGN_OR_RETURN(PlanPtr plan, planner.PlanSelect(stmt));
    Binder binder(&resolver, &udfs_);
    DVMS_RETURN_IF_ERROR(binder.Bind(plan.get()));
    Executor exec(&catalog_, &udfs_);
    ExecOptions opts;
    opts.capture_lineage = true;
    opts.num_threads = threads;
    opts.pool = pool;
    opts.morsel_rows = 128;
    return exec.Execute(*plan, opts);
  };
  auto reference = run(1, nullptr);
  ASSERT_TRUE(reference.ok());
  // Compare the full lineage tree, not just root rows.
  std::function<void(const NodeResult&, const NodeResult&)> compare =
      [&](const NodeResult& a, const NodeResult& b) {
        EXPECT_TRUE(TablesBitIdentical(a.table, b.table));
        ASSERT_EQ(a.lineage.size(), b.lineage.size());
        for (size_t i = 0; i < a.lineage.size(); ++i) {
          ASSERT_EQ(a.lineage[i].size(), b.lineage[i].size()) << "row " << i;
          for (size_t j = 0; j < a.lineage[i].size(); ++j) {
            EXPECT_EQ(a.lineage[i][j].child, b.lineage[i][j].child);
            EXPECT_EQ(a.lineage[i][j].row, b.lineage[i][j].row);
          }
        }
        ASSERT_EQ(a.children.size(), b.children.size());
        for (size_t c = 0; c < a.children.size(); ++c) {
          compare(*a.children[c], *b.children[c]);
        }
      };
  for (size_t threads : {2ul, 4ul, 8ul}) {
    ThreadPool pool(threads);
    auto parallel = run(threads, &pool);
    ASSERT_TRUE(parallel.ok());
    compare(*reference.value(), *parallel.value());
  }
}

// Randomized plans: filter/aggregate/sort shapes drawn from a seeded
// vocabulary so regressions reproduce from the seed.
class RandomizedPlanTest : public ParallelExecutorTest,
                           public ::testing::WithParamInterface<uint64_t> {};

TEST_P(RandomizedPlanTest, RandomPlansMatchAtAllThreadCounts) {
  Rng rng(GetParam());
  const char* columns[] = {"productId", "year", "price", "revenue"};
  const char* aggs[] = {"SUM", "COUNT", "AVG", "MIN", "MAX"};
  const char* cmps[] = {"<", ">", "<=", ">=", "<>"};
  for (int trial = 0; trial < 12; ++trial) {
    std::string where;
    if (rng.Bernoulli(0.7)) {
      where = std::string(" WHERE ") + columns[rng.UniformInt(0, 3)] + " " +
              cmps[rng.UniformInt(0, 4)] + " " +
              std::to_string(rng.UniformInt(-50, 2000));
      if (rng.Bernoulli(0.4)) {
        where += std::string(rng.Bernoulli(0.5) ? " AND " : " OR ") +
                 columns[rng.UniformInt(0, 3)] + " > " +
                 std::to_string(rng.UniformInt(-50, 50));
      }
    }
    std::string sql;
    switch (rng.UniformInt(0, 2)) {
      case 0: {  // filter + project
        sql = std::string("SELECT productId, ") + columns[rng.UniformInt(1, 3)] +
              " FROM Sales" + where;
        break;
      }
      case 1: {  // aggregate
        const char* group = rng.Bernoulli(0.5) ? "region" : "year";
        sql = std::string("SELECT ") + group + ", " +
              aggs[rng.UniformInt(0, 4)] + "(" + columns[rng.UniformInt(2, 3)] +
              ") AS a FROM Sales" + where + " GROUP BY " + group;
        break;
      }
      default: {  // sort (with duplicate-heavy keys half the time)
        const char* key = rng.Bernoulli(0.5) ? "region" : "revenue";
        sql = std::string("SELECT productId, region, revenue FROM Sales") +
              where + " ORDER BY " + key + (rng.Bernoulli(0.5) ? " DESC" : "");
        break;
      }
    }
    ExpectDifferentialMatch(sql);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedPlanTest,
                         ::testing::Values(11, 22, 33));

// ---- Rasterizer band-parallel differential ------------------------------

TEST(ParallelRasterizerTest, RandomMarksRenderBitIdentical) {
  Rng rng(42);
  for (int trial = 0; trial < 6; ++trial) {
    // Random overlapping translucent marks of one random type.
    int kind = static_cast<int>(rng.UniformInt(0, 2));
    Table marks =
        kind == 0
            ? Table(Schema({{"center_x", ValueType::kDouble},
                            {"center_y", ValueType::kDouble},
                            {"radius", ValueType::kDouble},
                            {"fill", ValueType::kString}}))
            : kind == 1 ? Table(Schema({{"x", ValueType::kDouble},
                                        {"y", ValueType::kDouble},
                                        {"width", ValueType::kDouble},
                                        {"height", ValueType::kDouble},
                                        {"fill", ValueType::kString},
                                        {"stroke", ValueType::kString}}))
                        : Table(Schema({{"x1", ValueType::kDouble},
                                        {"y1", ValueType::kDouble},
                                        {"x2", ValueType::kDouble},
                                        {"y2", ValueType::kDouble},
                                        {"stroke", ValueType::kString}}));
    const char* palette[] = {"#ff000080", "#00ff0040", "#0000ffcc",
                             "steelblue", "#12345678"};
    for (int i = 0; i < 120; ++i) {
      const char* color = palette[rng.UniformInt(0, 4)];
      if (kind == 0) {
        marks.AppendUnchecked({Value::Double(rng.Uniform(-20, 220)),
                               Value::Double(rng.Uniform(-20, 170)),
                               Value::Double(rng.Uniform(0, 25)),
                               Value::String(color)});
      } else if (kind == 1) {
        marks.AppendUnchecked({Value::Double(rng.Uniform(-20, 220)),
                               Value::Double(rng.Uniform(-20, 170)),
                               Value::Double(rng.Uniform(0, 60)),
                               Value::Double(rng.Uniform(0, 60)),
                               Value::String(color),
                               Value::String(palette[rng.UniformInt(0, 4)])});
      } else {
        marks.AppendUnchecked({Value::Double(rng.Uniform(-20, 220)),
                               Value::Double(rng.Uniform(-20, 170)),
                               Value::Double(rng.Uniform(-20, 220)),
                               Value::Double(rng.Uniform(-20, 170)),
                               Value::String(color)});
      }
    }
    PixelBuffer reference(200, 150);
    reference.Clear(RGBA{255, 255, 255, 255});
    RenderOptions serial;
    serial.num_threads = 1;
    ASSERT_TRUE(RenderMarks(marks, &reference, serial).ok());
    for (size_t threads : kThreadCounts) {
      if (threads == 1) continue;
      ThreadPool pool(threads);
      PixelBuffer parallel(200, 150);
      parallel.Clear(RGBA{255, 255, 255, 255});
      RenderOptions opts;
      opts.num_threads = threads;
      opts.pool = &pool;
      opts.band_rows = 16;  // many bands
      ASSERT_TRUE(RenderMarks(marks, &parallel, opts).ok());
      EXPECT_TRUE(PixelsBitIdentical(reference, parallel))
          << "trial " << trial << " kind " << kind << " at " << threads
          << " threads";
    }
  }
}

// ---- Whole-engine differential over the example program shapes ----------

struct ProgramFixture {
  const char* name;
  const char* program;
  size_t canvas_w, canvas_h;
  std::vector<InputEvent> events;
  std::vector<std::string> check_tables;
};

std::vector<ProgramFixture> ExamplePrograms() {
  std::vector<ProgramFixture> fixtures;

  // Linked brushing (examples/linked_brushing.cpp, Figure 2): scatterplot,
  // drag-select, versioned hit test, re-color.
  fixtures.push_back(
      {"linked_brushing",
       R"(
        C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U
            RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
                   (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);
        BBOX = SELECT x AS x0, y AS y0, x + dx AS x1, y + dy AS y1
          FROM C ORDER BY t DESC LIMIT 1;
        SPLOT_POINTS = SELECT 3 AS radius, 'gray' AS fill,
            linear_scale(Sales.revenue, 0, 100, 0, 200) AS center_x,
            linear_scale(Sales.profit, 0, 100, 0, 200) AS center_y,
            productId
          FROM Sales;
        selected = SELECT SP.productId AS productId
          FROM BBOX, SPLOT_POINTS@vnow-1 AS SP
          WHERE in_rectangle(SP.center_x, SP.center_y,
                             BBOX.x0, BBOX.y0, BBOX.x1, BBOX.y1);
        SPLOT_POINTS = SELECT 3 AS radius, 'gray' AS fill,
            linear_scale(Sales.revenue, 0, 100, 0, 200) AS center_x,
            linear_scale(Sales.profit, 0, 100, 0, 200) AS center_y,
            productId
          FROM Sales WHERE productId NOT IN selected
          UNION SELECT 3 AS radius, 'red' AS fill,
            linear_scale(Sales.revenue, 0, 100, 0, 200) AS center_x,
            linear_scale(Sales.profit, 0, 100, 0, 200) AS center_y,
            productId
          FROM Sales WHERE productId IN selected;
        P = render(SELECT * FROM SPLOT_POINTS);
       )",
       200,
       200,
       {InputEvent::MouseDown(0, 30, 30), InputEvent::MouseMove(1, 90, 110),
        InputEvent::MouseMove(2, 140, 150), InputEvent::MouseUp(3, 150, 160),
        InputEvent::MouseDown(4, 10, 10), InputEvent::MouseUp(5, 12, 12)},
       {"C", "BBOX", "selected", "SPLOT_POINTS"}});

  // Crossfilter (examples/crossfilter.cpp, Figure 1): brushing one chart
  // filters linked group-by-sum bar charts.
  fixtures.push_back(
      {"crossfilter",
       R"(
        C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U
            WHERE D.x > 100
            RETURN (D.t, D.x AS x, D.x AS x2),
                   (M.t, D.x AS x, M.x AS x2);
        C_RANGE = SELECT min2(x, x2) AS lo, max2(x, x2) AS hi
          FROM C ORDER BY t DESC LIMIT 1;
        selected_years = SELECT yb.year AS year
          FROM C_RANGE, year_bands AS yb
          WHERE yb.x1 >= C_RANGE.lo AND yb.x0 <= C_RANGE.hi;
        rev_region   = SELECT region, SUM(revenue) AS revenue
          FROM Sales GROUP BY region;
        rev_region_f = SELECT region, SUM(revenue) AS revenue FROM Sales
          WHERE year IN selected_years GROUP BY region;
        REGION_BARS = SELECT
            band_scale(d.idx, 4, 5.0, 95.0, 0.2) AS x,
            90.0 - linear_scale(r.revenue, 0, 40000, 0, 80) AS y,
            band_width(4, 5.0, 95.0, 0.2) AS width,
            linear_scale(r.revenue, 0, 40000, 0, 80) AS height,
            'lightgray' AS fill
          FROM rev_region AS r, RegionDim AS d
          WHERE r.region = d.region;
        REGION_BARS_F = SELECT
            band_scale(d.idx, 4, 5.0, 95.0, 0.2) AS x,
            90.0 - linear_scale(r.revenue, 0, 40000, 0, 80) AS y,
            band_width(4, 5.0, 95.0, 0.2) AS width,
            linear_scale(r.revenue, 0, 40000, 0, 80) AS height,
            'green' AS fill
          FROM rev_region_f AS r, RegionDim AS d
          WHERE r.region = d.region;
        P1 = render(SELECT * FROM REGION_BARS);
        P2 = render(SELECT * FROM REGION_BARS_F);
       )",
       200,
       100,
       {InputEvent::MouseDown(0, 110, 50), InputEvent::MouseMove(1, 150, 50),
        InputEvent::MouseUp(2, 170, 50)},
       {"C", "C_RANGE", "selected_years", "rev_region", "rev_region_f"}});

  // Small multiples: one chart per year rendered side by side.
  fixtures.push_back(
      {"small_multiples",
       R"(
        rev_93 = SELECT region, SUM(revenue) AS revenue FROM Sales
          WHERE year = 1993 GROUP BY region;
        rev_94 = SELECT region, SUM(revenue) AS revenue FROM Sales
          WHERE year = 1994 GROUP BY region;
        rev_95 = SELECT region, SUM(revenue) AS revenue FROM Sales
          WHERE year = 1995 GROUP BY region;
        M93 = SELECT band_scale(d.idx, 4, 2.0, 62.0, 0.2) AS x,
            58.0 - linear_scale(r.revenue, 0, 20000, 0, 50) AS y,
            band_width(4, 2.0, 62.0, 0.2) AS width,
            linear_scale(r.revenue, 0, 20000, 0, 50) AS height,
            'steelblue' AS fill
          FROM rev_93 AS r, RegionDim AS d WHERE r.region = d.region;
        M94 = SELECT 66.0 + band_scale(d.idx, 4, 2.0, 62.0, 0.2) AS x,
            58.0 - linear_scale(r.revenue, 0, 20000, 0, 50) AS y,
            band_width(4, 2.0, 62.0, 0.2) AS width,
            linear_scale(r.revenue, 0, 20000, 0, 50) AS height,
            'orange' AS fill
          FROM rev_94 AS r, RegionDim AS d WHERE r.region = d.region;
        M95 = SELECT 132.0 + band_scale(d.idx, 4, 2.0, 62.0, 0.2) AS x,
            58.0 - linear_scale(r.revenue, 0, 20000, 0, 50) AS y,
            band_width(4, 2.0, 62.0, 0.2) AS width,
            linear_scale(r.revenue, 0, 20000, 0, 50) AS height,
            'purple' AS fill
          FROM rev_95 AS r, RegionDim AS d WHERE r.region = d.region;
        P1 = render(SELECT * FROM M93);
        P2 = render(SELECT * FROM M94);
        P3 = render(SELECT * FROM M95);
       )",
       200,
       60,
       {},
       {"rev_93", "rev_94", "rev_95", "M93", "M94", "M95"}});

  return fixtures;
}

std::unique_ptr<Dvms> RunProgramAtThreads(const ProgramFixture& fixture,
                                          size_t threads) {
  Dvms::Options options;
  options.canvas_width = fixture.canvas_w;
  options.canvas_height = fixture.canvas_h;
  options.num_threads = threads;
  auto engine = std::make_unique<Dvms>(options);
  EXPECT_TRUE(engine
                  ->CreateBaseTable(
                      "Sales", Schema({{"productId", ValueType::kInt64},
                                       {"region", ValueType::kString},
                                       {"year", ValueType::kInt64},
                                       {"profit", ValueType::kDouble},
                                       {"revenue", ValueType::kDouble}}))
                  .ok());
  EXPECT_TRUE(engine
                  ->CreateBaseTable("RegionDim",
                                    Schema({{"region", ValueType::kString},
                                            {"idx", ValueType::kInt64}}))
                  .ok());
  EXPECT_TRUE(engine
                  ->CreateBaseTable("year_bands",
                                    Schema({{"year", ValueType::kInt64},
                                            {"x0", ValueType::kDouble},
                                            {"x1", ValueType::kDouble}}))
                  .ok());
  const char* regions[] = {"east", "west", "north", "south"};
  std::vector<Row> dim_rows;
  for (int i = 0; i < 4; ++i) {
    dim_rows.push_back({Value::String(regions[i]), Value::Int(i)});
  }
  EXPECT_TRUE(engine->Insert("RegionDim", dim_rows).ok());
  std::vector<Row> band_rows;
  for (int y = 0; y < 5; ++y) {
    band_rows.push_back({Value::Int(1993 + y), Value::Double(100 + 20 * y),
                         Value::Double(120 + 20 * y)});
  }
  EXPECT_TRUE(engine->Insert("year_bands", band_rows).ok());
  Rng rng(99);
  std::vector<Row> sales;
  for (int i = 0; i < 600; ++i) {
    sales.push_back({Value::Int(i), Value::String(regions[rng.UniformInt(0, 3)]),
                     Value::Int(1993 + rng.UniformInt(0, 4)),
                     Value::Double(rng.Uniform(0, 100)),
                     Value::Double(rng.Uniform(0, 100))});
  }
  EXPECT_TRUE(engine->Insert("Sales", sales).ok());
  Status loaded = engine->LoadProgram(fixture.program);
  EXPECT_TRUE(loaded.ok()) << fixture.name << ": " << loaded.message();
  for (const InputEvent& event : fixture.events) {
    EXPECT_TRUE(engine->PushEvent(event).ok());
  }
  return engine;
}

TEST(ParallelEngineTest, ExampleProgramsBitIdenticalAtAllThreadCounts) {
  for (const ProgramFixture& fixture : ExamplePrograms()) {
    SCOPED_TRACE(fixture.name);
    std::unique_ptr<Dvms> reference = RunProgramAtThreads(fixture, 1);
    for (size_t threads : kThreadCounts) {
      if (threads == 1) continue;
      SCOPED_TRACE("threads=" + std::to_string(threads));
      std::unique_ptr<Dvms> parallel = RunProgramAtThreads(fixture, threads);
      EXPECT_TRUE(PixelsBitIdentical(reference->pixels(), parallel->pixels()));
      for (const std::string& table : fixture.check_tables) {
        SCOPED_TRACE("table=" + table);
        auto ta = reference->GetTable(table);
        auto tb = parallel->GetTable(table);
        ASSERT_TRUE(ta.ok() && tb.ok());
        EXPECT_TRUE(TablesBitIdentical(*ta.value(), *tb.value()));
      }
    }
  }
}

}  // namespace
}  // namespace dvms
