// Profiling-heavy observability soaks: span-ring wraparound at capacity,
// concurrent counter hammering from real threads, and a fully-traced
// engine workload cross-checked against Stats. These run traced hot loops
// millions of times — they live in the `slow` ctest label.

#include <thread>
#include <vector>

#include "core/dvms.h"
#include "obs/trace.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

class ObsProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::ResetForTesting();
    obs::SetEnabled(true);
  }
  void TearDown() override {
    obs::SetEnabled(false);
    obs::ResetForTesting();
  }
};

TEST_F(ObsProfileTest, SpanRingRetainsOnlyNewestAtCapacity) {
  const size_t total = obs::kSpanRingCapacity + 500;
  for (size_t i = 0; i < total; ++i) {
    obs::Span span("ring");
  }
  auto spans = obs::SnapshotSpans();
  ASSERT_EQ(spans.size(), obs::kSpanRingCapacity);
  // Oldest-first order with strictly increasing ids; the dropped prefix is
  // exactly the oldest 500.
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LT(spans[i - 1].id, spans[i].id);
  }
  EXPECT_EQ(spans.back().id - spans.front().id + 1, obs::kSpanRingCapacity);
}

TEST_F(ObsProfileTest, ConcurrentCountersLoseNoIncrements) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 200000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        obs::Count("soak.counter");
        if ((i & 1023) == 0) obs::Observe("soak.histo", double(i & 255));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const obs::MetricRow& m : obs::SnapshotMetrics()) {
    if (m.name == "soak.counter") {
      EXPECT_EQ(m.count, kThreads * kPerThread);
      return;
    }
  }
  FAIL() << "soak.counter not recorded";
}

TEST_F(ObsProfileTest, TracedWorkloadMetricsAgreeWithEngineStats) {
  Dvms::Options options;
  options.canvas_width = 200;
  options.canvas_height = 200;
  options.num_threads = 4;
  options.trace = true;
  Dvms engine(options);
  ASSERT_TRUE(engine
                  .CreateBaseTable("Pts",
                                   Schema({{"id", ValueType::kInt64},
                                           {"v", ValueType::kDouble}}))
                  .ok());
  std::vector<Row> rows;
  for (int i = 0; i < 2000; ++i) {
    rows.push_back({Value::Int(i), Value::Double((i * 13) % 100)});
  }
  ASSERT_TRUE(engine.Insert("Pts", rows).ok());
  ASSERT_TRUE(engine.LoadProgram(R"(
    C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U
        RETURN (D.t, D.x, D.y), (M.t, M.x, M.y);
    MARKS = SELECT 3 AS radius, 'red' AS fill,
        linear_scale(v, 0, 100, 0, 190) AS center_x,
        linear_scale(id, 0, 2000, 0, 190) AS center_y
      FROM Pts;
    P = render(SELECT * FROM MARKS);
  )")
                  .ok());
  // Baselines after program load: renders before the marks view existed
  // (e.g. the auto-render after Insert) drew no frame.
  auto frame_count = [] {
    for (const obs::MetricRow& m : obs::SnapshotMetrics()) {
      if (m.name == "raster.frames") return m.count;
    }
    return uint64_t{0};
  };
  const uint64_t frames0 = frame_count();
  const size_t renders0 = engine.stats().renders;
  // 50 full drags, every event rendered.
  int64_t t = 0;
  for (int drag = 0; drag < 50; ++drag) {
    ASSERT_TRUE(engine.PushEvent(InputEvent::MouseDown(t++, 10, 10)).ok());
    for (int m = 0; m < 10; ++m) {
      ASSERT_TRUE(
          engine.PushEvent(InputEvent::MouseMove(t++, 20.0 + m, 20.0 + m))
              .ok());
    }
    ASSERT_TRUE(engine.PushEvent(InputEvent::MouseUp(t++, 40, 40)).ok());
    ASSERT_TRUE(engine.Render().ok());
  }
  const uint64_t frames = frame_count();
  uint64_t transitions = 0;
  for (const obs::MetricRow& m : obs::SnapshotMetrics()) {
    if (m.name == "events.transitions") transitions = m.count;
  }
  // Rendered frames track the engine's own render counter (each render
  // pass draws the single marks view once), and every pushed event made
  // it through the NFA.
  EXPECT_EQ(frames - frames0, engine.stats().renders - renders0);
  EXPECT_GE(transitions, engine.stats().events_processed);
  // And the registry's view of the workload is queryable from DeVIL.
  Table q = engine
                .Query("SELECT count FROM dvms_metrics "
                       "WHERE name = 'raster.frames'")
                .value();
  ASSERT_EQ(q.num_rows(), 1u);
  EXPECT_EQ(static_cast<uint64_t>(q.At(0, "count").value().int_value()),
            frames);
}

}  // namespace
}  // namespace dvms
