// Session-layer coverage: independent per-session governor envelopes
// (cancelling or deadlining one session never aborts another), pinned
// epoch + reader-slot release on Close (leak-checked against the exact
// GovernorStats accounting), per-session event-stream cursors, the
// reader/writer admission split (read-only Query/EXPLAIN/system-relation
// scans no longer consume DVMS_MAX_INFLIGHT mutation slots), and the
// headline acceptance check: concurrent session reads complete without a
// single engine write-mutex acquisition, witnessed by the synthetic
// engine.write_lock counter row of dvms_metrics.

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/dvms.h"
#include "core/session.h"
#include "governor/governor.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

constexpr const char* kReadQuery = "SELECT id, v FROM T ORDER BY id, v";

std::string Fingerprint(const Table& table) {
  std::ostringstream out;
  for (const Row& row : table.rows()) {
    for (const Value& v : row) out << v.ToString() << '|';
    out << '\n';
  }
  return out.str();
}

std::unique_ptr<Dvms> MakeEngine(Dvms::Options options = Dvms::Options()) {
  options.canvas_width = 100;
  options.canvas_height = 100;
  auto engine = std::make_unique<Dvms>(options);
  Schema schema({{"id", ValueType::kInt64}, {"v", ValueType::kDouble}});
  EXPECT_TRUE(engine->CreateBaseTable("T", schema).ok());
  std::vector<Row> rows;
  for (int64_t i = 0; i < 256; ++i) {
    rows.push_back({Value::Int(i), Value::Double((i * 37) % 101)});
  }
  EXPECT_TRUE(engine->Insert("T", std::move(rows)).ok());
  return engine;
}

/// Step-controlled fake clock (governor_test idiom).
struct FakeClock {
  std::shared_ptr<std::atomic<int64_t>> now =
      std::make_shared<std::atomic<int64_t>>(0);
  std::shared_ptr<std::atomic<int64_t>> step =
      std::make_shared<std::atomic<int64_t>>(0);
  QueryContext::Clock fn() const {
    auto n = now;
    auto s = step;
    return [n, s] { return n->fetch_add(s->load()); };
  }
};

TEST(SessionTest, CancellingOneSessionDoesNotAbortAnother) {
  auto engine = MakeEngine();
  Session a(engine.get());
  Session b(engine.get());

  a.RequestCancel();
  auto cancelled = a.Query(kReadQuery);
  ASSERT_EQ(cancelled.status().code(), StatusCode::kCancelled);
  // B's private cancel flag was never raised.
  auto fine = b.Query(kReadQuery);
  ASSERT_TRUE(fine.ok());
  // One cancel aborts one query: A recovers on its next read.
  auto recovered = a.Query(kReadQuery);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(Fingerprint(recovered.value()), Fingerprint(fine.value()));

  Dvms::GovernorStats stats = engine->governor_stats();
  EXPECT_EQ(stats.cancel_aborts, 1u);
  EXPECT_EQ(stats.readers_admitted, 3);
}

TEST(SessionTest, SessionDeadlinesAreIndependent) {
  FakeClock clock;
  Dvms::Options options;
  options.governor_clock = clock.fn();  // engine deadline stays disabled
  auto engine = MakeEngine(options);

  Session::Options tight;
  tight.deadline_ms = 50;
  Session a(engine.get(), tight);
  Session b(engine.get());  // inherits the engine's no-deadline config

  clock.step->store(20'000);  // 20 ms per governor clock read
  auto aborted = a.Query(kReadQuery);
  auto fine = b.Query(kReadQuery);
  clock.step->store(0);
  EXPECT_EQ(aborted.status().code(), StatusCode::kDeadlineExceeded);
  ASSERT_TRUE(fine.ok());
  EXPECT_EQ(engine->governor_stats().deadline_aborts, 1u);
}

TEST(SessionTest, CloseReleasesPinnedEpochAndReaderSlot) {
  Dvms::Options options;
  options.max_readers = 1;  // a leaked slot would wedge every later read
  auto engine = MakeEngine(options);
  {
    Session session(engine.get());
    ASSERT_TRUE(session.Pin().ok());
    ASSERT_TRUE(session.Query(kReadQuery).ok());
    EXPECT_EQ(engine->governor_stats().pinned_snapshots, 1);
    session.Close();
    EXPECT_EQ(engine->governor_stats().pinned_snapshots, 0);
    EXPECT_TRUE(session.closed());
    EXPECT_FALSE(session.Query(kReadQuery).ok());
  }
  // The single reader slot was returned: sequential sessions all admit.
  for (int i = 0; i < 3; ++i) {
    Session next(engine.get());
    EXPECT_TRUE(next.Query(kReadQuery).ok()) << "session " << i;
  }
  Dvms::GovernorStats stats = engine->governor_stats();
  EXPECT_EQ(stats.readers_admitted, 4);
  EXPECT_EQ(stats.readers_rejected, 0);
  EXPECT_EQ(stats.pinned_snapshots, 0);
}

TEST(SessionTest, DestructorReleasesPin) {
  auto engine = MakeEngine();
  {
    Session session(engine.get());
    ASSERT_TRUE(session.Pin().ok());
    EXPECT_EQ(engine->governor_stats().pinned_snapshots, 1);
  }
  EXPECT_EQ(engine->governor_stats().pinned_snapshots, 0);
}

TEST(SessionTest, ReadOnlyRequestsDoNotConsumeMutationSlots) {
  Dvms::Options options;
  options.max_inflight = 1;
  auto engine = MakeEngine(options);
  Dvms::GovernorStats before = engine->governor_stats();

  // Read-only engine entry points — a SELECT, an EXPLAIN, and a
  // system-relation scan — draw reader slots, never mutation slots.
  ASSERT_TRUE(engine->Query(kReadQuery).ok());
  ASSERT_TRUE(engine->Query("EXPLAIN SELECT id FROM T").ok());
  ASSERT_TRUE(engine->Query("SELECT * FROM dvms_governor").ok());
  Dvms::GovernorStats after = engine->governor_stats();
  EXPECT_EQ(after.admitted, before.admitted);
  EXPECT_EQ(after.readers_admitted, before.readers_admitted + 3);

  // A mutation draws exactly one mutation slot and no reader slot.
  ASSERT_TRUE(engine->Insert("T", {{Value::Int(999), Value::Double(1)}})
                  .ok());
  Dvms::GovernorStats final_stats = engine->governor_stats();
  EXPECT_EQ(final_stats.admitted, after.admitted + 1);
  EXPECT_EQ(final_stats.readers_admitted, after.readers_admitted);
}

TEST(SessionTest, GovernorRelationExposesReaderAndSnapshotRows) {
  Dvms::Options options;
  options.max_readers = 8;
  auto engine = MakeEngine(options);
  Session session(engine.get());
  ASSERT_TRUE(session.Pin().ok());
  auto result = session.Query(
      "SELECT name, value FROM dvms_governor "
      "WHERE name = 'max_readers' OR name = 'readers_in_flight' "
      "OR name = 'readers_admitted' OR name = 'readers_rejected' "
      "OR name = 'snapshot_epoch' OR name = 'pinned_snapshots' "
      "ORDER BY name");
  ASSERT_TRUE(result.ok());
  const Table& t = result.value();
  ASSERT_EQ(t.num_rows(), 6u);
  auto value_of = [&](const std::string& key) -> int64_t {
    for (size_t r = 0; r < t.num_rows(); ++r) {
      if (t.At(r, "name").value().string_value() == key) {
        return t.At(r, "value").value().int_value();
      }
    }
    return -1;
  };
  EXPECT_EQ(value_of("max_readers"), 8);
  EXPECT_EQ(value_of("readers_in_flight"), 1);  // this very query
  EXPECT_EQ(value_of("readers_admitted"), 1);
  EXPECT_EQ(value_of("readers_rejected"), 0);
  EXPECT_EQ(value_of("pinned_snapshots"), 1);
  EXPECT_EQ(value_of("snapshot_epoch"),
            static_cast<int64_t>(engine->published_epoch()));
}

TEST(SessionTest, ConcurrentSessionReadsNeverTakeTheWriteMutex) {
  auto engine = MakeEngine();
  auto write_locks = [&]() -> int64_t {
    Session probe(engine.get());
    auto result = probe.Query(
        "SELECT count FROM dvms_metrics WHERE name = 'engine.write_lock'");
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.value().num_rows(), 1u);
    return result.value().At(0, "count").value().int_value();
  };

  const int64_t before = write_locks();
  EXPECT_GT(before, 0);  // setup mutations did lock
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&engine] {
      Session session(engine.get());
      for (int i = 0; i < 25; ++i) {
        auto result = session.Query(kReadQuery);
        EXPECT_TRUE(result.ok());
        EXPECT_EQ(result.value().num_rows(), 256u);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // 50 concurrent reads later the lock-acquisition counter has not moved.
  EXPECT_EQ(write_locks(), before);
  EXPECT_EQ(engine->governor_stats().pinned_snapshots, 0);
}

TEST(SessionTest, PollEventsCursorsArePerSession) {
  auto engine = MakeEngine();
  Session a(engine.get());
  Session b(engine.get());

  auto first = a.PollEvents("T");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().num_rows(), 256u);  // full backlog on first poll
  auto drained = a.PollEvents("T");
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(drained.value().num_rows(), 0u);

  ASSERT_TRUE(
      engine->Insert("T", {{Value::Int(300), Value::Double(1)},
                           {Value::Int(301), Value::Double(2)}})
          .ok());
  auto delta = a.PollEvents("T");
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta.value().num_rows(), 2u);
  // B's cursor is independent: it still sees the whole stream.
  auto b_all = b.PollEvents("T");
  ASSERT_TRUE(b_all.ok());
  EXPECT_EQ(b_all.value().num_rows(), 258u);
}

TEST(SessionTest, PinnedPollDoesNotSeeNewCommits) {
  auto engine = MakeEngine();
  Session session(engine.get());
  ASSERT_TRUE(session.Pin().ok());
  ASSERT_TRUE(session.PollEvents("T").ok());  // drain the backlog
  ASSERT_TRUE(
      engine->Insert("T", {{Value::Int(300), Value::Double(1)}}).ok());
  auto pinned_delta = session.PollEvents("T");
  ASSERT_TRUE(pinned_delta.ok());
  EXPECT_EQ(pinned_delta.value().num_rows(), 0u);  // epoch is frozen
  session.Unpin();
  auto live_delta = session.PollEvents("T");
  ASSERT_TRUE(live_delta.ok());
  EXPECT_EQ(live_delta.value().num_rows(), 1u);
}

}  // namespace
}  // namespace dvms
