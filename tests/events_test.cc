#include "events/event.h"
#include "events/interaction.h"
#include "events/nfa.h"
#include "events/recognizer.h"
#include "parser/parser.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

/// DeVIL 2 verbatim.
const char* kDrag =
    "C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U "
    "WHERE FORALL m IN M m.y > 5 "
    "RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy), "
    "(M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);";

EventStmt ParseEvent(const std::string& source) {
  auto program = ParseProgram(source).value();
  return program.statements[0].event;
}

class EventsTest : public ::testing::Test {
 protected:
  void SetUp() override { udfs_ = UdfRegistry::WithBuiltins(); }

  PatternMatcher MakeMatcher(const std::string& source) {
    CompiledPattern pattern =
        CompilePattern(ParseEvent(source), &udfs_).value();
    return PatternMatcher(std::move(pattern), &udfs_);
  }

  UdfRegistry udfs_;
};

TEST_F(EventsTest, EventTypeRoundTrip) {
  EXPECT_EQ(EventTypeFromName("mouse_down").value(), EventType::kMouseDown);
  EXPECT_EQ(std::string(EventTypeToString(EventType::kKeyPress)), "KEY_PRESS");
  EXPECT_FALSE(EventTypeFromName("MOUSE_TELEPORT").ok());
}

TEST_F(EventsTest, CompileRejectsTrailingKleene) {
  auto stmt = ParseEvent("C = EVENT MOUSE_MOVE* AS M RETURN (M.t);");
  auto r = CompilePattern(stmt, &udfs_);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("non-repeating"), std::string::npos);
}

TEST_F(EventsTest, CompileRejectsDuplicateAliases) {
  auto stmt =
      ParseEvent("C = EVENT MOUSE_DOWN AS D, MOUSE_UP AS D RETURN (D.t);");
  EXPECT_FALSE(CompilePattern(stmt, &udfs_).ok());
}

TEST_F(EventsTest, CompileRejectsIncompatibleReturns) {
  auto stmt = ParseEvent(
      "C = EVENT MOUSE_DOWN AS D, MOUSE_UP AS U "
      "RETURN (D.t), (U.key);");
  auto r = CompilePattern(stmt, &udfs_);
  EXPECT_FALSE(r.ok());
}

TEST_F(EventsTest, CompileDerivesSchemaFromFirstReturn) {
  CompiledPattern p = CompilePattern(ParseEvent(kDrag), &udfs_).value();
  EXPECT_EQ(p.output_schema.num_columns(), 5u);
  EXPECT_TRUE(p.output_schema.FindColumn("dx").has_value());
  EXPECT_TRUE(p.output_schema.FindColumn("t").has_value());
  EXPECT_EQ(p.returns[0].emit_on, 0u);  // references only D
  EXPECT_EQ(p.returns[1].emit_on, 1u);  // references M
}

TEST_F(EventsTest, Table1Reproduction) {
  // Feeds exactly the event sequence of Table 1 and checks every row.
  PatternMatcher m = MakeMatcher(kDrag);
  std::vector<Row> rows;

  EXPECT_EQ(m.Feed(InputEvent::MouseDown(0, 5, 15), &rows).value(),
            MatchAction::kStarted);
  ASSERT_EQ(rows.size(), 1u);
  // (t=0, x=5, y=15, dx=0, dy=0)
  EXPECT_EQ(rows[0][0].int_value(), 0);
  EXPECT_DOUBLE_EQ(rows[0][1].double_value(), 5);
  EXPECT_DOUBLE_EQ(rows[0][2].double_value(), 15);
  EXPECT_EQ(rows[0][3].AsDouble().value(), 0);
  EXPECT_EQ(rows[0][4].AsDouble().value(), 0);

  EXPECT_EQ(m.Feed(InputEvent::MouseMove(1, 6, 17), &rows).value(),
            MatchAction::kProgress);
  ASSERT_EQ(rows.size(), 2u);
  // (t=1, x=5, y=15, dx=1, dy=2)
  EXPECT_EQ(rows[1][0].int_value(), 1);
  EXPECT_DOUBLE_EQ(rows[1][1].double_value(), 5);
  EXPECT_DOUBLE_EQ(rows[1][3].double_value(), 1);
  EXPECT_DOUBLE_EQ(rows[1][4].double_value(), 2);

  EXPECT_EQ(m.Feed(InputEvent::MouseMove(40, 10, 10), &rows).value(),
            MatchAction::kProgress);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_DOUBLE_EQ(rows[2][3].double_value(), 5);
  EXPECT_DOUBLE_EQ(rows[2][4].double_value(), -5);

  // MOUSE_UP terminates the query with no insertion (no RETURN statement
  // involves U).
  EXPECT_EQ(m.Feed(InputEvent::MouseUp(41, 10, 10), &rows).value(),
            MatchAction::kCommitted);
  EXPECT_EQ(rows.size(), 3u);
  EXPECT_FALSE(m.active());
}

TEST_F(EventsTest, NonAlphabetEventsAreFiltered) {
  PatternMatcher m = MakeMatcher(kDrag);
  std::vector<Row> rows;
  ASSERT_EQ(m.Feed(InputEvent::MouseDown(0, 5, 15), &rows).value(),
            MatchAction::kStarted);
  // A key press mid-drag is not in the alphabet: ignored.
  EXPECT_EQ(m.Feed(InputEvent::KeyPress(1, "a"), &rows).value(),
            MatchAction::kNone);
  EXPECT_TRUE(m.active());
  EXPECT_EQ(m.Feed(InputEvent::MouseUp(2, 5, 15), &rows).value(),
            MatchAction::kCommitted);
}

TEST_F(EventsTest, AlphabetEventThatCannotExtendRejects) {
  PatternMatcher m = MakeMatcher(kDrag);
  std::vector<Row> rows;
  ASSERT_EQ(m.Feed(InputEvent::MouseDown(0, 5, 15), &rows).value(),
            MatchAction::kStarted);
  // A second MOUSE_DOWN mid-pattern cannot extend the match.
  EXPECT_EQ(m.Feed(InputEvent::MouseDown(1, 6, 16), &rows).value(),
            MatchAction::kAborted);
  EXPECT_FALSE(m.active());
}

TEST_F(EventsTest, ForallFailureRejects) {
  PatternMatcher m = MakeMatcher(kDrag);
  std::vector<Row> rows;
  ASSERT_EQ(m.Feed(InputEvent::MouseDown(0, 5, 15), &rows).value(),
            MatchAction::kStarted);
  // FORALL m IN M m.y > 5 fails for y == 3.
  EXPECT_EQ(m.Feed(InputEvent::MouseMove(1, 6, 3), &rows).value(),
            MatchAction::kAborted);
  EXPECT_FALSE(m.active());
}

TEST_F(EventsTest, KleeneElementCanBeSkipped) {
  PatternMatcher m = MakeMatcher(kDrag);
  std::vector<Row> rows;
  ASSERT_EQ(m.Feed(InputEvent::MouseDown(0, 5, 15), &rows).value(),
            MatchAction::kStarted);
  // A click with no movement: DOWN then UP commits directly.
  EXPECT_EQ(m.Feed(InputEvent::MouseUp(1, 5, 15), &rows).value(),
            MatchAction::kCommitted);
  EXPECT_EQ(rows.size(), 1u);  // only the D tuple
}

TEST_F(EventsTest, PlainPredicateFiltersEventsFromStream) {
  // D.y > 20 filters low mouse downs from the input stream (the paper's
  // example): the match simply does not start.
  PatternMatcher m = MakeMatcher(
      "C = EVENT MOUSE_DOWN AS D, MOUSE_UP AS U "
      "WHERE D.y > 20 RETURN (D.t, D.x, D.y);");
  std::vector<Row> rows;
  EXPECT_EQ(m.Feed(InputEvent::MouseDown(0, 5, 15), &rows).value(),
            MatchAction::kNone);
  EXPECT_FALSE(m.active());
  EXPECT_EQ(m.Feed(InputEvent::MouseDown(1, 5, 25), &rows).value(),
            MatchAction::kStarted);
  EXPECT_EQ(rows.size(), 1u);
}

TEST_F(EventsTest, ExistsMustBeSatisfiedBeforeCommit) {
  PatternMatcher m = MakeMatcher(
      "C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U "
      "WHERE EXISTS m IN M m.x > 100 "
      "RETURN (D.t);");
  std::vector<Row> rows;
  // No move ever crosses x=100: commit becomes a reject.
  ASSERT_EQ(m.Feed(InputEvent::MouseDown(0, 5, 15), &rows).value(),
            MatchAction::kStarted);
  ASSERT_EQ(m.Feed(InputEvent::MouseMove(1, 50, 15), &rows).value(),
            MatchAction::kProgress);
  EXPECT_EQ(m.Feed(InputEvent::MouseUp(2, 50, 15), &rows).value(),
            MatchAction::kAborted);

  // With a satisfying move it commits.
  ASSERT_EQ(m.Feed(InputEvent::MouseDown(3, 5, 15), &rows).value(),
            MatchAction::kStarted);
  ASSERT_EQ(m.Feed(InputEvent::MouseMove(4, 150, 15), &rows).value(),
            MatchAction::kProgress);
  EXPECT_EQ(m.Feed(InputEvent::MouseUp(5, 150, 15), &rows).value(),
            MatchAction::kCommitted);
}

TEST_F(EventsTest, MatcherReusableAcrossInteractions) {
  PatternMatcher m = MakeMatcher(kDrag);
  std::vector<Row> rows;
  for (int round = 0; round < 3; ++round) {
    rows.clear();
    ASSERT_EQ(m.Feed(InputEvent::MouseDown(round * 10, 5, 15), &rows).value(),
              MatchAction::kStarted);
    ASSERT_EQ(
        m.Feed(InputEvent::MouseMove(round * 10 + 1, 6, 16), &rows).value(),
        MatchAction::kProgress);
    ASSERT_EQ(m.Feed(InputEvent::MouseUp(round * 10 + 2, 6, 16), &rows).value(),
              MatchAction::kCommitted);
    EXPECT_EQ(rows.size(), 2u);
  }
}

TEST_F(EventsTest, RecognizerInsertsIntoEventTable) {
  Catalog catalog;
  EventRecognizer recognizer(&catalog, &udfs_);
  ASSERT_TRUE(recognizer.DefinePattern("C", ParseEvent(kDrag)).ok());
  ASSERT_TRUE(catalog.Exists("C"));
  EXPECT_EQ(catalog.KindOf("C").value(), RelationKind::kEvent);

  auto outcomes = recognizer.Feed(InputEvent::MouseDown(0, 5, 15)).value();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].action, MatchAction::kStarted);
  EXPECT_EQ(outcomes[0].rows_inserted, 1u);

  ASSERT_TRUE(recognizer.Feed(InputEvent::MouseMove(1, 6, 17)).ok());
  auto table = catalog.Get("C").value();
  EXPECT_EQ(table->current().num_rows(), 2u);
  EXPECT_TRUE(table->in_transaction());

  auto commit = recognizer.Feed(InputEvent::MouseUp(2, 6, 17)).value();
  ASSERT_EQ(commit.size(), 1u);
  EXPECT_EQ(commit[0].action, MatchAction::kCommitted);
  EXPECT_FALSE(table->in_transaction());
}

TEST_F(EventsTest, RecognizerAbortClearsTable) {
  Catalog catalog;
  EventRecognizer recognizer(&catalog, &udfs_);
  ASSERT_TRUE(recognizer.DefinePattern("C", ParseEvent(kDrag)).ok());
  ASSERT_TRUE(recognizer.Feed(InputEvent::MouseDown(0, 5, 15)).ok());
  ASSERT_TRUE(recognizer.Feed(InputEvent::MouseMove(1, 6, 17)).ok());
  // FORALL failure aborts; the paper's rollback clears C.
  auto outcomes = recognizer.Feed(InputEvent::MouseMove(2, 6, 2)).value();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].action, MatchAction::kAborted);
  EXPECT_EQ(catalog.Get("C").value()->current().num_rows(), 0u);
}

TEST_F(EventsTest, RecognizerNewInteractionClearsPreviousRows) {
  Catalog catalog;
  EventRecognizer recognizer(&catalog, &udfs_);
  ASSERT_TRUE(recognizer.DefinePattern("C", ParseEvent(kDrag)).ok());
  ASSERT_TRUE(recognizer.Feed(InputEvent::MouseDown(0, 5, 15)).ok());
  ASSERT_TRUE(recognizer.Feed(InputEvent::MouseUp(1, 5, 15)).ok());
  EXPECT_EQ(catalog.Get("C").value()->current().num_rows(), 1u);
  // Next interaction starts fresh.
  ASSERT_TRUE(recognizer.Feed(InputEvent::MouseDown(2, 9, 9)).ok());
  const Table& t = catalog.Get("C").value()->current();
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(t.row(0)[1].double_value(), 9);
}

TEST_F(EventsTest, StepVersionsRecordedWithinInteraction) {
  Catalog catalog;
  EventRecognizer recognizer(&catalog, &udfs_);
  ASSERT_TRUE(recognizer.DefinePattern("C", ParseEvent(kDrag)).ok());
  ASSERT_TRUE(recognizer.Feed(InputEvent::MouseDown(0, 5, 15)).ok());
  ASSERT_TRUE(recognizer.Feed(InputEvent::MouseMove(1, 6, 17)).ok());
  ASSERT_TRUE(recognizer.Feed(InputEvent::MouseMove(2, 7, 18)).ok());
  auto table = catalog.Get("C").value();
  // @tnow-1: one event ago (2 rows).
  EXPECT_EQ(table->StepVersion(1).value()->num_rows(), 2u);
  EXPECT_EQ(table->StepVersion(2).value()->num_rows(), 1u);
}

TEST_F(EventsTest, MergeSequentialRenamesCollidingAliases) {
  EventStmt brush = ParseEvent(kDrag);
  EventStmt drag = ParseEvent(kDrag);
  EventStmt merged = MergeSequential(brush, drag).value();
  ASSERT_EQ(merged.elems.size(), 6u);
  EXPECT_EQ(merged.elems[3].alias, "D_2");
  EXPECT_EQ(merged.elems[4].alias, "M_2");
  // The rewritten second-half returns reference the renamed aliases; the
  // whole merged statement must still compile.
  CompiledPattern p = CompilePattern(merged, &udfs_).value();
  EXPECT_EQ(p.NumElems(), 6u);
}

TEST_F(EventsTest, MergedPatternMatchesSequenceOfBothInteractions) {
  EventStmt merged =
      MergeSequential(ParseEvent(kDrag), ParseEvent(kDrag)).value();
  PatternMatcher m(CompilePattern(merged, &udfs_).value(), &udfs_);
  std::vector<Row> rows;
  ASSERT_EQ(m.Feed(InputEvent::MouseDown(0, 1, 10), &rows).value(),
            MatchAction::kStarted);
  ASSERT_EQ(m.Feed(InputEvent::MouseUp(1, 1, 10), &rows).value(),
            MatchAction::kProgress);  // first half done, second pending
  ASSERT_EQ(m.Feed(InputEvent::MouseDown(2, 2, 20), &rows).value(),
            MatchAction::kProgress);
  EXPECT_EQ(m.Feed(InputEvent::MouseUp(3, 2, 20), &rows).value(),
            MatchAction::kCommitted);
}

TEST_F(EventsTest, AmbiguityAnalysisFlagsSharedStartTypes) {
  CompiledPattern drag = CompilePattern(ParseEvent(kDrag), &udfs_).value();
  CompiledPattern click = CompilePattern(
      ParseEvent("K = EVENT MOUSE_DOWN AS D, MOUSE_UP AS U RETURN (D.t);"),
      &udfs_).value();
  auto warnings = AnalyzeAmbiguity({{"drag", &drag}, {"click", &click}});
  ASSERT_FALSE(warnings.empty());
  EXPECT_NE(warnings[0].find("MOUSE_DOWN"), std::string::npos);
}

TEST_F(EventsTest, AmbiguityAnalysisQuietForDisjointAlphabets) {
  CompiledPattern keys = CompilePattern(
      ParseEvent("K = EVENT KEY_PRESS AS A, KEY_PRESS AS B RETURN (A.key);"),
      &udfs_).value();
  CompiledPattern wheel = CompilePattern(
      ParseEvent("W = EVENT WHEEL AS A, WHEEL AS B RETURN (A.delta);"),
      &udfs_).value();
  auto warnings = AnalyzeAmbiguity({{"keys", &keys}, {"wheel", &wheel}});
  EXPECT_TRUE(warnings.empty());
}

TEST_F(EventsTest, StartableTypesSkipLeadingKleene) {
  CompiledPattern p = CompilePattern(
      ParseEvent("C = EVENT MOUSE_MOVE* AS M, MOUSE_UP AS U RETURN (U.t);"),
      &udfs_).value();
  auto types = StartableTypes(p);
  ASSERT_EQ(types.size(), 2u);
  EXPECT_EQ(types[0], EventType::kMouseMove);
  EXPECT_EQ(types[1], EventType::kMouseUp);
}

}  // namespace
}  // namespace dvms
