// Mouse trails via `@tnow-j` — the paper's example of within-transaction
// versioning: a view can read the compound-event table as it was j events
// ago and render the cursor's recent history.

#include "core/dvms.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

const char* kTrailProgram = R"(
  C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U
      RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
             (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);

  -- The cursor's current position plus where it was one and two events
  -- ago: a three-dot trail.
  TRAIL_NOW  = SELECT x + dx AS cx, y + dy AS cy FROM C
    ORDER BY t DESC LIMIT 1;
  TRAIL_PREV = SELECT x + dx AS cx, y + dy AS cy FROM C@tnow-1
    ORDER BY t DESC LIMIT 1;
  TRAIL_OLD  = SELECT x + dx AS cx, y + dy AS cy FROM C@tnow-2
    ORDER BY t DESC LIMIT 1;
)";

class TrailsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Dvms::Options options;
    options.auto_render = false;
    engine_ = std::make_unique<Dvms>(options);
    ASSERT_TRUE(engine_->LoadProgram(kTrailProgram).ok());
  }

  std::pair<double, double> Point(const char* view) {
    const Table* t = engine_->GetTable(view).value();
    if (t->num_rows() == 0) return {-1, -1};
    return {t->row(0)[0].double_value(), t->row(0)[1].double_value()};
  }

  std::unique_ptr<Dvms> engine_;
};

TEST_F(TrailsTest, TnowViewsLagTheCursor) {
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseDown(0, 10, 10)).ok());
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseMove(1, 20, 20)).ok());
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseMove(2, 30, 30)).ok());
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseMove(3, 40, 40)).ok());

  // Current position: the last move.
  EXPECT_EQ(Point("TRAIL_NOW"), std::make_pair(40.0, 40.0));
  // One event ago the cursor was at (30, 30); two ago at (20, 20).
  EXPECT_EQ(Point("TRAIL_PREV"), std::make_pair(30.0, 30.0));
  EXPECT_EQ(Point("TRAIL_OLD"), std::make_pair(20.0, 20.0));
}

TEST_F(TrailsTest, TrailGrowsStepwiseFromInteractionStart) {
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseDown(0, 10, 10)).ok());
  // Only the down event so far: tnow-1 is the pre-interaction empty state.
  EXPECT_EQ(Point("TRAIL_NOW"), std::make_pair(10.0, 10.0));
  EXPECT_EQ(Point("TRAIL_PREV"), std::make_pair(-1.0, -1.0));

  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseMove(1, 20, 25)).ok());
  EXPECT_EQ(Point("TRAIL_NOW"), std::make_pair(20.0, 25.0));
  EXPECT_EQ(Point("TRAIL_PREV"), std::make_pair(10.0, 10.0));
}

TEST_F(TrailsTest, CommitClearsStepHistory) {
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseDown(0, 10, 10)).ok());
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseMove(1, 20, 20)).ok());
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseUp(2, 20, 20)).ok());
  // After commit there is no open transaction: @tnow-1 falls back to an
  // error inside the executor, surfacing as a recompute failure on the
  // *next* change — so the engine must keep working for new interactions.
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseDown(3, 50, 50)).ok());
  EXPECT_EQ(Point("TRAIL_NOW"), std::make_pair(50.0, 50.0));
}

}  // namespace
}  // namespace dvms
