#include "parser/parser.h"
#include "parser/planner.h"
#include "query/executor.h"
#include "query/maintenance.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    udfs_ = UdfRegistry::WithBuiltins();
    auto sales = catalog_
                     .CreateTable("Sales",
                                  Schema({{"productId", ValueType::kInt64},
                                          {"region", ValueType::kString},
                                          {"revenue", ValueType::kDouble}}),
                                  RelationKind::kBase)
                     .value();
    const char* regions[] = {"east", "west", "east", "west", "east"};
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(sales
                      ->Append({Value::Int(i + 1), Value::String(regions[i]),
                                Value::Double((i + 1) * 100.0)})
                      .ok());
    }
    auto info = catalog_
                    .CreateTable("Info", Schema({{"pid", ValueType::kInt64},
                                                 {"label", ValueType::kString}}),
                                 RelationKind::kBase)
                    .value();
    ASSERT_TRUE(info->Append({Value::Int(1), Value::String("a")}).ok());
    ASSERT_TRUE(info->Append({Value::Int(2), Value::String("b")}).ok());
  }

  Result<Table> RunSql(const std::string& sql) {
    DVMS_ASSIGN_OR_RETURN(SelectStmt stmt, ParseSelect(sql));
    CatalogSchemaResolver resolver(&catalog_);
    Planner planner(&resolver);
    DVMS_ASSIGN_OR_RETURN(PlanPtr plan, planner.PlanSelect(stmt));
    Binder binder(&resolver, &udfs_);
    DVMS_RETURN_IF_ERROR(binder.Bind(plan.get()));
    Executor exec(&catalog_, &udfs_);
    return exec.ExecuteToTable(*plan);
  }

  Catalog catalog_;
  UdfRegistry udfs_;
};

TEST_F(PlannerTest, SimpleSelectWhere) {
  Table t = RunSql("SELECT productId FROM Sales WHERE revenue > 250").value();
  EXPECT_EQ(t.num_rows(), 3u);
}

TEST_F(PlannerTest, StarExpansion) {
  Table t = RunSql("SELECT * FROM Sales").value();
  EXPECT_EQ(t.schema().num_columns(), 3u);
  EXPECT_EQ(t.num_rows(), 5u);
}

TEST_F(PlannerTest, QualifiedStarInJoin) {
  Table t =
      RunSql("SELECT Info.*, Sales.revenue FROM Sales, Info "
             "WHERE Sales.productId = Info.pid")
          .value();
  EXPECT_EQ(t.schema().num_columns(), 3u);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST_F(PlannerTest, EquiJoinExtractedIntoHashKeys) {
  auto stmt = ParseSelect(
                  "SELECT Sales.productId FROM Sales, Info "
                  "WHERE Sales.productId = Info.pid AND Sales.revenue > 50")
                  .value();
  CatalogSchemaResolver resolver(&catalog_);
  Planner planner(&resolver);
  PlanPtr plan = planner.PlanSelect(stmt).value();
  // Expect a Join node with one equi key somewhere under the root.
  std::string dump = plan->ToString();
  EXPECT_NE(dump.find("Join on ["), std::string::npos);
  // The revenue conjunct stays in a residual Filter.
  EXPECT_NE(dump.find("Filter"), std::string::npos);
}

TEST_F(PlannerTest, GroupBySumFromSql) {
  Table t = RunSql(
                "SELECT region, SUM(revenue) AS total FROM Sales "
                "GROUP BY region")
                .value();
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.At(0, "region").value().string_value(), "east");
  EXPECT_DOUBLE_EQ(t.At(0, "total").value().double_value(), 900.0);
  EXPECT_DOUBLE_EQ(t.At(1, "total").value().double_value(), 600.0);
}

TEST_F(PlannerTest, AggregateWithoutGroupBy) {
  Table t = RunSql("SELECT COUNT(*) AS n, AVG(revenue) AS avg FROM Sales")
                .value();
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.At(0, "n").value().int_value(), 5);
  EXPECT_DOUBLE_EQ(t.At(0, "avg").value().double_value(), 300.0);
}

TEST_F(PlannerTest, SelectItemNotInGroupByFails) {
  auto r = RunSql("SELECT productId, SUM(revenue) FROM Sales GROUP BY region");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("GROUP BY"), std::string::npos);
}

TEST_F(PlannerTest, OrderByDescWithLimit) {
  Table t = RunSql(
                "SELECT productId, revenue FROM Sales "
                "ORDER BY revenue DESC LIMIT 2")
                .value();
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.At(0, "productId").value().int_value(), 5);
}

TEST_F(PlannerTest, UnionOfFilters) {
  Table t = RunSql(
                "SELECT productId FROM Sales WHERE revenue < 150 "
                "UNION SELECT productId FROM Sales WHERE revenue > 450")
                .value();
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST_F(PlannerTest, MinusFromSql) {
  Table t = RunSql(
                "SELECT productId FROM Sales "
                "MINUS SELECT productId FROM Sales WHERE revenue > 250")
                .value();
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST_F(PlannerTest, OrderByAggregateAlias) {
  Table t = RunSql(
                "SELECT region, SUM(revenue) AS total FROM Sales "
                "GROUP BY region ORDER BY total DESC")
                .value();
  EXPECT_DOUBLE_EQ(t.At(0, "total").value().double_value(), 900.0);
}

TEST_F(PlannerTest, StarWithAggregateRejected) {
  auto r = RunSql("SELECT *, SUM(revenue) FROM Sales");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST_F(PlannerTest, FilterPushdownBelowJoin) {
  auto stmt = ParseSelect(
                  "SELECT Sales.productId FROM Sales, Info "
                  "WHERE Sales.productId = Info.pid AND Sales.revenue > 50 "
                  "AND Info.label = 'a'")
                  .value();
  CatalogSchemaResolver resolver(&catalog_);
  Planner planner(&resolver);
  PlanPtr plan = planner.PlanSelect(stmt).value();
  std::string dump = plan->ToString();
  // Both single-table conjuncts sit below the join, directly above their
  // scans; nothing is left in a top-level residual filter.
  size_t join_pos = dump.find("Join");
  size_t revenue_pos = dump.find("revenue > 50");
  size_t label_pos = dump.find("label = 'a'");
  ASSERT_NE(join_pos, std::string::npos);
  ASSERT_NE(revenue_pos, std::string::npos);
  ASSERT_NE(label_pos, std::string::npos);
  EXPECT_GT(revenue_pos, join_pos);  // indented under the join
  EXPECT_GT(label_pos, join_pos);
  // And the query still evaluates correctly.
  Table t = RunSql(
                "SELECT Sales.productId FROM Sales, Info "
                "WHERE Sales.productId = Info.pid AND Sales.revenue > 50 "
                "AND Info.label = 'a'")
                .value();
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST_F(PlannerTest, PushdownEquivalentToTopFilter) {
  // Pushed-down plans must produce the same rows as semantically
  // equivalent single-table filters.
  Table joined = RunSql(
                     "SELECT Sales.productId FROM Sales, Info "
                     "WHERE Sales.productId = Info.pid AND Sales.revenue > 150")
                     .value();
  Table reference = RunSql(
                        "SELECT s.productId FROM "
                        "(SELECT productId, revenue FROM Sales "
                        "WHERE revenue > 150) AS s, Info "
                        "WHERE s.productId = Info.pid")
                        .value();
  EXPECT_TRUE(joined.SameContents(reference));
}

TEST_F(PlannerTest, DevilThreeEndToEnd) {
  // The full DeVIL 3 shape driven through SQL text: selected + two-armed
  // union with IN / NOT IN.
  auto selected = catalog_
                      .CreateTable("selected",
                                   Schema({{"productId", ValueType::kInt64}}),
                                   RelationKind::kView)
                      .value();
  ASSERT_TRUE(selected->Append({Value::Int(2)}).ok());
  ASSERT_TRUE(selected->Append({Value::Int(4)}).ok());
  Table t = RunSql(
                "SELECT productId, 'gray' AS fill FROM Sales "
                "WHERE productId NOT IN selected "
                "UNION SELECT productId, 'red' AS fill FROM Sales "
                "WHERE productId IN selected")
                .value();
  EXPECT_EQ(t.num_rows(), 5u);
  size_t red = 0;
  auto fill_idx = t.schema().FindColumn("fill").value();
  for (const Row& row : t.rows()) {
    if (row[fill_idx].string_value() == "red") ++red;
  }
  EXPECT_EQ(red, 2u);
}

}  // namespace
}  // namespace dvms
