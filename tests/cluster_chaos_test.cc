// Seeded cluster chaos sweep: a scripted DeVIL workload (linked brushing
// with a BACKWARD TRACE, so lineage is part of the checked state) is driven
// through a ClusterClient fronting one primary and two replicas while a
// seeded adversary kills primaries (detach + destroy, forcing automatic
// failover and replacement replicas), arms ENOSPC/IO-fault stretches
// against the durability layer, and concurrent reader threads hammer the
// routed read path. Invariants, per seed and thread count:
//
//   1. No acknowledged commit is ever lost: the surviving fleet's state is
//      bit-identical (all relations including the trace relation B, and
//      rendered pixels) to an in-memory reference replay of exactly the
//      acknowledged ops.
//   2. No routed read is served beyond the staleness bound
//      (stats.staleness_violations == 0).
//   3. After every failover the whole fleet converges to one fingerprint.
//
// Labeled `slow` in ctest; the fast deterministic routing tests live in
// cluster_test.cc.

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_client.h"
#include "common/env.h"
#include "common/rng.h"
#include "core/dvms.h"
#include "parser/parser.h"
#include "gtest/gtest.h"

namespace dvms {
namespace cluster {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static int counter = 0;
    path_ = fs::path(::testing::TempDir()) /
            ("dvms_clchaos_" + tag + "_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

const char* kProgram = R"(
C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U
    RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
           (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);

SPLOT_POINTS = SELECT
    6 AS radius, 'gray' AS fill,
    linear_scale(Sales.revenue, 0, 100, 0, 200) AS center_x,
    linear_scale(Sales.profit, 0, 100, 0, 200) AS center_y
  FROM Sales;

BBOX = SELECT x AS x0, y AS y0, x + dx AS x1, y + dy AS y1
  FROM C ORDER BY t DESC LIMIT 1;

B = BACKWARD TRACE
  FROM SPLOT_POINTS@vnow-1 AS SP, BBOX
  WHERE in_rectangle(SP.center_x, SP.center_y,
                     BBOX.x0, BBOX.y0, BBOX.x1, BBOX.y1)
  TO Sales;

SPLOT_POINTS = SELECT
    6 AS radius, 'red' AS fill,
    linear_scale(B.revenue, 0, 100, 0, 200) AS center_x,
    linear_scale(B.profit, 0, 100, 0, 200) AS center_y
  FROM B
  UNION SELECT
    6 AS radius, 'gray' AS fill,
    linear_scale(S.revenue, 0, 100, 0, 200) AS center_x,
    linear_scale(S.profit, 0, 100, 0, 200) AS center_y
  FROM (Sales MINUS B) AS S;

P = render(SELECT * FROM SPLOT_POINTS);
)";

struct TraceOp {
  std::string label;
  std::function<Status(Dvms&)> run;
};

/// The scripted trace (shared idiom with replication_crash_test.cc; each
/// chaos file is self-contained by design). Every op commits exactly one
/// log frame on the engine that executes it.
std::vector<TraceOp> Workload() {
  std::vector<TraceOp> ops;
  auto push = [](InputEvent e) {
    return [e](Dvms& d) { return d.PushEvent(e); };
  };
  ops.push_back({"create", [](Dvms& d) {
                   return d.CreateBaseTable(
                       "Sales", Schema({{"productId", ValueType::kInt64},
                                        {"profit", ValueType::kDouble},
                                        {"revenue", ValueType::kDouble}}));
                 }});
  ops.push_back({"seed-rows", [](Dvms& d) {
                   return d.Insert(
                       "Sales",
                       {{Value::Int(1), Value::Double(15), Value::Double(20)},
                        {Value::Int(2), Value::Double(35), Value::Double(40)},
                        {Value::Int(3), Value::Double(55), Value::Double(65)},
                        {Value::Int(4), Value::Double(85), Value::Double(95)}});
                 }});
  ops.push_back({"program", [](Dvms& d) { return d.LoadProgram(kProgram); }});
  ops.push_back({"b1-down", push(InputEvent::MouseDown(0, 30, 30))});
  ops.push_back({"b1-move", push(InputEvent::MouseMove(1, 150, 150))});
  ops.push_back({"b1-up", push(InputEvent::MouseUp(2, 150, 150))});
  ops.push_back({"insert-5", [](Dvms& d) {
                   return d.Insert("Sales", {{Value::Int(5), Value::Double(50),
                                              Value::Double(50)}});
                 }});
  ops.push_back({"b2-down", push(InputEvent::MouseDown(3, 10, 10))});
  ops.push_back({"b2-move", push(InputEvent::MouseMove(4, 90, 90))});
  ops.push_back({"b2-up", push(InputEvent::MouseUp(5, 90, 90))});
  ops.push_back({"delete-2", [](Dvms& d) {
                   auto n = d.Delete("Sales",
                                     ParseExpression("productId = 2").value());
                   return n.ok() ? Status::OK() : n.status();
                 }});
  ops.push_back({"undo", [](Dvms& d) { return d.Undo(); }});
  ops.push_back({"redo", [](Dvms& d) { return d.Redo(); }});
  ops.push_back({"scale", [](Dvms& d) {
                   return d.CreateScale("sx", 0, 100, 0, 200);
                 }});
  ops.push_back({"insert-6", [](Dvms& d) {
                   return d.Insert("Sales", {{Value::Int(6), Value::Double(70),
                                              Value::Double(30)}});
                 }});
  ops.push_back({"b3-down", push(InputEvent::MouseDown(6, 20, 20))});
  ops.push_back({"b3-move", push(InputEvent::MouseMove(7, 70, 70))});
  ops.push_back({"b3-up", push(InputEvent::MouseUp(8, 70, 70))});
  return ops;
}

Dvms::Options PrimaryOptions(const std::string& data_dir) {
  Dvms::Options options;
  options.canvas_width = 200;
  options.canvas_height = 200;
  options.num_threads = 1;
  options.data_dir = data_dir;
  options.wal_fsync = "always";
  options.snapshot_interval = 0;
  return options;
}

Dvms::Options ReplicaOptions(const std::string& primary_dir,
                             uint64_t jitter_seed) {
  Dvms::Options options;
  options.canvas_width = 200;
  options.canvas_height = 200;
  options.num_threads = 1;
  options.replica_of = primary_dir;
  options.replica_poll_ms = 1;
  options.replica_jitter_seed = jitter_seed;
  return options;
}

std::string Fingerprint(const Dvms& engine) {
  std::ostringstream out;
  for (const std::string& name : engine.catalog().Names()) {
    auto table = engine.GetTable(name);
    if (!table.ok()) continue;
    out << "== " << name << " ==\n";
    const Table* t = table.value();
    for (size_t c = 0; c < t->schema().num_columns(); ++c) {
      out << t->schema().column(c).name << "|";
    }
    out << "\n";
    for (size_t r = 0; r < t->num_rows(); ++r) {
      for (const Value& v : t->row(r)) out << v.ToString() << "|";
      out << "\n";
    }
  }
  return out.str();
}

/// One chaos trial: seeded adversary vs. the routed workload.
void RunChaosTrial(uint64_t seed, size_t reader_threads) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " readers=" + std::to_string(reader_threads));
  TempDir dir("s" + std::to_string(seed) + "t" +
              std::to_string(reader_threads));
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + reader_threads);

  // Process-wide fault env, disarmed by default; the adversary arms it
  // for op-sized stretches. Ops write+fsync, kind enospc only: replica
  // tailing (reads, listings) stays clean and the fault class is the
  // transient, probe-healable one — mirroring "the primary's disk filled
  // up", not "the device is returning garbage".
  IoFaultConfig config = ParseIoFaultSpec(std::to_string(seed % 97 + 1) +
                                          ":0.3:write,fsync,enospc")
          .value();
  FaultEnv fault_env(env::Posix(), config);
  fault_env.Disarm();
  ScopedEnv scoped(&fault_env);

  std::map<std::string, std::unique_ptr<Dvms>> fleet;
  fleet["e0"] = std::make_unique<Dvms>(PrimaryOptions(dir.str()));
  ASSERT_TRUE(fleet["e0"]->recovery_status().ok());
  fleet["r1"] =
      std::make_unique<Dvms>(ReplicaOptions(dir.str(), seed * 2 + 1));
  fleet["r2"] =
      std::make_unique<Dvms>(ReplicaOptions(dir.str(), seed * 2 + 2));

  ClusterOptions copts;
  copts.staleness_bound_frames = 64;  // replicas serve during churn
  copts.max_attempts = 12;
  copts.backoff_floor_ms = 1;
  copts.backoff_cap_ms = 8;
  copts.hedge_percentile = 0;  // hedging covered by its own tests/bench
  copts.breaker_failures = 3;
  copts.breaker_cooldown_ms = 10;
  copts.deadline_ms = 0;
  copts.seed = seed + 1;
  ClusterClient client(copts);
  for (auto& [name, engine] : fleet) {
    ASSERT_TRUE(client.AddEndpoint(name, engine.get()).ok());
  }

  const std::vector<TraceOp> ops = Workload();
  std::vector<size_t> acked;  // indexes of ops the client acknowledged

  // Concurrent routed readers. During blackouts (primary dead, breakers
  // open) kUnavailable is legal, and a freshly-enrolled replacement
  // replica that is still within the staleness bound may serve a state
  // from before Sales existed (kNotFound is a *correct* stale read, not a
  // routing bug); anything else must succeed.
  std::atomic<bool> stop{false};
  std::atomic<bool> readers_go{false};
  std::atomic<uint64_t> reads_ok{0};
  std::vector<std::thread> readers;
  struct ReaderJoiner {  // join even when an ASSERT unwinds the trial early
    std::atomic<bool>& stop;
    std::vector<std::thread>& threads;
    ~ReaderJoiner() {
      stop.store(true);
      for (std::thread& t : threads) {
        if (t.joinable()) t.join();
      }
    }
  } joiner{stop, readers};
  for (size_t t = 0; t < reader_threads; ++t) {
    readers.emplace_back([&client, &stop, &readers_go, &reads_ok] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (!readers_go.load(std::memory_order_relaxed)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        Result<Table> r =
            client.Query("SELECT COUNT(*) AS n FROM Sales");
        if (r.ok()) {
          reads_ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          EXPECT_TRUE(r.status().code() == StatusCode::kUnavailable ||
                      r.status().code() == StatusCode::kNotFound)
              << r.status().message();
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  int kills = 0;
  int fresh = 0;
  for (size_t i = 0; i < ops.size(); ++i) {
    // ---- adversary ----
    bool fault_window = false;
    if (i > 0 && kills < 2 && rng.Bernoulli(0.2)) {
      // Kill the primary: detach (drains in-flight calls through the
      // client), destroy the engine, and enroll a fresh replacement
      // replica so the fleet stays at three endpoints. The next routed
      // write fails over automatically.
      Result<std::string> victim = client.PrimaryName();
      if (victim.ok()) {
        ASSERT_TRUE(client.DetachEndpoint(victim.value()).ok());
        fleet.erase(victim.value());
        ++kills;
        const std::string name = "f" + std::to_string(++fresh);
        fleet[name] = std::make_unique<Dvms>(
            ReplicaOptions(dir.str(), seed * 31 + fresh));
        ASSERT_TRUE(client.AddEndpoint(name, fleet[name].get()).ok());
      }
    } else if (i > 0 && rng.Bernoulli(0.25)) {
      fault_env.Rearm();  // ENOSPC / EIO stretch for this op
      fault_window = true;
    }

    // ---- the workload op, routed ----
    Status st = client.Write(ops[i].label.c_str(), ops[i].run);
    if (!st.ok()) {
      // The disk stayed sick through the whole retry budget: heal it and
      // re-issue. Every engine-side failure rolled back (or the failover
      // path suppressed the replay), so the retry is exactly-once.
      fault_env.Disarm();
      fault_window = false;
      st = client.Write(ops[i].label.c_str(), ops[i].run);
    }
    ASSERT_TRUE(st.ok()) << ops[i].label << ": " << st.message();
    acked.push_back(i);
    if (fault_window) fault_env.Disarm();
    if (i == 1) readers_go.store(true);  // Sales exists from here on
  }
  fault_env.Disarm();

  stop.store(true);
  for (std::thread& t : readers) t.join();

  // An ENOSPC that landed mid-op (after CheckWritable, at the WAL append
  // of an op whose DDL cannot roll back) fail-stops that engine's
  // durability; the client condemns it and fails over — its in-memory
  // state is a fork the durable log never saw. A replica whose promotion
  // was itself interrupted by a fault window fail-stops permanently-stale,
  // and the router already skips it. Either way the engine is out of
  // rotation: drop it from the convergence check, exactly as an operator
  // would replace the wedged node.
  for (auto it = fleet.begin(); it != fleet.end();) {
    if (!it->second->recovery_status().ok()) {
      it = fleet.erase(it);
    } else {
      ++it;
    }
  }

  // ---- convergence: the whole surviving fleet, bit-identical ----
  Result<std::string> primary_name = client.PrimaryName();
  ASSERT_TRUE(primary_name.ok()) << primary_name.status().message();
  Dvms* primary = fleet.at(primary_name.value()).get();
  ASSERT_TRUE(primary->FlushWal().ok());
  const uint64_t target = primary->wal_lsn();
  for (auto& [name, engine] : fleet) {
    if (!engine->is_replica()) continue;
    ASSERT_GE(engine->WaitForReplicaLsn(target, 20000), target)
        << name << " never caught up to lsn " << target;
  }
  const std::string fleet_fp = Fingerprint(*primary);
  for (auto& [name, engine] : fleet) {
    EXPECT_EQ(Fingerprint(*engine), fleet_fp) << name << " diverged";
    EXPECT_TRUE(engine->pixels().Equals(primary->pixels()))
        << name << " pixels diverged";
  }

  // ---- no acked commit lost: reference replay of exactly the acked ops.
  // Fingerprint() covers every relation including the BACKWARD TRACE
  // output B, so lineage is part of the equality. ----
  {
    Dvms reference(PrimaryOptions(""));
    for (size_t idx : acked) {
      Status st = ops[idx].run(reference);
      ASSERT_TRUE(st.ok()) << "reference " << ops[idx].label << ": "
                           << st.message();
    }
    EXPECT_EQ(fleet_fp, Fingerprint(reference))
        << "fleet state does not match the acknowledged-op replay";
    EXPECT_TRUE(primary->pixels().Equals(reference.pixels()));
  }

  // ---- routing invariants ----
  const ClusterStats s = client.stats();
  EXPECT_EQ(s.staleness_violations, 0u)
      << "a read was served beyond the staleness bound";
  // Every kill forces a failover; a condemned (durability-poisoned)
  // primary forces one more each.
  EXPECT_EQ(s.failovers, static_cast<uint64_t>(kills) + s.condemned_endpoints);
  EXPECT_EQ(s.acked_lsn, target);
  if (reader_threads > 0) {
    EXPECT_GT(reads_ok.load(), 0u) << "readers never got a routed read in";
  }
}

TEST(ClusterChaosTest, SeededSweepSingleReader) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) RunChaosTrial(seed, 1);
}

TEST(ClusterChaosTest, SeededSweepConcurrentReaders) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) RunChaosTrial(seed, 4);
}

}  // namespace
}  // namespace cluster
}  // namespace dvms
