#include "core/dvms.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

class TableUdfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Dvms::Options options;
    options.auto_render = false;
    engine_ = std::make_unique<Dvms>(options);
    ASSERT_TRUE(engine_
                    ->CreateBaseTable("Sales",
                                      Schema({{"month", ValueType::kInt64},
                                              {"region", ValueType::kString},
                                              {"revenue", ValueType::kDouble}}))
                    .ok());
    std::vector<Row> rows = {
        {Value::Int(1), Value::String("east"), Value::Double(10)},
        {Value::Int(1), Value::String("west"), Value::Double(20)},
        {Value::Int(2), Value::String("east"), Value::Double(30)},
        {Value::Int(2), Value::String("west"), Value::Double(40)},
        {Value::Int(2), Value::String("north"), Value::Double(5)},
    };
    ASSERT_TRUE(engine_->Insert("Sales", rows).ok());
  }

  std::unique_ptr<Dvms> engine_;
};

TEST_F(TableUdfTest, LayoutStackComputesCumulativeExtents) {
  // Stacked bars: one bar per month, segments stacked per region.
  ASSERT_TRUE(engine_
                  ->LoadProgram(
                      "STACKED = layout_stack(SELECT month, revenue, region "
                      "FROM Sales ORDER BY month, region);")
                  .ok());
  const Table* t = engine_->GetTable("STACKED").value();
  ASSERT_EQ(t->num_rows(), 5u);
  ASSERT_EQ(t->schema().num_columns(), 5u);  // month, revenue, region, y0, y1
  size_t y0 = t->schema().IndexOf("y0").value();
  size_t y1 = t->schema().IndexOf("y1").value();
  // Month 1: east [0,10), west [10,30).
  EXPECT_DOUBLE_EQ(t->row(0)[y0].double_value(), 0);
  EXPECT_DOUBLE_EQ(t->row(0)[y1].double_value(), 10);
  EXPECT_DOUBLE_EQ(t->row(1)[y0].double_value(), 10);
  EXPECT_DOUBLE_EQ(t->row(1)[y1].double_value(), 30);
  // Month 2 stacks independently: east [0,30), north [30,35), west [35,75).
  EXPECT_DOUBLE_EQ(t->row(2)[y0].double_value(), 0);
  EXPECT_DOUBLE_EQ(t->row(3)[y1].double_value(), 35);
  EXPECT_DOUBLE_EQ(t->row(4)[y1].double_value(), 75);
}

TEST_F(TableUdfTest, LayoutStackUpdatesWithData) {
  ASSERT_TRUE(engine_
                  ->LoadProgram(
                      "STACKED = layout_stack(SELECT month, revenue, region "
                      "FROM Sales ORDER BY month, region);")
                  .ok());
  ASSERT_TRUE(engine_
                  ->Insert("Sales", {{Value::Int(1), Value::String("south"),
                                      Value::Double(7)}})
                  .ok());
  const Table* t = engine_->GetTable("STACKED").value();
  EXPECT_EQ(t->num_rows(), 6u);
}

TEST_F(TableUdfTest, LayoutIndexAppendsRowNumbers) {
  ASSERT_TRUE(engine_
                  ->LoadProgram(
                      "INDEXED = layout_index(SELECT DISTINCT region "
                      "FROM Sales ORDER BY region);")
                  .ok());
  const Table* t = engine_->GetTable("INDEXED").value();
  ASSERT_EQ(t->num_rows(), 3u);
  size_t idx = t->schema().IndexOf("idx").value();
  EXPECT_EQ(t->row(0)[idx].int_value(), 0);
  EXPECT_EQ(t->row(2)[idx].int_value(), 2);
  // Alphabetical: east, north, west.
  EXPECT_EQ(t->row(0)[0].string_value(), "east");
}

TEST_F(TableUdfTest, LayoutIndexFeedsBandScale) {
  // The end-to-end use: derive band positions for a categorical axis
  // without hand-maintaining a dimension table.
  const char* program = R"(
    REGIONS = layout_index(SELECT DISTINCT region FROM Sales ORDER BY region);
    BARS = SELECT
        band_scale(r.idx, 3, 0.0, 300.0, 0.2) AS x,
        100.0 - t.total / 2 AS y,
        band_width(3, 0.0, 300.0, 0.2) AS width,
        t.total / 2 AS height
      FROM REGIONS AS r,
           (SELECT region, SUM(revenue) AS total FROM Sales GROUP BY region)
             AS t
      WHERE r.region = t.region;
  )";
  ASSERT_TRUE(engine_->LoadProgram(program).ok());
  const Table* bars = engine_->GetTable("BARS").value();
  EXPECT_EQ(bars->num_rows(), 3u);
}

TEST_F(TableUdfTest, UnknownTableUdfFails) {
  Status st = engine_->LoadProgram(
      "V = no_such_layout(SELECT month FROM Sales);");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

TEST_F(TableUdfTest, LayoutStackRequiresTwoColumns) {
  Status st = engine_->LoadProgram(
      "V = layout_stack(SELECT month FROM Sales);");
  EXPECT_FALSE(st.ok());
}

TEST_F(TableUdfTest, TableUdfViewParticipatesInDataflow) {
  // Views can read a table-UDF view downstream.
  ASSERT_TRUE(engine_
                  ->LoadProgram(
                      "STACKED = layout_stack(SELECT month, revenue, region "
                      "FROM Sales ORDER BY month, region);"
                      "TALL = SELECT region FROM STACKED WHERE y1 > 30;")
                  .ok());
  EXPECT_EQ(engine_->GetTable("TALL").value()->num_rows(), 2u);
}

}  // namespace
}  // namespace dvms
