#include <cmath>

#include "streaming/intent_model.h"
#include "streaming/scheduler.h"
#include "streaming/simulation.h"
#include "streaming/wavelet.h"
#include "workload/mouse.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

TEST(WaveletTest, ForwardInverseRoundTrip) {
  std::vector<double> data = {3, 1, 4, 1, 5, 9, 2, 6};
  std::vector<double> coeffs = HaarForward(data);
  std::vector<double> back = HaarInverse(coeffs);
  ASSERT_EQ(back.size(), 8u);
  for (size_t i = 0; i < 8; ++i) EXPECT_NEAR(back[i], data[i], 1e-9);
}

TEST(WaveletTest, NonPowerOfTwoIsPadded) {
  std::vector<double> data = {1, 2, 3, 4, 5};
  ProgressiveEncoding enc(data);
  EXPECT_EQ(enc.num_coefficients(), 8u);
  std::vector<double> full = enc.DecodePrefix(8);
  ASSERT_EQ(full.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_NEAR(full[i], data[i], 1e-9);
}

TEST(WaveletTest, EnergyPreserved) {
  // Orthonormal transform: sum of squares is invariant.
  std::vector<double> data = {3, 1, 4, 1, 5, 9, 2, 6};
  std::vector<double> coeffs = HaarForward(data);
  double e1 = 0, e2 = 0;
  for (double v : data) e1 += v * v;
  for (double v : coeffs) e2 += v * v;
  EXPECT_NEAR(e1, e2, 1e-9);
}

TEST(WaveletTest, PrefixQualityMonotoneAndExactAtFull) {
  std::vector<double> data;
  for (int i = 0; i < 64; ++i) data.push_back(std::sin(i * 0.2) * 10 + 20);
  ProgressiveEncoding enc(data);
  double prev = -1;
  for (size_t k = 0; k <= enc.num_coefficients(); k += 4) {
    double q = enc.PrefixQuality(k);
    EXPECT_GE(q, prev - 1e-9);
    prev = q;
  }
  EXPECT_NEAR(enc.PrefixQuality(enc.num_coefficients()), 1.0, 1e-9);
}

TEST(WaveletTest, UtilityCurveMatchesPrefixQuality) {
  std::vector<double> data;
  for (int i = 0; i < 32; ++i) data.push_back(i * i * 0.1 + 5);
  ProgressiveEncoding enc(data);
  std::vector<double> curve = enc.UtilityCurve();
  ASSERT_EQ(curve.size(), enc.num_coefficients() + 1);
  for (size_t k = 0; k <= enc.num_coefficients(); k += 7) {
    EXPECT_NEAR(curve[k], enc.PrefixQuality(k), 1e-9) << "k=" << k;
  }
}

TEST(WaveletTest, SmoothSignalsCompressWell) {
  // A smooth aggregate reaches 90% quality from a small prefix — the
  // property that makes speculative streaming effective.
  std::vector<double> data;
  for (int i = 0; i < 256; ++i) data.push_back(50 + 10 * std::sin(i * 0.05));
  ProgressiveEncoding enc(data);
  std::vector<double> curve = enc.UtilityCurve();
  size_t k90 = 0;
  while (k90 < curve.size() && curve[k90] < 0.9) ++k90;
  EXPECT_LT(k90, enc.num_coefficients() / 8);
}

TEST(WaveletTest, ZeroDataHasPerfectQuality) {
  ProgressiveEncoding enc(std::vector<double>(16, 0.0));
  EXPECT_DOUBLE_EQ(enc.PrefixQuality(0), 1.0);
}

TEST(IntentModelTest, PredictsHoveredWidget) {
  auto widgets = MakeWidgetGrid(2, 1, 0, 0, 100, 100, 50);
  IntentModel model(widgets);
  // Move straight toward widget 1's center.
  for (int i = 0; i <= 10; ++i) {
    model.Observe({i * 20.0, 50.0 + i * 15.0, 50.0});
  }
  EXPECT_EQ(model.Top1(200), 1u);
  auto p = model.PredictWithin(200);
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-9);
  EXPECT_GT(p[1], p[0]);
}

TEST(IntentModelTest, UniformWithoutObservations) {
  auto widgets = MakeWidgetGrid(2, 2, 0, 0, 100, 100, 10);
  IntentModel model(widgets);
  auto p = model.PredictWithin(200);
  for (double v : p) EXPECT_NEAR(v, 0.25, 1e-9);
}

TEST(IntentModelTest, Reaches82PercentAccuracyAt200ms) {
  // The paper: "the model is 82% accurate at predicting the widget that
  // the user will interact with in 200ms".
  Rng rng(7);
  auto widgets = MakeWidgetGrid(4, 4, 20, 20, 140, 100, 16);
  MouseTraceConfig config;
  size_t correct = 0, total = 0;
  double cx = 10, cy = 10;
  for (int it = 0; it < 400; ++it) {
    size_t target = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(widgets.size()) - 1));
    MouseTrace trace =
        GenerateMouseTrace(widgets, target, cx, cy, config, &rng);
    IntentModel model(widgets);
    for (const MouseSample& s : trace.samples) {
      if (s.t_ms > trace.click_t_ms - 200) break;
      model.Observe(s);
    }
    if (model.Top1(200) == target) ++correct;
    ++total;
    cx = trace.samples.back().x;
    cy = trace.samples.back().y;
  }
  double accuracy = static_cast<double>(correct) / static_cast<double>(total);
  EXPECT_GT(accuracy, 0.72);
  EXPECT_LT(accuracy, 0.95);
}

TEST(MouseTraceTest, TraceEndsInsideTargetWidget) {
  Rng rng(3);
  auto widgets = MakeWidgetGrid(3, 3, 0, 0, 100, 80, 10);
  MouseTraceConfig config;
  for (int i = 0; i < 20; ++i) {
    size_t target = static_cast<size_t>(rng.UniformInt(0, 8));
    MouseTrace trace = GenerateMouseTrace(widgets, target, 5, 5, config, &rng);
    const MouseSample& end = trace.samples.back();
    EXPECT_TRUE(widgets[target].Contains(end.x, end.y))
        << "target " << target << " end (" << end.x << "," << end.y << ")";
    // Samples are in time order.
    for (size_t s = 1; s < trace.samples.size(); ++s) {
      EXPECT_GE(trace.samples[s].t_ms, trace.samples[s - 1].t_ms);
    }
  }
}

TEST(MouseTraceTest, FittsLawLongerDistanceLongerDuration) {
  Rng rng(5);
  auto widgets = MakeWidgetGrid(2, 1, 0, 0, 50, 50, 800);
  MouseTraceConfig config;
  double near_sum = 0, far_sum = 0;
  for (int i = 0; i < 20; ++i) {
    near_sum +=
        GenerateMouseTrace(widgets, 0, 30, 30, config, &rng).click_t_ms;
    far_sum += GenerateMouseTrace(widgets, 1, 30, 30, config, &rng).click_t_ms;
  }
  EXPECT_GT(far_sum, near_sum);
}

TEST(SchedulerTest, GreedyPrefersHighProbabilityTiles) {
  StreamScheduler scheduler(10);
  for (int i = 0; i < 2; ++i) {
    StreamTile tile;
    tile.id = i == 0 ? "hot" : "cold";
    // Linear utility over 100 coefficients.
    tile.utility.resize(101);
    for (int k = 0; k <= 100; ++k) tile.utility[k] = k / 100.0;
    scheduler.AddTile(std::move(tile));
  }
  scheduler.SetProbabilities({{"hot", 0.9}, {"cold", 0.1}});
  auto sent = scheduler.TickDetailed().sent;
  // With equal (linear) marginal utility, all bandwidth goes to the
  // likelier tile.
  EXPECT_EQ(sent["hot"], 10u);
  EXPECT_EQ(sent.count("cold"), 0u);
}

TEST(SchedulerTest, ConcaveUtilitySpreadsBandwidth) {
  StreamScheduler scheduler(20);
  for (int i = 0; i < 2; ++i) {
    StreamTile tile;
    tile.id = "t" + std::to_string(i);
    // Strongly concave: the first coefficients carry most utility.
    tile.utility.resize(101);
    for (int k = 0; k <= 100; ++k) {
      tile.utility[k] = 1.0 - std::pow(0.8, static_cast<double>(k));
    }
    scheduler.AddTile(std::move(tile));
  }
  scheduler.SetProbabilities({{"t0", 0.6}, {"t1", 0.4}});
  auto sent = scheduler.TickDetailed().sent;
  // Both tiles receive some bandwidth: after t0's cheap gains are taken,
  // t1's early coefficients dominate t0's late ones.
  EXPECT_GT(sent["t0"], sent["t1"]);
  EXPECT_GT(sent["t1"], 0u);
}

TEST(SchedulerTest, StopsWhenAllTilesComplete) {
  StreamScheduler scheduler(1000);
  StreamTile tile;
  tile.id = "only";
  tile.utility = {0.0, 0.5, 1.0};  // 2 coefficients
  scheduler.AddTile(std::move(tile));
  auto sent = scheduler.TickDetailed().sent;
  EXPECT_EQ(sent["only"], 2u);
  EXPECT_TRUE(scheduler.GetTile("only").value()->complete());
  EXPECT_TRUE(scheduler.TickDetailed().sent.empty());
}

TEST(SchedulerTest, ExpectedUtilityGrowsWithDelivery) {
  StreamScheduler scheduler(5);
  StreamTile tile;
  tile.id = "t";
  tile.utility.resize(51);
  for (int k = 0; k <= 50; ++k) tile.utility[k] = k / 50.0;
  scheduler.AddTile(std::move(tile));
  scheduler.SetProbabilities({{"t", 1.0}});
  double before = scheduler.ExpectedUtility();
  (void)scheduler.TickDetailed();
  EXPECT_GT(scheduler.ExpectedUtility(), before);
}

TEST(StreamingSimulationTest, SpeculationBeatsRequestResponse) {
  StreamingSimConfig config;
  config.num_interactions = 100;
  StreamingSimResult result = SimulateStreaming(config);
  // Request-response sits in the near-interactive band (150-700 ms);
  // speculation pushes most interactions past the 100 ms threshold.
  EXPECT_GT(result.mean_request_response_ms, 150.0);
  EXPECT_LT(result.mean_request_response_ms, 700.0);
  EXPECT_LT(result.mean_speculative_ms, result.mean_request_response_ms);
  EXPECT_EQ(result.frac_rr_under_100ms, 0.0);
  EXPECT_GT(result.frac_speculative_under_100ms, 0.8);
  EXPECT_GT(result.mean_quality_at_click, 0.7);
  // Predictor in the paper's reported regime.
  EXPECT_GT(result.top1_accuracy, 0.72);
}

TEST(StreamingSimulationTest, DeterministicForFixedSeed) {
  StreamingSimConfig config;
  config.num_interactions = 20;
  StreamingSimResult a = SimulateStreaming(config);
  StreamingSimResult b = SimulateStreaming(config);
  EXPECT_DOUBLE_EQ(a.mean_speculative_ms, b.mean_speculative_ms);
  EXPECT_DOUBLE_EQ(a.top1_accuracy, b.top1_accuracy);
}

TEST(StreamingSimulationTest, MoreBandwidthImprovesQualityAtClick) {
  StreamingSimConfig low;
  low.num_interactions = 60;
  low.bandwidth_coeffs_per_ms = 0.1;
  StreamingSimConfig high = low;
  high.bandwidth_coeffs_per_ms = 2.0;
  EXPECT_GT(SimulateStreaming(high).mean_quality_at_click,
            SimulateStreaming(low).mean_quality_at_click);
}

}  // namespace
}  // namespace dvms
