#include "streaming/tiles.h"
#include "workload/tpch.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

class TilesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchConfig config;
    config.num_rows = 3000;
    fact_ = GenerateTpchSales(config);
    cube_ = std::make_unique<CrossfilterCube>(
        CrossfilterCube::Build(fact_, {"month", "year"}, "revenue").value());
  }

  Table fact_{Schema{}};
  std::unique_ptr<CrossfilterCube> cube_;
};

TEST_F(TilesTest, OneTilePerFilterValue) {
  auto tiles = MakeTilesFromCube(*cube_, "month", "year").value();
  ASSERT_EQ(tiles.size(), 7u);  // years 1992..1998
  for (const DataTile& tile : tiles) {
    EXPECT_EQ(tile.payload.size(), 12u);  // months
    EXPECT_EQ(tile.id.rfind("year=", 0), 0u);
  }
}

TEST_F(TilesTest, TilePayloadsMatchCubeSlices) {
  auto tiles = MakeTilesFromCube(*cube_, "month", "year").value();
  ValueSet y97;
  y97.insert(Value::Int(1997));
  Table slice = cube_->FilteredGroupSums("month", "year", y97).value();
  const DataTile* tile97 = nullptr;
  for (const DataTile& tile : tiles) {
    if (tile.id == "year=1997") tile97 = &tile;
  }
  ASSERT_NE(tile97, nullptr);
  ASSERT_EQ(slice.num_rows(), tile97->payload.size());
  for (size_t i = 0; i < slice.num_rows(); ++i) {
    EXPECT_NEAR(tile97->payload[i], slice.row(i)[1].double_value(), 1e-6);
  }
}

TEST_F(TilesTest, TilesSumToGrandTotal) {
  auto tiles = MakeTilesFromCube(*cube_, "month", "year").value();
  double tiles_total = 0;
  for (const DataTile& tile : tiles) {
    for (double v : tile.payload) tiles_total += v;
  }
  size_t rev = fact_.schema().IndexOf("revenue").value();
  double fact_total = 0;
  for (const Row& row : fact_.rows()) fact_total += row[rev].double_value();
  EXPECT_NEAR(tiles_total, fact_total, 1e-4 * fact_total);
}

TEST_F(TilesTest, RealTilesAreProgressivelyDecodable) {
  auto tiles = MakeTilesFromCube(*cube_, "month", "year").value();
  ProgressiveEncoding enc = EncodeTile(tiles[0]);
  // Real aggregate slices are front-loaded: the first coefficient (the
  // mean) already carries most of the energy — the property speculation
  // relies on.
  std::vector<double> curve = enc.UtilityCurve();
  EXPECT_GT(curve[1], 0.4);  // (zero-padding to 16 spills some energy)
  size_t k90 = 0;
  while (k90 < curve.size() && curve[k90] < 0.9) ++k90;
  EXPECT_LT(k90, curve.size());  // reaches usable quality before the end
  // The full prefix reproduces the slice exactly.
  std::vector<double> full = enc.DecodePrefix(enc.num_coefficients());
  for (size_t i = 0; i < tiles[0].payload.size(); ++i) {
    EXPECT_NEAR(full[i], tiles[0].payload[i], 1e-6);
  }
}

TEST_F(TilesTest, UnknownDimensionFails) {
  EXPECT_FALSE(MakeTilesFromCube(*cube_, "nope", "year").ok());
  EXPECT_FALSE(MakeTilesFromCube(*cube_, "month", "nope").ok());
}

}  // namespace
}  // namespace dvms
