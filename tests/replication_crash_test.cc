// Fork-based replication failover harness: a scripted primary dies at op
// boundaries (simulated SIGKILL) or mid-frame during a WAL write (torn
// write); a replica then attaches to the orphaned directory, tails whatever
// survived, and is promoted. The promoted engine must be bit-identical —
// tables (including the provenance trace relation B), pixels — to the
// reference run's clean committed prefix, must keep accepting the rest of
// the trace, and must leave a log a fresh primary recovers exactly. A
// replica that is itself killed mid-tail must leave the primary's directory
// byte-for-byte untouched. Shares the scripted-trace idiom with
// crash_recovery_test.cc (each file is self-contained by design — the
// workloads assert different invariants and drift independently). Labeled
// `slow` in ctest.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/dvms.h"
#include "durability/tailer.h"
#include "durability/wal.h"
#include "parser/parser.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static int counter = 0;
    path_ = fs::path(::testing::TempDir()) /
            ("dvms_replcrash_" + tag + "_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  fs::path path_;
};

// DeVIL linked brushing with a BACKWARD TRACE so the promoted replica is
// checked against lineage output, not just plain view state.
const char* kProgram = R"(
C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U
    RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
           (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);

SPLOT_POINTS = SELECT
    6 AS radius, 'gray' AS fill,
    linear_scale(Sales.revenue, 0, 100, 0, 200) AS center_x,
    linear_scale(Sales.profit, 0, 100, 0, 200) AS center_y
  FROM Sales;

BBOX = SELECT x AS x0, y AS y0, x + dx AS x1, y + dy AS y1
  FROM C ORDER BY t DESC LIMIT 1;

B = BACKWARD TRACE
  FROM SPLOT_POINTS@vnow-1 AS SP, BBOX
  WHERE in_rectangle(SP.center_x, SP.center_y,
                     BBOX.x0, BBOX.y0, BBOX.x1, BBOX.y1)
  TO Sales;

SPLOT_POINTS = SELECT
    6 AS radius, 'red' AS fill,
    linear_scale(B.revenue, 0, 100, 0, 200) AS center_x,
    linear_scale(B.profit, 0, 100, 0, 200) AS center_y
  FROM B
  UNION SELECT
    6 AS radius, 'gray' AS fill,
    linear_scale(S.revenue, 0, 100, 0, 200) AS center_x,
    linear_scale(S.profit, 0, 100, 0, 200) AS center_y
  FROM (Sales MINUS B) AS S;

P = render(SELECT * FROM SPLOT_POINTS);
)";

struct TraceOp {
  std::string label;
  std::function<Status(Dvms&)> run;
};

/// The scripted trace: every op succeeds and appends exactly one log frame,
/// so op count k maps 1:1 to LSN k and a failover after op k must promote
/// to exactly the reference state after k ops.
std::vector<TraceOp> Workload() {
  std::vector<TraceOp> ops;
  auto push = [](InputEvent e) {
    return [e](Dvms& d) { return d.PushEvent(e); };
  };
  ops.push_back({"create", [](Dvms& d) {
                   return d.CreateBaseTable(
                       "Sales", Schema({{"productId", ValueType::kInt64},
                                        {"profit", ValueType::kDouble},
                                        {"revenue", ValueType::kDouble}}));
                 }});
  ops.push_back({"seed-rows", [](Dvms& d) {
                   return d.Insert(
                       "Sales",
                       {{Value::Int(1), Value::Double(15), Value::Double(20)},
                        {Value::Int(2), Value::Double(35), Value::Double(40)},
                        {Value::Int(3), Value::Double(55), Value::Double(65)},
                        {Value::Int(4), Value::Double(85), Value::Double(95)}});
                 }});
  ops.push_back({"program", [](Dvms& d) { return d.LoadProgram(kProgram); }});
  ops.push_back({"b1-down", push(InputEvent::MouseDown(0, 30, 30))});
  ops.push_back({"b1-move", push(InputEvent::MouseMove(1, 150, 150))});
  ops.push_back({"b1-up", push(InputEvent::MouseUp(2, 150, 150))});
  ops.push_back({"insert-5", [](Dvms& d) {
                   return d.Insert("Sales", {{Value::Int(5), Value::Double(50),
                                              Value::Double(50)}});
                 }});
  ops.push_back({"b2-down", push(InputEvent::MouseDown(3, 10, 10))});
  ops.push_back({"b2-move", push(InputEvent::MouseMove(4, 90, 90))});
  ops.push_back({"b2-up", push(InputEvent::MouseUp(5, 90, 90))});
  ops.push_back({"delete-2", [](Dvms& d) {
                   auto n = d.Delete("Sales",
                                     ParseExpression("productId = 2").value());
                   return n.ok() ? Status::OK() : n.status();
                 }});
  ops.push_back({"undo", [](Dvms& d) { return d.Undo(); }});
  ops.push_back({"redo", [](Dvms& d) { return d.Redo(); }});
  ops.push_back({"scale", [](Dvms& d) {
                   return d.CreateScale("sx", 0, 100, 0, 200);
                 }});
  ops.push_back({"insert-6", [](Dvms& d) {
                   return d.Insert("Sales", {{Value::Int(6), Value::Double(70),
                                              Value::Double(30)}});
                 }});
  // Left open: failover inside an in-flight interaction exercises
  // matcher-state replication and promotion.
  ops.push_back({"b3-down", push(InputEvent::MouseDown(6, 20, 20))});
  ops.push_back({"b3-move", push(InputEvent::MouseMove(7, 70, 70))});
  return ops;
}

Dvms::Options PrimaryOptions(const std::string& data_dir,
                             size_t snapshot_interval) {
  Dvms::Options options;
  options.canvas_width = 200;
  options.canvas_height = 200;
  options.num_threads = 1;
  options.data_dir = data_dir;
  options.wal_fsync = "always";
  options.snapshot_interval = snapshot_interval;
  return options;
}

Dvms::Options ReplicaOptions(const std::string& primary_dir) {
  Dvms::Options options;
  options.canvas_width = 200;
  options.canvas_height = 200;
  options.num_threads = 1;
  options.replica_of = primary_dir;
  options.replica_poll_ms = 1;
  return options;
}

std::string Fingerprint(const Dvms& engine) {
  std::ostringstream out;
  for (const std::string& name : engine.catalog().Names()) {
    auto table = engine.GetTable(name);
    if (!table.ok()) continue;
    out << "== " << name << " ==\n";
    const Table* t = table.value();
    for (size_t c = 0; c < t->schema().num_columns(); ++c) {
      out << t->schema().column(c).name << "|";
    }
    out << "\n";
    for (size_t r = 0; r < t->num_rows(); ++r) {
      for (const Value& v : t->row(r)) out << v.ToString() << "|";
      out << "\n";
    }
  }
  return out.str();
}

/// ref[k] = state after the first k ops of an uninterrupted, in-memory run.
struct RefState {
  std::string fingerprint;
  PixelBuffer pixels{1, 1};
};

const std::vector<RefState>& Reference() {
  static const std::vector<RefState>* ref = [] {
    auto* states = new std::vector<RefState>;
    Dvms engine(PrimaryOptions("", 0));
    states->push_back({Fingerprint(engine), engine.pixels()});
    for (const TraceOp& op : Workload()) {
      Status st = op.run(engine);
      EXPECT_TRUE(st.ok()) << op.label << ": " << st.message();
      states->push_back({Fingerprint(engine), engine.pixels()});
    }
    return states;
  }();
  return *ref;
}

/// Primary child body: run the first `max_ops` ops durably, then die with
/// no cleanup. `wal_byte_budget >= 0` arms the torn-write hook (_exit(42)
/// mid-frame once the budget is spent).
[[noreturn]] void PrimaryChildRun(const std::string& dir, size_t max_ops,
                                  int64_t wal_byte_budget,
                                  size_t snapshot_interval) {
  if (wal_byte_budget >= 0) {
    durability_testing::CrashAfterWalBytes(wal_byte_budget);
  }
  auto engine =
      std::make_unique<Dvms>(PrimaryOptions(dir, snapshot_interval));
  if (!engine->recovery_status().ok()) _exit(6);
  std::vector<TraceOp> ops = Workload();
  for (size_t i = 0; i < std::min(max_ops, ops.size()); ++i) {
    if (!ops[i].run(*engine).ok()) _exit(7);
  }
  _exit(0);
}

int RunPrimaryChild(const std::string& dir, size_t max_ops,
                    int64_t wal_byte_budget, size_t snapshot_interval) {
  fflush(nullptr);
  pid_t pid = fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) {
    PrimaryChildRun(dir, max_ops, wal_byte_budget, snapshot_interval);
  }
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status)) << "child crashed hard, status=" << status;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// Replica child body: attach to `dir`, tail until `target_lsn` is applied,
/// then die mid-flight — no Close, no Promote, destructors skipped.
[[noreturn]] void ReplicaChildRun(const std::string& dir,
                                  uint64_t target_lsn) {
  auto replica = std::make_unique<Dvms>(ReplicaOptions(dir));
  if (!replica->recovery_status().ok()) _exit(6);
  if (replica->WaitForReplicaLsn(target_lsn, 20000) < target_lsn) _exit(8);
  _exit(0);
}

/// Opens a replica of `dir`, waits for `lsn`, promotes, and checks the
/// result is bit-identical to the reference prefix at `lsn`.
std::unique_ptr<Dvms> AttachAndPromote(const std::string& dir, uint64_t lsn) {
  const std::vector<RefState>& ref = Reference();
  auto replica = std::make_unique<Dvms>(ReplicaOptions(dir));
  EXPECT_TRUE(replica->recovery_status().ok())
      << replica->recovery_status().message();
  EXPECT_GE(replica->WaitForReplicaLsn(lsn, 20000), lsn);
  Status promoted = replica->Promote();
  EXPECT_TRUE(promoted.ok()) << promoted.message();
  EXPECT_FALSE(replica->is_replica());
  EXPECT_EQ(replica->wal_lsn(), lsn);
  EXPECT_LT(lsn, ref.size()) << "promoted past the scripted trace";
  if (lsn < ref.size()) {
    EXPECT_EQ(Fingerprint(*replica), ref[lsn].fingerprint) << "lsn=" << lsn;
    EXPECT_TRUE(replica->pixels().Equals(ref[lsn].pixels)) << "lsn=" << lsn;
  }
  return replica;
}

/// Every file in `dir` with its size — "did anything touch this?" evidence.
std::map<std::string, uint64_t> DirManifest(const fs::path& dir) {
  std::map<std::string, uint64_t> manifest;
  for (const auto& e : fs::recursive_directory_iterator(dir)) {
    if (e.is_regular_file()) {
      manifest[e.path().string()] = fs::file_size(e.path());
    }
  }
  return manifest;
}

// ---------------------------------------------------------------------------

TEST(ReplicationCrashTest, PromotedReplicaMatchesReferenceAtEveryKillPoint) {
  // fsync=always: an acknowledged op is durable, so killing the primary
  // after op k and failing over must promote to exactly ref[k].
  const size_t n = Workload().size();
  for (size_t snapshot_interval : {size_t{0}, size_t{5}}) {
    for (size_t k = 0; k <= n; ++k) {
      SCOPED_TRACE("interval=" + std::to_string(snapshot_interval) +
                   " kill_after_op=" + std::to_string(k));
      TempDir dir("kill");
      ASSERT_EQ(RunPrimaryChild(dir.str(), k, -1, snapshot_interval), 0);
      AttachAndPromote(dir.str(), k);
    }
  }
}

TEST(ReplicationCrashTest, PromotionSealsTornPrimaryWrites) {
  // The primary dies mid-frame: a torn frame reaches disk. The tailer never
  // delivers it; promotion seals the log at the clean committed prefix and
  // the promoted engine matches that prefix bit-identically.
  Rng rng(20260808);
  const size_t n = Workload().size();
  size_t torn = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const size_t snapshot_interval = (trial % 3 == 0) ? 5 : 0;
    const int64_t budget = rng.UniformInt(1, 2600);
    SCOPED_TRACE("trial=" + std::to_string(trial) +
                 " budget=" + std::to_string(budget) +
                 " interval=" + std::to_string(snapshot_interval));
    TempDir dir("torn");
    int code = RunPrimaryChild(dir.str(), n, budget, snapshot_interval);
    ASSERT_TRUE(code == 42 || code == 0) << "exit code " << code;
    torn += (code == 42);

    // The replica converges on the clean prefix; the torn tail only stalls
    // it (torn_tail_retries), never errors it. A throwaway read-only scan
    // tells us how long that prefix is, i.e. what to wait for.
    RecoveredLog log = ReadLogReadOnly(dir.str()).value();
    uint64_t sealed = log.has_snapshot ? log.snapshot_lsn : 0;
    if (!log.frames.empty()) sealed = log.frames.back().lsn;
    std::unique_ptr<Dvms> promoted = AttachAndPromote(dir.str(), sealed);
    if (code == 0) EXPECT_EQ(sealed, n);  // budget never hit: full trace
    // Promotion repaired the tail as the new owner: a fresh engine over the
    // directory recovers the same LSN with no further truncation.
    promoted.reset();
    Dvms reopened(PrimaryOptions(dir.str(), snapshot_interval));
    ASSERT_TRUE(reopened.recovery_status().ok());
    EXPECT_EQ(reopened.durability_stats().recovered_lsn, sealed);
  }
  EXPECT_GT(torn, 0u) << "no trial actually tore a write — widen budgets";
}

TEST(ReplicationCrashTest, PromotedEngineContinuesTheTraceDurably) {
  // Failover mid-trace, then the promoted engine runs the remaining ops:
  // the final state must equal the uninterrupted reference, and a fresh
  // primary over the directory must recover it — the promoted log is one
  // continuous history, not a fork.
  const std::vector<RefState>& ref = Reference();
  const std::vector<TraceOp> ops = Workload();
  const size_t n = ops.size();
  for (size_t k : {size_t{3}, size_t{7}, size_t{12}}) {
    SCOPED_TRACE("failover_after_op=" + std::to_string(k));
    TempDir dir("contin");
    ASSERT_EQ(RunPrimaryChild(dir.str(), k, -1, 0), 0);
    std::unique_ptr<Dvms> promoted = AttachAndPromote(dir.str(), k);
    for (size_t i = k; i < n; ++i) {
      Status st = ops[i].run(*promoted);
      ASSERT_TRUE(st.ok()) << ops[i].label << ": " << st.message();
    }
    EXPECT_EQ(Fingerprint(*promoted), ref[n].fingerprint);
    EXPECT_TRUE(promoted->pixels().Equals(ref[n].pixels));
    promoted.reset();

    Dvms reopened(PrimaryOptions(dir.str(), 0));
    ASSERT_TRUE(reopened.recovery_status().ok())
        << reopened.recovery_status().message();
    EXPECT_EQ(reopened.durability_stats().recovered_lsn, n);
    EXPECT_EQ(Fingerprint(reopened), ref[n].fingerprint);
    EXPECT_TRUE(reopened.pixels().Equals(ref[n].pixels));
  }
}

TEST(ReplicationCrashTest, KilledReplicaLeavesPrimaryDirectoryUntouched) {
  // A replica dying mid-tail (no shutdown, no destructors) must be
  // invisible to the primary's directory: tailing is strictly read-only.
  const size_t n = Workload().size();
  TempDir dir("rokill");
  ASSERT_EQ(RunPrimaryChild(dir.str(), n, -1, 5), 0);
  const std::map<std::string, uint64_t> before = DirManifest(dir.path());

  fflush(nullptr);
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) ReplicaChildRun(dir.str(), n);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);

  EXPECT_EQ(DirManifest(dir.path()), before)
      << "a read-only replica modified the primary's files";
  // And the directory is still a perfectly promotable history.
  AttachAndPromote(dir.str(), n);
}

}  // namespace
}  // namespace dvms
