#include "core/dvms.h"
#include "query/optimizer.h"
#include "workload/tpch.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Dvms::Options options;
    options.auto_render = false;
    engine_ = std::make_unique<Dvms>(options);
    TpchConfig config;
    config.num_rows = 3000;
    Table fact = GenerateTpchSales(config);
    ASSERT_TRUE(engine_->CreateBaseTable("Sales", fact.schema()).ok());
    ASSERT_TRUE(engine_->Insert("Sales", fact.rows()).ok());
    ASSERT_TRUE(engine_
                    ->CreateBaseTable("selected_years",
                                      Schema({{"year", ValueType::kInt64}}))
                    .ok());
  }

  void SelectYears(std::vector<int64_t> years) {
    auto table = engine_->catalog()->Get("selected_years").value();
    table->mutable_current().Clear();
    for (int64_t y : years) {
      ASSERT_TRUE(table->Append({Value::Int(y)}).ok());
    }
    ASSERT_TRUE(engine_->maintainer()->OnChanged({"selected_years"}).ok());
  }

  /// Reference result computed with the optimizer bypassed (ad-hoc query).
  Table Reference(const std::string& sql) { return engine_->Query(sql).value(); }

  std::unique_ptr<Dvms> engine_;
};

TEST_F(OptimizerTest, AdoptsCrossfilterShapedViews) {
  ASSERT_TRUE(engine_
                  ->LoadProgram(
                      "by_region = SELECT region, SUM(revenue) AS revenue "
                      "FROM Sales WHERE year IN selected_years GROUP BY region;"
                      "totals = SELECT region, SUM(revenue) AS revenue "
                      "FROM Sales GROUP BY region;")
                  .ok());
  EXPECT_TRUE(engine_->optimizer().IsAdopted("by_region"));
  EXPECT_TRUE(engine_->optimizer().IsAdopted("totals"));
}

TEST_F(OptimizerTest, DoesNotAdoptOtherShapes) {
  ASSERT_TRUE(engine_
                  ->LoadProgram(
                      // Two aggregates.
                      "v1 = SELECT region, SUM(revenue) AS r, COUNT(*) AS n "
                      "FROM Sales GROUP BY region;"
                      // NOT IN filter.
                      "v2 = SELECT region, SUM(revenue) AS r FROM Sales "
                      "WHERE year NOT IN selected_years GROUP BY region;"
                      // Non-sum aggregate.
                      "v3 = SELECT region, MAX(revenue) AS r FROM Sales "
                      "GROUP BY region;"
                      // Plain projection.
                      "v4 = SELECT region FROM Sales;")
                  .ok());
  EXPECT_FALSE(engine_->optimizer().IsAdopted("v1"));
  EXPECT_FALSE(engine_->optimizer().IsAdopted("v2"));
  EXPECT_FALSE(engine_->optimizer().IsAdopted("v3"));
  EXPECT_FALSE(engine_->optimizer().IsAdopted("v4"));
}

TEST_F(OptimizerTest, AdoptedViewMatchesScanBasedResult) {
  ASSERT_TRUE(engine_
                  ->LoadProgram(
                      "by_region = SELECT region, SUM(revenue) AS revenue "
                      "FROM Sales WHERE year IN selected_years GROUP BY region;")
                  .ok());
  SelectYears({1997, 1998});
  ASSERT_GT(engine_->optimizer().hits(), 0u);

  const Table* optimized = engine_->GetTable("by_region").value();
  Table reference = Reference(
      "SELECT region, SUM(revenue) AS revenue FROM Sales "
      "WHERE year IN selected_years GROUP BY region");
  ASSERT_EQ(optimized->num_rows(), reference.num_rows());
  for (size_t i = 0; i < reference.num_rows(); ++i) {
    EXPECT_TRUE(optimized->row(i)[0].Equals(reference.row(i)[0]));
    EXPECT_NEAR(optimized->row(i)[1].double_value(),
                reference.row(i)[1].double_value(),
                1e-6 * std::abs(reference.row(i)[1].double_value()) + 1e-9);
  }
}

TEST_F(OptimizerTest, TotalsViewMatchesScanBasedResult) {
  ASSERT_TRUE(engine_
                  ->LoadProgram(
                      "totals = SELECT month, SUM(revenue) AS revenue "
                      "FROM Sales GROUP BY month;")
                  .ok());
  const Table* optimized = engine_->GetTable("totals").value();
  Table reference = Reference(
      "SELECT month, SUM(revenue) AS revenue FROM Sales GROUP BY month");
  ASSERT_EQ(optimized->num_rows(), 12u);
  for (size_t i = 0; i < reference.num_rows(); ++i) {
    EXPECT_NEAR(optimized->row(i)[1].double_value(),
                reference.row(i)[1].double_value(),
                1e-6 * std::abs(reference.row(i)[1].double_value()));
  }
}

TEST_F(OptimizerTest, FactChangeInvalidatesCube) {
  ASSERT_TRUE(engine_
                  ->LoadProgram(
                      "by_region = SELECT region, SUM(revenue) AS revenue "
                      "FROM Sales WHERE year IN selected_years GROUP BY region;")
                  .ok());
  SelectYears({1997});
  size_t builds_before = engine_->optimizer().cube_builds();

  // Selection changes reuse the cube.
  SelectYears({1998});
  EXPECT_EQ(engine_->optimizer().cube_builds(), builds_before);

  // A fact insert invalidates it; the next refresh rebuilds and reflects
  // the new row.
  ASSERT_TRUE(engine_
                  ->Insert("Sales", {{Value::Int(999999),
                                      Value::String("ASIA"), Value::Int(1998),
                                      Value::Int(6), Value::Int(3),
                                      Value::Double(1),
                                      Value::Double(12345.0)}})
                  .ok());
  EXPECT_GT(engine_->optimizer().cube_builds(), builds_before);
  const Table* optimized = engine_->GetTable("by_region").value();
  Table reference = Reference(
      "SELECT region, SUM(revenue) AS revenue FROM Sales "
      "WHERE year IN selected_years GROUP BY region");
  ASSERT_EQ(optimized->num_rows(), reference.num_rows());
  for (size_t i = 0; i < reference.num_rows(); ++i) {
    EXPECT_NEAR(optimized->row(i)[1].double_value(),
                reference.row(i)[1].double_value(),
                1e-6 * std::abs(reference.row(i)[1].double_value()));
  }
}

TEST_F(OptimizerTest, CubesSharedAcrossViews) {
  ASSERT_TRUE(engine_
                  ->LoadProgram(
                      "filtered = SELECT region, SUM(revenue) AS revenue "
                      "FROM Sales WHERE year IN selected_years GROUP BY region;"
                      "totals = SELECT region, SUM(revenue) AS revenue "
                      "FROM Sales GROUP BY region;")
                  .ok());
  SelectYears({1995});
  // Both views refresh from the same (Sales, revenue, region, year)
  // marginal... totals uses (region, <other>) which may differ; at most 2.
  EXPECT_LE(engine_->optimizer().cube_count(), 2u);
}

TEST_F(OptimizerTest, DisabledWhenLineageCaptureOn) {
  Dvms::Options options;
  options.auto_render = false;
  options.capture_lineage = true;
  Dvms engine(options);
  TpchConfig config;
  config.num_rows = 100;
  Table fact = GenerateTpchSales(config);
  ASSERT_TRUE(engine.CreateBaseTable("Sales", fact.schema()).ok());
  ASSERT_TRUE(engine.Insert("Sales", fact.rows()).ok());
  ASSERT_TRUE(engine
                  .LoadProgram(
                      "totals = SELECT region, SUM(revenue) AS revenue "
                      "FROM Sales GROUP BY region;")
                  .ok());
  // The view computes through the executor, so lineage is available.
  EXPECT_TRUE(engine.maintainer()->LastResult("totals").ok());
  EXPECT_EQ(engine.optimizer().hits(), 0u);
}

TEST_F(OptimizerTest, RedefinitionUnadopts) {
  ASSERT_TRUE(engine_
                  ->LoadProgram(
                      "v = SELECT region, SUM(revenue) AS revenue "
                      "FROM Sales GROUP BY region;")
                  .ok());
  EXPECT_TRUE(engine_->optimizer().IsAdopted("v"));
  // Redefine to a non-matching shape (same schema, different plan).
  ASSERT_TRUE(engine_
                  ->LoadProgram(
                      "v = SELECT region, MIN(revenue) AS revenue "
                      "FROM Sales GROUP BY region;")
                  .ok());
  EXPECT_FALSE(engine_->optimizer().IsAdopted("v"));
  // And the contents follow the new definition.
  Table reference = Reference(
      "SELECT region, MIN(revenue) AS revenue FROM Sales GROUP BY region");
  EXPECT_TRUE(engine_->GetTable("v").value()->SameContents(reference));
}

}  // namespace
}  // namespace dvms
