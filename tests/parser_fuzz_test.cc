// Fuzz-lite robustness: the parser must reject (not crash or hang on)
// arbitrary token soup and random mutations of valid programs. Valid seed
// programs live in tests/corpus/*.devil and are replayed deterministically.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "parser/parser.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

// Corpus files in sorted order, so every run sees the same sequence.
std::vector<std::filesystem::path> CorpusFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(DVMS_TEST_CORPUS_DIR)) {
    if (entry.path().extension() == ".devil") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(ParserCorpusTest, EverySeedProgramParses) {
  std::vector<std::filesystem::path> files = CorpusFiles();
  ASSERT_GE(files.size(), 6u) << "corpus missing from " << DVMS_TEST_CORPUS_DIR;
  for (const auto& path : files) {
    SCOPED_TRACE(path.filename().string());
    auto result = ParseProgram(ReadFile(path));
    EXPECT_TRUE(result.ok()) << result.status().message();
    if (result.ok()) EXPECT_FALSE(result.value().statements.empty());
  }
}

// Deterministic mutation replay over the corpus: the seed fixes both the
// file order and every edit, so a crash reproduces from the test name.
class CorpusMutationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CorpusMutationTest, MutatedSeedProgramsNeverCrash) {
  Rng rng(GetParam());
  for (const auto& path : CorpusFiles()) {
    SCOPED_TRACE(path.filename().string());
    const std::string valid = ReadFile(path);
    for (int trial = 0; trial < 20; ++trial) {
      std::string mutated = valid;
      size_t edits = static_cast<size_t>(rng.UniformInt(1, 8));
      for (size_t e = 0; e < edits && !mutated.empty(); ++e) {
        size_t pos = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
        switch (rng.UniformInt(0, 3)) {
          case 0:
            mutated.erase(pos, 1);
            break;
          case 1:
            mutated.insert(pos, 1,
                           static_cast<char>(rng.UniformInt(32, 126)));
            break;
          case 2:
            // Token-level chaos: duplicate a random slice elsewhere.
            mutated.insert(pos, mutated.substr(
                                    static_cast<size_t>(rng.UniformInt(
                                        0, (int64_t)mutated.size() - 1)),
                                    static_cast<size_t>(rng.UniformInt(1, 12))));
            break;
          default:
            mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
            break;
        }
      }
      (void)ParseProgram(mutated);  // any Status is fine; no crash, no hang
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorpusMutationTest,
                         ::testing::Values(1001, 2002, 3003));

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, TokenSoupNeverCrashes) {
  Rng rng(GetParam());
  const char* vocabulary[] = {
      "SELECT", "FROM",  "WHERE",  "GROUP",  "BY",    "ORDER",  "LIMIT",
      "UNION",  "MINUS", "EVENT",  "RETURN", "TRACE", "TO",     "AS",
      "IN",     "NOT",   "AND",    "OR",     "t",     "x",      "Sales",
      "C",      "(",     ")",      ",",      ";",     "=",      "*",
      "@",      "vnow",  "-",      "1",      "3.5",   "'str'",  "render",
      "FORALL", "<",     ">",      "+",      "/",     "{",      "}",
      ".",      "<>",    "<=",     "DELETE", "INSERT", "VALUES", "CREATE",
  };
  for (int trial = 0; trial < 60; ++trial) {
    std::string source;
    size_t len = static_cast<size_t>(rng.UniformInt(1, 60));
    for (size_t i = 0; i < len; ++i) {
      source += vocabulary[rng.UniformInt(
          0, static_cast<int64_t>(std::size(vocabulary)) - 1)];
      source += " ";
    }
    // Must terminate and either parse or report a clean error.
    auto result = ParseProgram(source);
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST_P(ParserFuzzTest, MutatedValidProgramsNeverCrash) {
  Rng rng(GetParam() ^ 0xabcdef);
  const std::string valid =
      "C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U "
      "WHERE FORALL m IN M m.y > 5 "
      "RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy), "
      "(M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy); "
      "V = SELECT SP.productId FROM C, SPLOT_POINTS@vnow-1 AS SP "
      "WHERE in_rectangle(SP.x, SP.y, C.x, C.y, C.dx, C.dy);";
  for (int trial = 0; trial < 80; ++trial) {
    std::string mutated = valid;
    size_t edits = static_cast<size_t>(rng.UniformInt(1, 6));
    for (size_t e = 0; e < edits; ++e) {
      size_t pos =
          static_cast<size_t>(rng.UniformInt(0, (int64_t)mutated.size() - 1));
      switch (rng.UniformInt(0, 2)) {
        case 0:
          mutated.erase(pos, 1);
          break;
        case 1:
          mutated.insert(pos, 1,
                         static_cast<char>(rng.UniformInt(32, 126)));
          break;
        default:
          mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
          break;
      }
    }
    (void)ParseProgram(mutated);  // any Status is fine; no crash, no hang
  }
}

TEST_P(ParserFuzzTest, RandomBytesNeverCrashLexer) {
  Rng rng(GetParam() + 17);
  for (int trial = 0; trial < 40; ++trial) {
    std::string garbage;
    size_t len = static_cast<size_t>(rng.UniformInt(0, 200));
    for (size_t i = 0; i < len; ++i) {
      garbage += static_cast<char>(rng.UniformInt(1, 255));
    }
    (void)ParseProgram(garbage);
    (void)ParseSelect(garbage);
    (void)ParseExpression(garbage);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace dvms
