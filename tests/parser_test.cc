#include "parser/lexer.h"
#include "parser/parser.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

TEST(LexerTest, TokenizesPunctuationAndNumbers) {
  auto tokens = Tokenize("SELECT a.b, 12, 3.5 FROM t WHERE x <= 4;").value();
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_EQ(tokens[0].type, TokenType::kIdent);
  EXPECT_TRUE(tokens[0].IsKeyword("select"));
  EXPECT_EQ(tokens.back().type, TokenType::kEof);
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto tokens = Tokenize("'gray' 'it''s'").value();
  EXPECT_EQ(tokens[0].text, "gray");
  EXPECT_EQ(tokens[1].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, CommentsAreSkipped) {
  auto tokens = Tokenize("a -- comment\n b").value();
  ASSERT_EQ(tokens.size(), 3u);  // a, b, EOF
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(LexerTest, OperatorsAndVersionSuffix) {
  auto tokens = Tokenize("x <> y @vnow-1 @{tnow-2}").value();
  EXPECT_EQ(tokens[1].type, TokenType::kNe);
  EXPECT_EQ(tokens[3].type, TokenType::kAt);
  EXPECT_EQ(tokens[4].text, "vnow");
}

TEST(LexerTest, LineAndColumnTracked) {
  auto tokens = Tokenize("a\n  b").value();
  EXPECT_EQ(tokens[0].line, 1u);
  EXPECT_EQ(tokens[1].line, 2u);
  EXPECT_EQ(tokens[1].column, 3u);
}

TEST(ExpressionParserTest, Precedence) {
  auto e = ParseExpression("1 + 2 * 3").value();
  EXPECT_EQ(e->ToString(), "(1 + (2 * 3))");
  e = ParseExpression("(1 + 2) * 3").value();
  EXPECT_EQ(e->ToString(), "((1 + 2) * 3)");
  e = ParseExpression("a OR b AND c").value();
  EXPECT_EQ(e->ToString(), "(a OR (b AND c))");
  e = ParseExpression("NOT a = b").value();
  EXPECT_EQ(e->kind, ExprKind::kUnary);
}

TEST(ExpressionParserTest, ComparisonAndIn) {
  auto e = ParseExpression("productId NOT IN selected").value();
  EXPECT_EQ(e->kind, ExprKind::kInRelation);
  EXPECT_TRUE(e->negated);
  EXPECT_EQ(e->in_relation, "selected");
  e = ParseExpression("x IN sel").value();
  EXPECT_FALSE(e->negated);
}

TEST(ExpressionParserTest, FunctionCallsAndQualifiedRefs) {
  auto e = ParseExpression("linear_scale(Sales.revenue, 0, 1, 0, 100)").value();
  EXPECT_EQ(e->kind, ExprKind::kFunctionCall);
  EXPECT_EQ(e->children.size(), 5u);
  EXPECT_EQ(e->children[0]->qualifier, "Sales");
  EXPECT_EQ(e->children[0]->column, "revenue");
}

TEST(ExpressionParserTest, AggregatesAndCountStar) {
  auto e = ParseExpression("SUM(revenue)").value();
  EXPECT_EQ(e->kind, ExprKind::kAggregateCall);
  EXPECT_EQ(e->agg_func, AggFunc::kSum);
  e = ParseExpression("COUNT(*)").value();
  EXPECT_TRUE(e->count_star);
}

TEST(ExpressionParserTest, UnaryMinusAndLiterals) {
  auto e = ParseExpression("-x + 3.5").value();
  EXPECT_EQ(e->kind, ExprKind::kBinary);
  auto lit = ParseExpression("'red'").value();
  EXPECT_EQ(lit->literal.string_value(), "red");
  EXPECT_TRUE(ParseExpression("NULL").value()->literal.is_null());
  EXPECT_TRUE(ParseExpression("TRUE").value()->literal.bool_value());
}

TEST(ExpressionParserTest, TrailingGarbageFails) {
  EXPECT_FALSE(ParseExpression("1 + 2 extra junk here ,, (").ok());
}

TEST(SelectParserTest, BasicSelect) {
  auto stmt = ParseSelect("SELECT a, b AS bee FROM t WHERE a > 1").value();
  ASSERT_EQ(stmt.cores.size(), 1u);
  const SelectCore& core = stmt.cores[0];
  EXPECT_EQ(core.items.size(), 2u);
  EXPECT_EQ(core.items[1].alias, "bee");
  EXPECT_EQ(core.from[0].name, "t");
  EXPECT_NE(core.where, nullptr);
}

TEST(SelectParserTest, MultipleFromWithAliases) {
  auto stmt =
      ParseSelect("SELECT SP.x FROM C, SPLOT_POINTS@vnow-1 AS SP").value();
  const SelectCore& core = stmt.cores[0];
  ASSERT_EQ(core.from.size(), 2u);
  EXPECT_EQ(core.from[0].name, "C");
  EXPECT_EQ(core.from[1].name, "SPLOT_POINTS");
  EXPECT_EQ(core.from[1].alias, "SP");
  EXPECT_EQ(core.from[1].version.kind, VersionRef::Kind::kVnow);
  EXPECT_EQ(core.from[1].version.offset, 1u);
}

TEST(SelectParserTest, BracedVersionSuffix) {
  auto stmt = ParseSelect("SELECT x FROM T@{vnow-3}").value();
  EXPECT_EQ(stmt.cores[0].from[0].version.offset, 3u);
}

TEST(SelectParserTest, GroupByOrderByLimit) {
  auto stmt = ParseSelect(
                  "SELECT region, SUM(revenue) AS total FROM Sales "
                  "GROUP BY region ORDER BY total DESC LIMIT 5")
                  .value();
  const SelectCore& core = stmt.cores[0];
  EXPECT_EQ(core.group_by.size(), 1u);
  EXPECT_EQ(core.order_by.size(), 1u);
  EXPECT_TRUE(core.order_by[0].descending);
  EXPECT_EQ(core.limit.value(), 5u);
}

TEST(SelectParserTest, UnionAndMinus) {
  auto stmt = ParseSelect(
                  "SELECT x FROM a UNION SELECT x FROM b "
                  "MINUS SELECT x FROM c")
                  .value();
  EXPECT_EQ(stmt.cores.size(), 3u);
  EXPECT_EQ(stmt.ops[0], SetOp::kUnion);
  EXPECT_EQ(stmt.ops[1], SetOp::kMinus);
}

TEST(SelectParserTest, StarVariants) {
  auto stmt = ParseSelect("SELECT * FROM t").value();
  EXPECT_TRUE(stmt.cores[0].items[0].star);
  stmt = ParseSelect("SELECT t.* , x FROM t").value();
  EXPECT_TRUE(stmt.cores[0].items[0].star);
  EXPECT_EQ(stmt.cores[0].items[0].star_qualifier, "t");
}

TEST(ProgramParserTest, ViewDefinition) {
  auto program = ParseProgram(
                     "SPLOT_POINTS = SELECT 8 AS radius, 'gray' AS stroke "
                     "FROM Sales, scale_x;")
                     .value();
  ASSERT_EQ(program.statements.size(), 1u);
  const Statement& s = program.statements[0];
  EXPECT_EQ(s.kind, Statement::Kind::kViewDef);
  EXPECT_EQ(s.target_name, "SPLOT_POINTS");
  EXPECT_FALSE(s.render);
}

TEST(ProgramParserTest, RenderWrapsSelect) {
  auto program =
      ParseProgram("P = render(SELECT * FROM SPLOT_POINTS);").value();
  const Statement& s = program.statements[0];
  EXPECT_TRUE(s.render);
  EXPECT_TRUE(s.select.cores[0].items[0].star);
}

TEST(ProgramParserTest, EventStatementFromPaper) {
  // DeVIL 2, verbatim from the paper.
  const char* source =
      "C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U "
      "WHERE FORALL m IN M m.y > 5 "
      "RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy), "
      "(M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);";
  auto program = ParseProgram(source).value();
  const Statement& s = program.statements[0];
  EXPECT_EQ(s.kind, Statement::Kind::kEventDef);
  ASSERT_EQ(s.event.elems.size(), 3u);
  EXPECT_EQ(s.event.elems[0].event_type, "MOUSE_DOWN");
  EXPECT_EQ(s.event.elems[0].alias, "D");
  EXPECT_FALSE(s.event.elems[0].kleene);
  EXPECT_TRUE(s.event.elems[1].kleene);
  EXPECT_EQ(s.event.elems[1].alias, "M");
  ASSERT_EQ(s.event.predicates.size(), 1u);
  EXPECT_EQ(s.event.predicates[0].kind, EventPredicate::Kind::kForall);
  EXPECT_EQ(s.event.predicates[0].var, "m");
  EXPECT_EQ(s.event.predicates[0].over_alias, "M");
  ASSERT_EQ(s.event.returns.size(), 2u);
  EXPECT_EQ(s.event.returns[0].fields.size(), 5u);
  EXPECT_EQ(s.event.returns[0].fields[3].alias, "dx");
}

TEST(ProgramParserTest, KleeneStarOnAlias) {
  auto program =
      ParseProgram("C = EVENT MOUSE_MOVE AS M*, MOUSE_UP AS U RETURN (M.t);")
          .value();
  EXPECT_TRUE(program.statements[0].event.elems[0].kleene);
  EXPECT_FALSE(program.statements[0].event.elems[1].kleene);
}

TEST(ProgramParserTest, BackwardTrace) {
  const char* source =
      "B = BACKWARD TRACE FROM SPLOT_POINTS@vnow-1 AS SP, C "
      "WHERE in_rectangle(SP.center_x, SP.center_y, C.x0, C.y0, C.x1, C.y1) "
      "TO Sales;";
  auto program = ParseProgram(source).value();
  const Statement& s = program.statements[0];
  EXPECT_EQ(s.kind, Statement::Kind::kTraceDef);
  EXPECT_TRUE(s.trace.backward);
  ASSERT_EQ(s.trace.from.size(), 2u);
  EXPECT_EQ(s.trace.from[0].alias, "SP");
  EXPECT_EQ(s.trace.target_relation, "Sales");
  EXPECT_NE(s.trace.where, nullptr);
}

TEST(ProgramParserTest, ForwardTrace) {
  auto program =
      ParseProgram("F = FORWARD TRACE FROM B TO HIST;").value();
  EXPECT_FALSE(program.statements[0].trace.backward);
}

TEST(ProgramParserTest, CreateTableAndInsert) {
  const char* source =
      "CREATE TABLE Sales (productId INT, price DOUBLE, name TEXT);"
      "INSERT INTO Sales VALUES (1, 9.5, 'ace'), (2, 3.0, 'bow');";
  auto program = ParseProgram(source).value();
  ASSERT_EQ(program.statements.size(), 2u);
  const Statement& create = program.statements[0];
  EXPECT_EQ(create.kind, Statement::Kind::kCreateTable);
  EXPECT_EQ(create.create_schema.num_columns(), 3u);
  EXPECT_EQ(create.create_schema.column(1).type, ValueType::kDouble);
  const Statement& insert = program.statements[1];
  EXPECT_EQ(insert.kind, Statement::Kind::kInsert);
  ASSERT_EQ(insert.insert_rows.size(), 2u);
  EXPECT_EQ(insert.insert_rows[1][2].string_value(), "bow");
}

TEST(ProgramParserTest, MultiStatementProgram) {
  const char* source =
      "selected = SELECT SP.productId FROM C, SPLOT_POINTS@vnow-1 AS SP;"
      "SPLOT_POINTS = SELECT productId, 'gray' AS fill FROM Sales "
      "WHERE productId NOT IN selected "
      "UNION SELECT productId, 'red' AS fill FROM Sales "
      "WHERE productId IN selected;";
  auto program = ParseProgram(source).value();
  ASSERT_EQ(program.statements.size(), 2u);
  EXPECT_EQ(program.statements[1].select.cores.size(), 2u);
}

TEST(ProgramParserTest, SyntaxErrorsCarryLocation) {
  auto r = ParseProgram("V = SELECT FROM;");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line"), std::string::npos);
}

TEST(ProgramParserTest, MissingSemicolonFails) {
  EXPECT_FALSE(ParseProgram("A = SELECT x FROM t B = SELECT y FROM u;").ok());
}

}  // namespace
}  // namespace dvms
