#include "core/dvms.h"
#include "expr/udf_registry.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

TEST(UdfRegistryTest, DuplicateRegistrationFails) {
  UdfRegistry reg = UdfRegistry::WithBuiltins();
  ScalarUdf dup;
  dup.name = "ABS";  // collides case-insensitively with builtin abs
  dup.fn = [](const std::vector<Value>&) -> Result<Value> {
    return Value::Null();
  };
  EXPECT_FALSE(reg.RegisterScalar(std::move(dup)).ok());

  TableUdf tdup;
  tdup.name = "LAYOUT_STACK";
  EXPECT_FALSE(reg.RegisterTable(std::move(tdup)).ok());
}

TEST(UdfRegistryTest, LookupIsCaseInsensitive) {
  UdfRegistry reg = UdfRegistry::WithBuiltins();
  EXPECT_TRUE(reg.HasScalar("Linear_Scale"));
  EXPECT_TRUE(reg.FindScalar("IN_RECTANGLE").ok());
  EXPECT_TRUE(reg.HasTable("Layout_Index"));
  EXPECT_FALSE(reg.HasScalar("no_such_fn"));
  EXPECT_FALSE(reg.FindTable("no_such_fn").ok());
}

TEST(UdfRegistryTest, UserScalarUdfUsableFromDevil) {
  // Application developers can extend the engine with domain UDFs and use
  // them in view definitions immediately.
  Dvms::Options options;
  options.auto_render = false;
  Dvms engine(options);
  ScalarUdf doubler;
  doubler.name = "twice";
  doubler.arity = 1;
  doubler.pure = true;
  doubler.return_type = ValueType::kDouble;
  doubler.fn = [](const std::vector<Value>& args) -> Result<Value> {
    DVMS_ASSIGN_OR_RETURN(double x, args[0].AsDouble());
    return Value::Double(2 * x);
  };
  ASSERT_TRUE(engine.udfs()->RegisterScalar(std::move(doubler)).ok());

  ASSERT_TRUE(
      engine.CreateBaseTable("T", Schema({{"x", ValueType::kDouble}})).ok());
  ASSERT_TRUE(engine.Insert("T", {{Value::Double(21)}}).ok());
  ASSERT_TRUE(engine.LoadProgram("V = SELECT twice(x) AS y FROM T;").ok());
  EXPECT_DOUBLE_EQ(
      engine.GetTable("V").value()->row(0)[0].double_value(), 42.0);
}

TEST(UdfRegistryTest, ImpureScalarUdfRejectedInViews) {
  // DeVIL restricts scalar UDFs in views to pure functions; the binder
  // enforces it.
  Dvms::Options options;
  options.auto_render = false;
  Dvms engine(options);
  ScalarUdf impure;
  impure.name = "now_ms";
  impure.arity = 0;
  impure.pure = false;
  impure.fn = [](const std::vector<Value>&) -> Result<Value> {
    return Value::Int(0);
  };
  ASSERT_TRUE(engine.udfs()->RegisterScalar(std::move(impure)).ok());
  ASSERT_TRUE(
      engine.CreateBaseTable("T", Schema({{"x", ValueType::kDouble}})).ok());
  Status st = engine.LoadProgram("V = SELECT now_ms() AS t FROM T;");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("pure"), std::string::npos);
}

TEST(UdfRegistryTest, UserTableUdfUsableFromDevil) {
  Dvms::Options options;
  options.auto_render = false;
  Dvms engine(options);
  TableUdf reverse;
  reverse.name = "reversed";
  reverse.pure = true;
  reverse.schema_fn = [](const Schema& in) -> Result<Schema> { return in; };
  reverse.fn = [](const Table& in,
                  const std::vector<Value>&) -> Result<Table> {
    Table out(in.schema());
    for (size_t i = in.num_rows(); i > 0; --i) {
      out.AppendUnchecked(in.row(i - 1));
    }
    return out;
  };
  ASSERT_TRUE(engine.udfs()->RegisterTable(std::move(reverse)).ok());
  ASSERT_TRUE(
      engine.CreateBaseTable("T", Schema({{"x", ValueType::kInt64}})).ok());
  ASSERT_TRUE(
      engine.Insert("T", {{Value::Int(1)}, {Value::Int(2)}, {Value::Int(3)}})
          .ok());
  ASSERT_TRUE(
      engine.LoadProgram("V = reversed(SELECT x FROM T ORDER BY x);").ok());
  const Table* v = engine.GetTable("V").value();
  ASSERT_EQ(v->num_rows(), 3u);
  EXPECT_EQ(v->row(0)[0].int_value(), 3);
  EXPECT_EQ(v->row(2)[0].int_value(), 1);
}

}  // namespace
}  // namespace dvms
