// Linearizability / differential stress harness for concurrent
// snapshot-isolated reads (Plankton discipline: the same randomized
// schedule runs twice — once with N reader sessions racing one writer on
// the unlocked engine, once fully serialized on a fresh engine under the
// recorded commit order — and every concurrent read must be bit-identical
// to some prefix-consistent serial state). The epoch tag each session
// records per read (Session::last_read_epoch) is the explicit witness:
// serial replay maps every published epoch to the one table state readers
// were allowed to observe at it.
//
// Runs at 1/2/4/8 reader threads; the TSan ci leg re-runs this suite with
// -DDVMS_SANITIZE=thread to catch data races the assertions cannot.

#include <atomic>
#include <cstdint>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/dvms.h"
#include "core/session.h"
#include "parser/parser.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

constexpr const char* kReadQuery = "SELECT id, v FROM T ORDER BY id, v";

std::string Fingerprint(const Table& table) {
  std::ostringstream out;
  for (const Row& row : table.rows()) {
    for (const Value& v : row) out << v.ToString() << '|';
    out << '\n';
  }
  return out.str();
}

/// One writer operation, fully determined by its payload so the live run
/// and the serial replay apply bit-identical mutations.
struct Op {
  bool insert = true;
  int64_t a = 0;  // insert: first id; delete: band start
  int64_t b = 0;  // insert: row count; delete: band width
};

std::vector<Op> MakeSchedule(uint32_t seed, int num_ops) {
  std::mt19937 rng(seed);
  std::vector<Op> ops;
  int64_t next_id = 0;
  for (int i = 0; i < num_ops; ++i) {
    Op op;
    op.insert = rng() % 4 != 3;  // ~3:1 insert:delete
    if (op.insert) {
      op.a = next_id;
      op.b = 1 + static_cast<int64_t>(rng() % 5);
      next_id += op.b;
    } else {
      op.a = static_cast<int64_t>(rng() % (next_id > 0 ? next_id : 1));
      op.b = 1 + static_cast<int64_t>(rng() % 23);
    }
    ops.push_back(op);
  }
  return ops;
}

Status ApplyOp(Dvms& engine, const Op& op) {
  if (op.insert) {
    std::vector<Row> rows;
    for (int64_t j = 0; j < op.b; ++j) {
      int64_t id = op.a + j;
      rows.push_back({Value::Int(id), Value::Double((id * 37) % 101)});
    }
    return engine.Insert("T", std::move(rows));
  }
  auto pred = ParseExpression("id >= " + std::to_string(op.a) +
                              " AND id < " + std::to_string(op.a + op.b));
  if (!pred.ok()) return pred.status();
  return engine.Delete("T", pred.value()).status();
}

std::unique_ptr<Dvms> MakeEngine() {
  Dvms::Options options;
  options.canvas_width = 100;
  options.canvas_height = 100;
  options.auto_render = false;
  auto engine = std::make_unique<Dvms>(options);
  Schema schema({{"id", ValueType::kInt64}, {"v", ValueType::kDouble}});
  EXPECT_TRUE(engine->CreateBaseTable("T", schema).ok());
  return engine;
}

struct ReadRecord {
  uint64_t epoch = 0;
  std::string fingerprint;
};

class LinearizabilityStress : public ::testing::TestWithParam<int> {};

TEST_P(LinearizabilityStress, ConcurrentReadsMatchSomeSerialPrefix) {
  const int num_readers = GetParam();
  const int num_ops = 60;
  const int reads_per_thread = 40;
  const std::vector<Op> schedule = MakeSchedule(/*seed=*/0xD5A5 + num_readers,
                                                num_ops);

  // ---- Live run: N reader sessions race the serialized writer. ----
  std::unique_ptr<Dvms> live = MakeEngine();
  const uint64_t epoch0 = live->published_epoch();
  ASSERT_GT(epoch0, 0u);  // the constructor publishes the empty state

  std::atomic<bool> writer_done{false};
  std::vector<uint64_t> commit_epochs;  // epoch after each committed op
  std::vector<std::vector<ReadRecord>> reads(num_readers);
  std::vector<Status> read_failures(num_readers, Status::OK());

  std::vector<std::thread> readers;
  readers.reserve(num_readers);
  for (int r = 0; r < num_readers; ++r) {
    readers.emplace_back([&, r] {
      Session session(live.get());
      for (int i = 0; i < reads_per_thread || !writer_done.load(); ++i) {
        auto result = session.Query(kReadQuery);
        if (!result.ok()) {
          read_failures[r] = result.status();
          return;
        }
        reads[r].push_back(
            {session.last_read_epoch(), Fingerprint(result.value())});
        if (i >= reads_per_thread + 8) break;  // writer done; a few extra
      }
    });
  }

  for (const Op& op : schedule) {
    ASSERT_TRUE(ApplyOp(*live, op).ok());
    commit_epochs.push_back(live->published_epoch());
    std::this_thread::yield();  // interleave with the readers
  }
  writer_done.store(true);
  for (std::thread& t : readers) t.join();
  for (int r = 0; r < num_readers; ++r) {
    ASSERT_TRUE(read_failures[r].ok()) << read_failures[r].ToString();
  }

  // ---- Serial replay: the recorded commit order on a fresh engine. ----
  std::unique_ptr<Dvms> serial = MakeEngine();
  ASSERT_EQ(serial->published_epoch(), epoch0);
  std::map<uint64_t, std::string> serial_state;  // epoch -> table state
  {
    auto initial = serial->Query(kReadQuery);
    ASSERT_TRUE(initial.ok());
    serial_state[epoch0] = Fingerprint(initial.value());
  }
  for (size_t i = 0; i < schedule.size(); ++i) {
    ASSERT_TRUE(ApplyOp(*serial, schedule[i]).ok());
    // Epochs are a pure function of the mutation sequence: the live run's
    // concurrent readers published nothing.
    ASSERT_EQ(serial->published_epoch(), commit_epochs[i]) << "op " << i;
    auto result = serial->Query(kReadQuery);
    ASSERT_TRUE(result.ok());
    serial_state[commit_epochs[i]] = Fingerprint(result.value());
  }

  // ---- The linearizability check proper. ----
  size_t total_reads = 0;
  for (int r = 0; r < num_readers; ++r) {
    uint64_t prev_epoch = 0;
    for (size_t i = 0; i < reads[r].size(); ++i) {
      const ReadRecord& rec = reads[r][i];
      // Each read observed a really-committed prefix ...
      auto it = serial_state.find(rec.epoch);
      ASSERT_NE(it, serial_state.end())
          << "reader " << r << " read " << i << " at unpublished epoch "
          << rec.epoch;
      // ... bit-identically ...
      EXPECT_EQ(rec.fingerprint, it->second)
          << "reader " << r << " read " << i << " diverged at epoch "
          << rec.epoch;
      // ... and the per-session epoch sequence is monotone (session order
      // consistency: no reader travels back in time).
      EXPECT_GE(rec.epoch, prev_epoch) << "reader " << r << " read " << i;
      prev_epoch = rec.epoch;
    }
    total_reads += reads[r].size();
  }

  // Exact governor accounting: every session read drew (and returned) a
  // reader slot, no mutation slots, and no pinned epoch leaked.
  Dvms::GovernorStats stats = live->governor_stats();
  EXPECT_EQ(stats.readers_admitted, static_cast<int64_t>(total_reads));
  EXPECT_EQ(stats.readers_rejected, 0);
  EXPECT_EQ(stats.pinned_snapshots, 0);
  EXPECT_EQ(stats.snapshot_epoch,
            static_cast<int64_t>(commit_epochs.back()));
}

INSTANTIATE_TEST_SUITE_P(Threads, LinearizabilityStress,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace dvms
