// Fast, deterministic replication coverage: a replica opened with
// Options::replica_of bootstraps from the primary's durability directory,
// continuously tails its WAL, and serves snapshot-isolated reads that
// converge to the primary's committed state. Writes on a replica are
// rejected with kReadOnlyReplica; lag and tailer health are queryable via
// the dvms_replication system relation; injected FaultSite::kReplication
// faults only raise lag / staleness and never crash the replica; Promote()
// turns the replica into a durable, writable primary over the same
// directory. The fork-based divergence harness lives in
// replication_crash_test.cc.

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "core/dvms.h"
#include "core/session.h"
#include "durability/tailer.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static int counter = 0;
    path_ = fs::path(::testing::TempDir()) /
            ("dvms_repl_" + tag + "_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  fs::path path_;
};

Dvms::Options PrimaryOptions(const std::string& dir) {
  Dvms::Options options;
  options.canvas_width = 64;
  options.canvas_height = 64;
  options.num_threads = 1;
  options.data_dir = dir;
  options.wal_fsync = "always";  // an acknowledged op is durable = tailable
  options.snapshot_interval = 0;
  return options;
}

Dvms::Options ReplicaOptions(const std::string& primary_dir) {
  Dvms::Options options;
  options.canvas_width = 64;
  options.canvas_height = 64;
  options.num_threads = 1;
  options.replica_of = primary_dir;
  options.replica_poll_ms = 1;  // keep test wall-clock low
  return options;
}

std::string Fingerprint(const Table& table) {
  std::ostringstream out;
  for (const Row& row : table.rows()) {
    for (const Value& v : row) out << v.ToString() << '|';
    out << '\n';
  }
  return out.str();
}

Status SeedPrimary(Dvms& primary) {
  Schema schema({{"id", ValueType::kInt64}, {"v", ValueType::kDouble}});
  DVMS_RETURN_IF_ERROR(primary.CreateBaseTable("Sales", schema));
  std::vector<Row> rows;
  for (int64_t i = 0; i < 20; ++i) {
    rows.push_back({Value::Int(i), Value::Double((i * 37) % 101)});
  }
  return primary.Insert("Sales", std::move(rows));
}

constexpr const char* kReadSql = "SELECT id, v FROM Sales ORDER BY id, v";

/// dvms_replication as a name -> value map (the relation is two-column).
std::map<std::string, int64_t> ReplicationRows(Dvms& engine) {
  std::map<std::string, int64_t> out;
  Result<Table> table =
      engine.Query("SELECT name, value FROM dvms_replication");
  EXPECT_TRUE(table.ok()) << table.status().message();
  if (!table.ok()) return out;
  for (const Row& row : table.value().rows()) {
    out[row[0].string_value()] = row[1].int_value();
  }
  return out;
}

/// Blocks until the replica has applied everything the primary has
/// committed (flushing first so the frames are on disk to tail).
void AwaitCaughtUp(Dvms& primary, Dvms& replica) {
  ASSERT_TRUE(primary.FlushWal().ok());
  const uint64_t target = primary.wal_lsn();
  const uint64_t applied = replica.WaitForReplicaLsn(target, 20000);
  ASSERT_GE(applied, target) << "replica never caught up to lsn " << target;
}

// ---------------------------------------------------------------------------

TEST(ReplicationTest, ReplicaConvergesAndServesReads) {
  TempDir dir("converge");
  Dvms primary(PrimaryOptions(dir.str()));
  ASSERT_TRUE(primary.recovery_status().ok());
  ASSERT_TRUE(SeedPrimary(primary).ok());

  Dvms replica(ReplicaOptions(dir.str()));
  ASSERT_TRUE(replica.recovery_status().ok())
      << replica.recovery_status().message();
  EXPECT_TRUE(replica.is_replica());
  AwaitCaughtUp(primary, replica);

  // Same rows through the engine-level read path...
  EXPECT_EQ(Fingerprint(replica.Query(kReadSql).value()),
            Fingerprint(primary.Query(kReadSql).value()));

  // ...and through the lock-free Session path.
  Session session(&replica);
  EXPECT_EQ(Fingerprint(session.Query(kReadSql).value()),
            Fingerprint(primary.Query(kReadSql).value()));

  // New commits keep flowing: the tail is continuous, not a one-shot copy.
  ASSERT_TRUE(primary
                  .Insert("Sales", {{Value::Int(100), Value::Double(1.5)},
                                    {Value::Int(101), Value::Double(2.5)}})
                  .ok());
  AwaitCaughtUp(primary, replica);
  EXPECT_EQ(Fingerprint(session.Query(kReadSql).value()),
            Fingerprint(primary.Query(kReadSql).value()));
}

TEST(ReplicationTest, WritesRejectedReadsAllowed) {
  TempDir dir("readonly");
  Dvms primary(PrimaryOptions(dir.str()));
  ASSERT_TRUE(SeedPrimary(primary).ok());

  Dvms replica(ReplicaOptions(dir.str()));
  AwaitCaughtUp(primary, replica);

  // Every mutating entry point refuses with the dedicated code.
  Status st = replica.Insert("Sales", {{Value::Int(7), Value::Double(7)}});
  EXPECT_EQ(st.code(), StatusCode::kReadOnlyReplica) << st.message();
  st = replica.CreateBaseTable(
      "Other", Schema({{"x", ValueType::kInt64}}));
  EXPECT_EQ(st.code(), StatusCode::kReadOnlyReplica);
  st = replica.PushEvent(InputEvent::MouseDown(0, 3, 3));
  EXPECT_EQ(st.code(), StatusCode::kReadOnlyReplica);
  st = replica.Delete("Sales", nullptr).status();
  EXPECT_EQ(st.code(), StatusCode::kReadOnlyReplica);
  st = replica.Undo();
  EXPECT_EQ(st.code(), StatusCode::kReadOnlyReplica);
  st = replica.Checkpoint();
  EXPECT_EQ(st.code(), StatusCode::kReadOnlyReplica);

  // Reads — plain, EXPLAIN, system relations — all still serve.
  EXPECT_TRUE(replica.Query(kReadSql).ok());
  EXPECT_TRUE(replica.Query("EXPLAIN " + std::string(kReadSql)).ok());
  EXPECT_TRUE(replica.Query("SELECT name, count FROM dvms_metrics").ok());

  // Rejected writes changed nothing.
  AwaitCaughtUp(primary, replica);
  EXPECT_EQ(Fingerprint(replica.Query(kReadSql).value()),
            Fingerprint(primary.Query(kReadSql).value()));
}

TEST(ReplicationTest, ReplicationRelationReportsLag) {
  TempDir dir("lag");
  Dvms primary(PrimaryOptions(dir.str()));
  ASSERT_TRUE(SeedPrimary(primary).ok());

  Dvms replica(ReplicaOptions(dir.str()));
  AwaitCaughtUp(primary, replica);

  // Commit after the replica attached so the frames flow through the
  // tailer (the bootstrap copy is not counted as "applied frames").
  ASSERT_TRUE(
      primary.Insert("Sales", {{Value::Int(42), Value::Double(4.2)}}).ok());
  AwaitCaughtUp(primary, replica);

  std::map<std::string, int64_t> rows = ReplicationRows(replica);
  EXPECT_EQ(rows["replica"], 1);
  EXPECT_EQ(rows["promoted"], 0);
  EXPECT_EQ(rows["stale"], 0);
  EXPECT_EQ(rows["lag_frames"], 0) << "quiesced primary must show zero lag";
  EXPECT_EQ(rows["lag_bytes"], 0);
  EXPECT_EQ(rows["replica_lsn"], static_cast<int64_t>(primary.wal_lsn()));
  EXPECT_EQ(rows["replica_lsn"], rows["primary_lsn"]);
  EXPECT_GT(rows["frames_applied"], 0);
  EXPECT_GT(rows["polls"], 0);

  // The same rows are visible through a lock-free Session read.
  Session session(&replica);
  Result<Table> via_session =
      session.Query("SELECT name, value FROM dvms_replication");
  ASSERT_TRUE(via_session.ok()) << via_session.status().message();
  EXPECT_EQ(via_session.value().rows().size(), 13u);

  // A primary reports replica=0 and no lag counters.
  std::map<std::string, int64_t> primary_rows = ReplicationRows(primary);
  EXPECT_EQ(primary_rows["replica"], 0);
  EXPECT_EQ(primary_rows["lag_frames"], 0);
}

TEST(ReplicationTest, PromoteMakesReplicaWritableAndDurable) {
  TempDir dir("promote");
  uint64_t committed_lsn = 0;
  {
    Dvms primary(PrimaryOptions(dir.str()));
    ASSERT_TRUE(SeedPrimary(primary).ok());
    committed_lsn = primary.wal_lsn();
  }  // primary gone — simulated failover

  Dvms replica(ReplicaOptions(dir.str()));
  ASSERT_TRUE(replica.recovery_status().ok());
  replica.WaitForReplicaLsn(committed_lsn, 20000);

  Status promoted = replica.Promote();
  ASSERT_TRUE(promoted.ok()) << promoted.message();
  EXPECT_FALSE(replica.is_replica());

  std::map<std::string, int64_t> rows = ReplicationRows(replica);
  EXPECT_EQ(rows["replica"], 0);
  EXPECT_EQ(rows["promoted"], 1);

  // Promoting twice is an error, as is promoting a primary.
  EXPECT_FALSE(replica.Promote().ok());

  // The promoted engine accepts and logs writes...
  ASSERT_TRUE(
      replica.Insert("Sales", {{Value::Int(500), Value::Double(9.5)}}).ok());
  const std::string after = Fingerprint(replica.Query(kReadSql).value());
  const uint64_t final_lsn = replica.wal_lsn();
  EXPECT_GT(final_lsn, committed_lsn);

  // ...durably: a fresh engine over the same directory recovers them.
  Dvms reopened(PrimaryOptions(dir.str()));
  ASSERT_TRUE(reopened.recovery_status().ok())
      << reopened.recovery_status().message();
  EXPECT_EQ(reopened.durability_stats().recovered_lsn, final_lsn);
  EXPECT_EQ(Fingerprint(reopened.Query(kReadSql).value()), after);
}

TEST(ReplicationTest, PromoteOnPrimaryFails) {
  Dvms engine(Dvms::Options{});
  Status st = engine.Promote();
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.message();
}

TEST(ReplicationTest, ReplicationFaultsRaiseLagNeverCrash) {
  TempDir dir("faults");
  Dvms primary(PrimaryOptions(dir.str()));
  ASSERT_TRUE(SeedPrimary(primary).ok());

  Dvms replica(ReplicaOptions(dir.str()));
  AwaitCaughtUp(primary, replica);

  {
    // Half of all tailer directory reads fail. Replication-site faults are
    // scoped to the tailer: the primary's own commits are untouched.
    FaultConfig config;
    config.seed = 20260808;
    config.rate = 0.5;
    config.site_mask = 1u << static_cast<uint32_t>(FaultSite::kReplication);
    ScopedFaultInjector faults(config);
    for (int64_t i = 0; i < 30; ++i) {
      ASSERT_TRUE(
          replica.Query(kReadSql).ok());  // replica keeps serving throughout
      ASSERT_TRUE(
          primary.Insert("Sales", {{Value::Int(1000 + i), Value::Double(i)}})
              .ok());
    }
    EXPECT_GT(faults.injector()->injections(FaultSite::kReplication), 0u);
  }

  // With the injector gone the replica drains the backlog and converges.
  AwaitCaughtUp(primary, replica);
  EXPECT_EQ(Fingerprint(replica.Query(kReadSql).value()),
            Fingerprint(primary.Query(kReadSql).value()));
  Dvms::ReplicationStats stats = replica.replication_stats();
  EXPECT_GT(stats.poll_errors, 0u) << "faults never hit the tail loop";
  EXPECT_FALSE(stats.stale);
  EXPECT_EQ(stats.lag_frames, 0u);
}

TEST(ReplicationTest, SustainedFaultsDegradeToStaleThenRecover) {
  TempDir dir("stale");
  Dvms primary(PrimaryOptions(dir.str()));
  ASSERT_TRUE(SeedPrimary(primary).ok());

  Dvms::Options options = ReplicaOptions(dir.str());
  options.replica_retry_budget = 2;  // report staleness quickly
  Dvms replica(options);
  AwaitCaughtUp(primary, replica);
  const std::string frozen = Fingerprint(replica.Query(kReadSql).value());

  {
    FaultConfig config;
    config.seed = 7;
    config.rate = 1.0;  // every poll fails: the primary is unreachable
    config.site_mask = 1u << static_cast<uint32_t>(FaultSite::kReplication);
    ScopedFaultInjector faults(config);
    ASSERT_TRUE(
        primary.Insert("Sales", {{Value::Int(777), Value::Double(7.7)}}).ok());
    ASSERT_TRUE(primary.FlushWal().ok());
    // Degraded, not dead: the replica marks itself stale once the retry
    // budget is spent, while still serving its last applied epoch.
    const uint64_t stale_deadline_lsn = primary.wal_lsn();
    for (int i = 0; i < 20000 && !replica.replication_stats().stale; ++i) {
      usleep(1000);
    }
    EXPECT_TRUE(replica.replication_stats().stale);
    EXPECT_LT(replica.wal_lsn(), stale_deadline_lsn);
    EXPECT_EQ(Fingerprint(replica.Query(kReadSql).value()), frozen);
    std::map<std::string, int64_t> rows = ReplicationRows(replica);
    EXPECT_EQ(rows["stale"], 1);
    EXPECT_FALSE(replica.replication_stats().last_error.empty());
  }

  // Primary "reachable" again: the replica clears staleness and catches up.
  AwaitCaughtUp(primary, replica);
  EXPECT_FALSE(replica.replication_stats().stale);
  EXPECT_EQ(Fingerprint(replica.Query(kReadSql).value()),
            Fingerprint(primary.Query(kReadSql).value()));
}

TEST(ReplicationTest, ReplicaStartedBeforePrimaryCatchesUp) {
  TempDir base("early");
  const std::string dir = (base.path() / "primary").string();

  // The primary's directory does not exist yet: the replica starts empty
  // (degraded, lsn 0) instead of failing, and attaches once it appears.
  Dvms replica(ReplicaOptions(dir));
  ASSERT_TRUE(replica.recovery_status().ok());
  EXPECT_EQ(replica.wal_lsn(), 0u);

  Dvms primary(PrimaryOptions(dir));
  ASSERT_TRUE(primary.recovery_status().ok());
  ASSERT_TRUE(SeedPrimary(primary).ok());
  AwaitCaughtUp(primary, replica);
  EXPECT_EQ(Fingerprint(replica.Query(kReadSql).value()),
            Fingerprint(primary.Query(kReadSql).value()));
}

TEST(ReplicationTest, ReplicaBootstrapsFromSnapshotPlusSuffix) {
  TempDir dir("snapshot");
  Dvms::Options options = PrimaryOptions(dir.str());
  options.snapshot_interval = 8;  // force snapshots + segment rotation
  Dvms primary(options);
  ASSERT_TRUE(SeedPrimary(primary).ok());
  for (int64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        primary.Insert("Sales", {{Value::Int(2000 + i), Value::Double(i)}})
            .ok());
  }

  Dvms replica(ReplicaOptions(dir.str()));
  ASSERT_TRUE(replica.recovery_status().ok());
  AwaitCaughtUp(primary, replica);
  EXPECT_EQ(Fingerprint(replica.Query(kReadSql).value()),
            Fingerprint(primary.Query(kReadSql).value()));

  // More writes rotate further segments under the running tailer.
  for (int64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        primary.Insert("Sales", {{Value::Int(3000 + i), Value::Double(i)}})
            .ok());
  }
  AwaitCaughtUp(primary, replica);
  EXPECT_EQ(Fingerprint(replica.Query(kReadSql).value()),
            Fingerprint(primary.Query(kReadSql).value()));
}

// ---------------------------------------------------------------------------

// N replicas started together would otherwise tail in lockstep; the seeded
// jitter decorrelates them while staying deterministic per seed.
TEST(PollCadenceTest, SameSeedYieldsIdenticalSchedule) {
  PollCadence a(8, 42);
  PollCadence b(8, 42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextWaitMs(0), b.NextWaitMs(0));
  }
}

TEST(PollCadenceTest, JitterStaysWithinHalfToOneAndAHalf) {
  PollCadence cadence(8, 7);
  bool below_base = false;
  bool above_base = false;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t w = cadence.NextWaitMs(0);
    EXPECT_GE(w, 4u);   // 0.5 * base
    EXPECT_LT(w, 12u);  // 1.5 * base
    below_base |= w < 8;
    above_base |= w > 8;
  }
  // The draw actually spreads; a degenerate constant would re-synchronize
  // the fleet.
  EXPECT_TRUE(below_base);
  EXPECT_TRUE(above_base);
}

TEST(PollCadenceTest, FailureBackoffShiftIsCappedAtSixDoublings) {
  PollCadence cadence(1, 11);
  for (uint64_t failures : {uint64_t{6}, uint64_t{9}, uint64_t{50}}) {
    const uint64_t w = cadence.NextWaitMs(failures);
    EXPECT_GE(w, 32u);  // 0.5 * (1 << 6)
    EXPECT_LT(w, 96u);  // 1.5 * (1 << 6)
  }
}

TEST(PollCadenceTest, WaitNeverRoundsToZero) {
  PollCadence cadence(1, 3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(cadence.NextWaitMs(0), 1u);  // 0.5 * 1 must clamp up
  }
}

TEST(PollCadenceTest, DifferentSeedsDecorrelate) {
  PollCadence a(8, 1);
  PollCadence b(8, 2);
  int diverged = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextWaitMs(0) != b.NextWaitMs(0)) ++diverged;
  }
  EXPECT_GT(diverged, 0);
}

// ---------------------------------------------------------------------------

// Promote() racing in-flight Session reads: a pinned epoch survives the
// role flip bit-for-bit, pin accounting stays exact, and concurrent
// dvms_replication scans see the (replica, promoted) flags flip atomically
// — only (1,0) or (0,1), never a mixed row pair.
TEST(ReplicationTest, PromoteRacesPinnedSessionReads) {
  TempDir dir("promote_race");
  auto primary = std::make_unique<Dvms>(PrimaryOptions(dir.str()));
  ASSERT_TRUE(SeedPrimary(*primary).ok());
  Dvms replica(ReplicaOptions(dir.str()));
  ASSERT_TRUE(replica.recovery_status().ok());
  AwaitCaughtUp(*primary, replica);

  Session pinned(&replica);
  ASSERT_TRUE(pinned.Pin().ok());
  Result<Table> before = pinned.Query(kReadSql);
  ASSERT_TRUE(before.ok()) << before.status().message();
  const std::string fp = Fingerprint(before.value());
  EXPECT_EQ(replica.governor_stats().pinned_snapshots, 1);

  primary.reset();  // single-owner: release the directory before promoting

  std::atomic<bool> stop{false};
  std::atomic<int> mixed_role_rows{0};
  std::atomic<int> failed_reads{0};
  std::vector<std::thread> racers;
  for (int t = 0; t < 4; ++t) {
    racers.emplace_back([&replica, &stop, &mixed_role_rows, &failed_reads] {
      while (!stop.load(std::memory_order_relaxed)) {
        Result<Table> table =
            replica.Query("SELECT name, value FROM dvms_replication");
        if (!table.ok()) {
          failed_reads.fetch_add(1);
          continue;
        }
        int64_t is_replica = -1, promoted = -1;
        for (const Row& row : table.value().rows()) {
          if (row[0].string_value() == "replica") {
            is_replica = row[1].int_value();
          }
          if (row[0].string_value() == "promoted") promoted = row[1].int_value();
        }
        const bool consistent = (is_replica == 1 && promoted == 0) ||
                                (is_replica == 0 && promoted == 1);
        if (!consistent) mixed_role_rows.fetch_add(1);
        Result<Table> read = replica.Query(kReadSql);
        if (!read.ok()) failed_reads.fetch_add(1);
      }
    });
  }
  ASSERT_TRUE(replica.Promote().ok());
  stop.store(true);
  for (std::thread& t : racers) t.join();
  EXPECT_EQ(mixed_role_rows.load(), 0)
      << "dvms_replication exposed a half-flipped role";
  EXPECT_EQ(failed_reads.load(), 0);

  // The pinned epoch survived the role flip, bit-for-bit, and its pin is
  // still the only one now that the racers are gone.
  Result<Table> after = pinned.Query(kReadSql);
  ASSERT_TRUE(after.ok()) << after.status().message();
  EXPECT_EQ(Fingerprint(after.value()), fp);
  EXPECT_EQ(replica.governor_stats().pinned_snapshots, 1);

  // A post-promotion write moves the fleet forward; the pin still reads
  // the pre-promotion epoch until released.
  ASSERT_TRUE(
      replica.Insert("Sales", {{Value::Int(999), Value::Double(1)}}).ok());
  Result<Table> still_pinned = pinned.Query(kReadSql);
  ASSERT_TRUE(still_pinned.ok());
  EXPECT_EQ(Fingerprint(still_pinned.value()), fp);
  Result<Table> latest = replica.Query(kReadSql);
  ASSERT_TRUE(latest.ok());
  EXPECT_NE(Fingerprint(latest.value()), fp);

  pinned.Unpin();
  EXPECT_EQ(replica.governor_stats().pinned_snapshots, 0);
}

}  // namespace
}  // namespace dvms
