// Painter's-algorithm guarantees at the engine level: marks views render
// in definition order, and versioned queries work through Dvms::Query.

#include "core/dvms.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

TEST(RenderOrderTest, LaterMarksViewsPaintOverEarlierOnes) {
  Dvms::Options options;
  options.canvas_width = 40;
  options.canvas_height = 40;
  Dvms engine(options);
  ASSERT_TRUE(engine
                  .CreateBaseTable("One", Schema({{"x", ValueType::kDouble}}))
                  .ok());
  ASSERT_TRUE(engine.Insert("One", {{Value::Double(20)}}).ok());
  const char* program = R"(
    BACKDROP = SELECT 0.0 AS x, 0.0 AS y, 40.0 AS width, 40.0 AS height,
        'blue' AS fill FROM One;
    DOT = SELECT 4 AS radius, x AS center_x, x AS center_y, 'red' AS fill
      FROM One;
    P1 = render(SELECT x, y, width, height, fill FROM BACKDROP);
    P2 = render(SELECT radius, center_x, center_y, fill FROM DOT);
  )";
  ASSERT_TRUE(engine.LoadProgram(program).ok());
  // The dot paints over the backdrop; the backdrop survives elsewhere.
  EXPECT_EQ(engine.pixels().At(20, 20), ParseColor("red").value());
  EXPECT_EQ(engine.pixels().At(5, 5), ParseColor("blue").value());
}

TEST(RenderOrderTest, RowOrderWithinOneViewAlsoPaints) {
  Dvms::Options options;
  options.canvas_width = 30;
  options.canvas_height = 30;
  Dvms engine(options);
  ASSERT_TRUE(engine
                  .CreateBaseTable("Layers", Schema({{"z", ValueType::kInt64},
                                                     {"fill", ValueType::kString}}))
                  .ok());
  ASSERT_TRUE(engine.Insert("Layers", {{Value::Int(0), Value::String("blue")},
                                       {Value::Int(1), Value::String("red")}})
                  .ok());
  ASSERT_TRUE(engine
                  .LoadProgram(
                      "M = render(SELECT 8 AS radius, 15.0 AS center_x, "
                      "15.0 AS center_y, fill FROM Layers ORDER BY z);")
                  .ok());
  EXPECT_EQ(engine.pixels().At(15, 15), ParseColor("red").value());
}

TEST(RenderOrderTest, QueryCanReadPastVersions) {
  Dvms::Options options;
  options.auto_render = false;
  Dvms engine(options);
  ASSERT_TRUE(
      engine.CreateBaseTable("T", Schema({{"x", ValueType::kInt64}})).ok());
  ASSERT_TRUE(engine.Insert("T", {{Value::Int(1)}}).ok());
  ASSERT_TRUE(engine.LoadProgram("V = SELECT x FROM T;").ok());  // commits
  ASSERT_TRUE(engine.Insert("T", {{Value::Int(2)}}).ok());
  Table now = engine.Query("SELECT COUNT(*) AS n FROM T").value();
  EXPECT_EQ(now.row(0)[0].int_value(), 2);
  Table past = engine.Query("SELECT COUNT(*) AS n FROM T@vnow-1").value();
  EXPECT_EQ(past.row(0)[0].int_value(), 1);
}

}  // namespace
}  // namespace dvms
