// Integrity-scrubber coverage: bit flips in sealed WAL segments and
// snapshots are detected on the next pass (100% of single-byte flips),
// corrupt files are quarantined only when redundant — a sealed segment
// fully covered by a newer valid snapshot, a snapshot with a valid peer —
// and anything unrecoverable fails loud by poisoning durability instead of
// letting a future restart silently truncate acknowledged commits. Also
// covers the DVMS_SCRUB_MS / Options::scrub_ms background thread and the
// dvms_storage system relation.

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/dvms.h"
#include "core/session.h"
#include "durability/manager.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static int counter = 0;
    path_ = fs::path(::testing::TempDir()) /
            ("dvms_" + tag + "_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  fs::path path_;
};

std::unique_ptr<Dvms> MakeEngine(const std::string& data_dir,
                                 int64_t scrub_ms = 0) {
  Dvms::Options options;
  options.canvas_width = 64;
  options.canvas_height = 64;
  options.num_threads = 1;
  options.data_dir = data_dir;
  options.wal_fsync = "always";
  options.snapshot_interval = 0;  // explicit Checkpoint() only
  options.scrub_ms = scrub_ms;
  return std::make_unique<Dvms>(options);
}

void SeedRows(Dvms& engine, int64_t first, int64_t count) {
  std::vector<Row> rows;
  for (int64_t i = first; i < first + count; ++i) {
    rows.push_back({Value::Int(i), Value::Double((i * 37) % 101)});
  }
  ASSERT_TRUE(engine.Insert("Pts", rows).ok());
}

void MakeTable(Dvms& engine) {
  Schema schema({{"id", ValueType::kInt64}, {"v", ValueType::kDouble}});
  ASSERT_TRUE(engine.CreateBaseTable("Pts", schema).ok());
}

size_t CountRows(Dvms& engine) {
  Result<Table> table = engine.Query("SELECT id FROM Pts");
  EXPECT_TRUE(table.ok()) << table.status().message();
  return table.ok() ? table.value().num_rows() : 0;
}

void FlipByte(const fs::path& path, uint64_t offset) {
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good()) << path;
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.read(&byte, 1);
  byte ^= 0x40;
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&byte, 1);
  ASSERT_TRUE(file.good()) << path;
}

/// The sealed (non-active) WAL segments in `dir`, ascending by LSN.
std::vector<fs::path> SealedSegments(const std::string& dir) {
  Result<std::vector<uint64_t>> lsns = ListWalSegments(dir);
  EXPECT_TRUE(lsns.ok());
  std::vector<fs::path> out;
  if (!lsns.ok()) return out;
  for (size_t i = 0; i + 1 < lsns.value().size(); ++i) {
    out.emplace_back(WalSegmentPath(dir, lsns.value()[i]));
  }
  return out;
}

std::map<std::string, int64_t> StorageRows(Dvms& engine) {
  std::map<std::string, int64_t> out;
  Result<Table> table = engine.Query("SELECT name, value FROM dvms_storage");
  EXPECT_TRUE(table.ok()) << table.status().message();
  if (!table.ok()) return out;
  for (const Row& row : table.value().rows()) {
    out[row[0].string_value()] = row[1].int_value();
  }
  return out;
}

/// Seeds + checkpoints twice: retention keeps a sealed mid segment (the
/// first checkpoint's successor, covered by the second snapshot) alongside
/// the active one. A single checkpoint leaves no sealed segment at all —
/// pruning removes everything the snapshot covers.
void BuildSealedSegment(Dvms& engine) {
  MakeTable(engine);
  SeedRows(engine, 0, 10);
  ASSERT_TRUE(engine.Checkpoint().ok());
  SeedRows(engine, 100, 5);
  ASSERT_TRUE(engine.Checkpoint().ok());
}

TEST(ScrubTest, CleanDirectoryScansQuietly) {
  TempDir dir("scrub_clean");
  auto engine = MakeEngine(dir.str());
  BuildSealedSegment(*engine);
  ASSERT_TRUE(engine->ScrubNow().ok());
  Dvms::StorageStats stats = engine->storage_stats();
  EXPECT_EQ(stats.scrub_passes, 1u);
  EXPECT_GT(stats.scrub_segments_scanned, 0u);
  EXPECT_GT(stats.scrub_snapshots_scanned, 0u);
  EXPECT_EQ(stats.scrub_corruptions, 0u);
  EXPECT_EQ(stats.scrub_quarantined, 0u);
  EXPECT_TRUE(stats.last_corruption.empty());
}

TEST(ScrubTest, ScrubNowWithoutDurabilityErrors) {
  Dvms::Options options;
  options.canvas_width = 64;
  options.canvas_height = 64;
  options.num_threads = 1;
  Dvms engine(options);
  EXPECT_FALSE(engine.ScrubNow().ok());
}

// Every single-byte flip in a sealed segment — magic, segment header,
// frame header, payload, trailing CRC byte — must be detected.
TEST(ScrubTest, DetectsBitFlipsAtEveryRegionOfASealedSegment) {
  TempDir dir("scrub_flips");
  auto engine = MakeEngine(dir.str());
  BuildSealedSegment(*engine);
  std::vector<fs::path> sealed = SealedSegments(dir.str());
  ASSERT_EQ(sealed.size(), 1u);
  const uint64_t size = fs::file_size(sealed[0]);
  ASSERT_GT(size, 20u);
  const std::vector<uint64_t> offsets = {0, 9, 17, size / 2, size - 1};

  uint64_t detected = 0;
  for (uint64_t offset : offsets) {
    FlipByte(sealed[0], offset);
    uint64_t before = engine->storage_stats().scrub_corruptions;
    ASSERT_TRUE(engine->ScrubNow().ok());
    Dvms::StorageStats stats = engine->storage_stats();
    EXPECT_GT(stats.scrub_corruptions, before)
        << "flip at offset " << offset << " went undetected";
    if (stats.scrub_corruptions > before) ++detected;
    EXPECT_FALSE(stats.last_corruption.empty());
    // The covered segment was quarantined on detection; put it back and
    // undo the flip so the next offset exercises the same sealed file.
    fs::path quarantined(sealed[0].string() + ".quarantined");
    ASSERT_TRUE(fs::exists(quarantined));
    fs::rename(quarantined, sealed[0]);
    FlipByte(sealed[0], offset);
  }
  EXPECT_EQ(detected, offsets.size());  // 100% of injected flips
}

TEST(ScrubTest, QuarantinesCorruptSealedSegmentOnlyWhenSnapshotCoversIt) {
  TempDir dir("scrub_covered");
  auto engine = MakeEngine(dir.str());
  BuildSealedSegment(*engine);
  SeedRows(*engine, 200, 3);  // lands in the fresh active segment
  std::vector<fs::path> sealed = SealedSegments(dir.str());
  ASSERT_EQ(sealed.size(), 1u);

  FlipByte(sealed[0], fs::file_size(sealed[0]) / 2);
  ASSERT_TRUE(engine->ScrubNow().ok());
  Dvms::StorageStats stats = engine->storage_stats();
  EXPECT_EQ(stats.scrub_corruptions, 1u);
  EXPECT_EQ(stats.scrub_quarantined, 1u);
  EXPECT_FALSE(fs::exists(sealed[0]));
  EXPECT_TRUE(fs::exists(sealed[0].string() + ".quarantined"));

  // The quarantined file is invisible to recovery: a restart rebuilds the
  // full acknowledged state from the snapshot + surviving log.
  size_t want = CountRows(*engine);
  ASSERT_TRUE(engine->FlushWal().ok());
  engine.reset();
  auto restarted = MakeEngine(dir.str());
  ASSERT_TRUE(restarted->recovery_status().ok())
      << restarted->recovery_status().message();
  EXPECT_EQ(CountRows(*restarted), want);
}

TEST(ScrubTest, UncoveredCorruptionFailsLoudInsteadOfQuarantining) {
  TempDir dir("scrub_uncovered");
  auto engine = MakeEngine(dir.str());
  BuildSealedSegment(*engine);
  std::vector<fs::path> sealed = SealedSegments(dir.str());
  ASSERT_EQ(sealed.size(), 1u);
  Result<std::vector<uint64_t>> snaps = ListWalSnapshots(dir.str());
  ASSERT_TRUE(snaps.ok());
  ASSERT_EQ(snaps.value().size(), 2u);

  // Rot hits the sealed segment AND both snapshots: nothing makes the
  // segment redundant anymore, so setting anything aside would turn the
  // next restart into silent loss of acknowledged commits.
  FlipByte(sealed[0], fs::file_size(sealed[0]) / 2);
  std::vector<fs::path> snap_paths;
  for (uint64_t lsn : snaps.value()) {
    snap_paths.emplace_back(WalSnapshotPath(dir.str(), lsn));
    FlipByte(snap_paths.back(), fs::file_size(snap_paths.back()) / 2);
  }

  ASSERT_TRUE(engine->ScrubNow().ok());
  Dvms::StorageStats stats = engine->storage_stats();
  EXPECT_GE(stats.scrub_corruptions, 3u);
  EXPECT_EQ(stats.scrub_quarantined, 0u);
  EXPECT_TRUE(fs::exists(sealed[0]));  // evidence stays in place
  for (const fs::path& p : snap_paths) EXPECT_TRUE(fs::exists(p));

  // Fail-stop: durability is poisoned loudly — the health status reports
  // it and Checkpoint refuses — while reads keep serving in-memory state.
  ASSERT_FALSE(engine->recovery_status().ok());
  EXPECT_NE(engine->recovery_status().message().find("fail-stop"),
            std::string::npos)
      << engine->recovery_status().message();
  Status st = engine->Checkpoint();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("fail-stop"), std::string::npos)
      << st.message();
  EXPECT_EQ(CountRows(*engine), 15u);
}

TEST(ScrubTest, QuarantinesCorruptSnapshotOnlyWithValidReplacement) {
  TempDir dir("scrub_snap");
  auto engine = MakeEngine(dir.str());
  MakeTable(*engine);
  SeedRows(*engine, 0, 10);
  ASSERT_TRUE(engine->Checkpoint().ok());
  SeedRows(*engine, 100, 5);
  ASSERT_TRUE(engine->Checkpoint().ok());  // two snapshots retained
  Result<std::vector<uint64_t>> snaps = ListWalSnapshots(dir.str());
  ASSERT_TRUE(snaps.ok());
  ASSERT_EQ(snaps.value().size(), 2u);

  fs::path older(WalSnapshotPath(dir.str(), snaps.value()[0]));
  FlipByte(older, fs::file_size(older) / 2);
  ASSERT_TRUE(engine->ScrubNow().ok());
  Dvms::StorageStats stats = engine->storage_stats();
  EXPECT_EQ(stats.scrub_corruptions, 1u);
  EXPECT_EQ(stats.scrub_quarantined, 1u);
  EXPECT_FALSE(fs::exists(older));
  EXPECT_TRUE(fs::exists(older.string() + ".quarantined"));

  size_t want = CountRows(*engine);
  engine.reset();
  auto restarted = MakeEngine(dir.str());
  ASSERT_TRUE(restarted->recovery_status().ok());
  EXPECT_EQ(CountRows(*restarted), want);
}

TEST(ScrubTest, BackgroundThreadScrubsOnCadence) {
  TempDir dir("scrub_thread");
  auto engine = MakeEngine(dir.str(), /*scrub_ms=*/2);
  BuildSealedSegment(*engine);
  std::vector<fs::path> sealed = SealedSegments(dir.str());
  ASSERT_EQ(sealed.size(), 1u);
  FlipByte(sealed[0], fs::file_size(sealed[0]) / 2);
  // No explicit ScrubNow: the cadence thread must find the rot by itself.
  bool quarantined = false;
  for (int i = 0; i < 5000 && !quarantined; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    quarantined = engine->storage_stats().scrub_quarantined > 0;
  }
  EXPECT_TRUE(quarantined);
  EXPECT_GT(engine->storage_stats().scrub_passes, 0u);
}

TEST(ScrubTest, ScrubMsEnvVarStartsTheThread) {
  TempDir dir("scrub_env");
  ::setenv("DVMS_SCRUB_MS", "2", 1);
  auto engine = MakeEngine(dir.str());  // Options::scrub_ms stays 0
  ::unsetenv("DVMS_SCRUB_MS");
  MakeTable(*engine);
  SeedRows(*engine, 0, 4);
  bool scrubbed = false;
  for (int i = 0; i < 5000 && !scrubbed; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    scrubbed = engine->storage_stats().scrub_passes > 0;
  }
  EXPECT_TRUE(scrubbed);
}

TEST(ScrubTest, StorageRelationIsQueryable) {
  TempDir dir("scrub_rel");
  auto engine = MakeEngine(dir.str());
  BuildSealedSegment(*engine);
  ASSERT_TRUE(engine->ScrubNow().ok());

  std::map<std::string, int64_t> rows = StorageRows(*engine);
  EXPECT_EQ(rows.at("degraded"), 0);
  EXPECT_EQ(rows.at("scrub_passes"), 1);
  EXPECT_GT(rows.at("scrub_segments_scanned"), 0);
  EXPECT_GT(rows.at("scrub_snapshots_scanned"), 0);
  EXPECT_EQ(rows.at("scrub_corruptions"), 0);
  EXPECT_EQ(rows.count("io_fault_checks"), 1u);
  EXPECT_EQ(rows.count("io_faults_injected"), 1u);

  // The same relation is visible on the lock-free session read path.
  Session session(engine.get());
  Result<Table> via_session = session.Query(
      "SELECT name, value FROM dvms_storage WHERE name = 'scrub_passes'");
  ASSERT_TRUE(via_session.ok()) << via_session.status().message();
  ASSERT_EQ(via_session.value().num_rows(), 1u);
  EXPECT_GE(via_session.value().row(0)[1].int_value(), 1);
}

}  // namespace
}  // namespace dvms
