// Property-based tests: invariants checked across randomized inputs, one
// gtest parameter per RNG seed.

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "concurrency/policy.h"
#include "events/recognizer.h"
#include "parser/parser.h"
#include "query/binder.h"
#include "query/executor.h"
#include "query/ivm.h"
#include "storage/catalog.h"
#include "streaming/wavelet.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

class SeededTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  uint64_t seed() const { return GetParam(); }
};

// ---------------------------------------------------------------- values

using ValueProperties = SeededTest;

Value RandomValue(Rng* rng) {
  switch (rng->UniformInt(0, 4)) {
    case 0:
      return Value::Null();
    case 1:
      return Value::Bool(rng->Bernoulli(0.5));
    case 2:
      return Value::Int(rng->UniformInt(-100, 100));
    case 3:
      return Value::Double(rng->Uniform(-100, 100));
    default:
      return Value::String(std::string(1, static_cast<char>(
                                              'a' + rng->UniformInt(0, 25))));
  }
}

TEST_P(ValueProperties, CompareIsTotalOrder) {
  Rng rng(seed());
  std::vector<Value> values;
  for (int i = 0; i < 30; ++i) values.push_back(RandomValue(&rng));
  for (const Value& a : values) {
    EXPECT_EQ(a.Compare(a), 0);
    for (const Value& b : values) {
      // Antisymmetry.
      EXPECT_EQ(a.Compare(b) < 0, b.Compare(a) > 0);
      // Consistency with Equals for same-kind comparisons.
      if (a.Compare(b) == 0 && b.Compare(a) == 0 && !a.is_null() &&
          !b.is_null()) {
        EXPECT_TRUE(a.Equals(b) || a.type() == ValueType::kBool ||
                    b.type() == ValueType::kBool);
      }
      for (const Value& c : values) {
        // Transitivity (sampled).
        if (a.Compare(b) <= 0 && b.Compare(c) <= 0) {
          EXPECT_LE(a.Compare(c), 0);
        }
      }
    }
  }
}

TEST_P(ValueProperties, EqualsImpliesEqualHash) {
  Rng rng(seed());
  for (int i = 0; i < 200; ++i) {
    Value a = RandomValue(&rng);
    Value b = RandomValue(&rng);
    if (a.Equals(b)) {
      EXPECT_EQ(a.Hash(), b.Hash())
          << a.ToString() << " vs " << b.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueProperties,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// -------------------------------------------------------------- executor

class ExecutorProperties : public SeededTest {
 protected:
  void SetUp() override {
    udfs_ = UdfRegistry::WithBuiltins();
    Rng rng(seed());
    auto t = catalog_
                 .CreateTable("T",
                              Schema({{"k", ValueType::kInt64},
                                      {"v", ValueType::kDouble},
                                      {"s", ValueType::kString}}),
                              RelationKind::kBase)
                 .value();
    size_t rows = static_cast<size_t>(rng.UniformInt(20, 200));
    const char* cats[] = {"a", "b", "c", "d"};
    for (size_t i = 0; i < rows; ++i) {
      ASSERT_TRUE(t->Append({Value::Int(rng.UniformInt(0, 9)),
                             Value::Double(rng.Uniform(-50, 50)),
                             Value::String(cats[rng.UniformInt(0, 3)])})
                      .ok());
    }
    auto u = catalog_
                 .CreateTable("U", Schema({{"k", ValueType::kInt64},
                                           {"w", ValueType::kDouble}}),
                              RelationKind::kBase)
                 .value();
    size_t urows = static_cast<size_t>(rng.UniformInt(5, 60));
    for (size_t i = 0; i < urows; ++i) {
      ASSERT_TRUE(u->Append({Value::Int(rng.UniformInt(0, 9)),
                             Value::Double(rng.Uniform(0, 10))})
                      .ok());
    }
  }

  Table Run(PlanPtr plan) {
    CatalogSchemaResolver resolver(&catalog_);
    Binder binder(&resolver, &udfs_);
    EXPECT_TRUE(binder.Bind(plan.get()).ok());
    Executor exec(&catalog_, &udfs_);
    auto result = exec.ExecuteToTable(*plan);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  const Table& T() { return catalog_.Get("T").value()->current(); }
  const Table& U() { return catalog_.Get("U").value()->current(); }

  Catalog catalog_;
  UdfRegistry udfs_;
};

TEST_P(ExecutorProperties, FilterPartitionsInput) {
  auto pred = MakeBinary(BinaryOp::kGt, MakeColumnRef("v"),
                         MakeLiteral(Value::Double(0)));
  Table pos = Run(MakeFilter(MakeScan("T"), pred));
  Table neg = Run(MakeFilter(MakeScan("T"),
                             MakeUnary(UnaryOp::kNot, CloneExpr(pred))));
  EXPECT_EQ(pos.num_rows() + neg.num_rows(), T().num_rows());
}

TEST_P(ExecutorProperties, UnionWithSelfEqualsDistinct) {
  auto proj = [](PlanPtr in) {
    return MakeProject(in, {MakeColumnRef("k"), MakeColumnRef("s")},
                       {"k", "s"});
  };
  Table unioned = Run(MakeUnion({proj(MakeScan("T")), proj(MakeScan("T"))},
                                /*distinct=*/true));
  Table distinct = Run(MakeDistinct(proj(MakeScan("T"))));
  EXPECT_TRUE(unioned.SameContents(distinct));
}

TEST_P(ExecutorProperties, MinusSelfIsEmpty) {
  Table empty = Run(MakeMinus(MakeScan("T"), MakeScan("T")));
  EXPECT_EQ(empty.num_rows(), 0u);
}

TEST_P(ExecutorProperties, HashJoinCountMatchesHistogramProduct) {
  Table joined = Run(MakeJoin(
      MakeScan("T", VersionRef::Current(), "t"),
      MakeScan("U", VersionRef::Current(), "u"),
      {{MakeColumnRef("t", "k"), MakeColumnRef("u", "k")}}));
  std::map<int64_t, size_t> ht, hu;
  for (const Row& row : T().rows()) ++ht[row[0].int_value()];
  for (const Row& row : U().rows()) ++hu[row[0].int_value()];
  size_t expected = 0;
  for (const auto& [k, n] : ht) {
    auto it = hu.find(k);
    if (it != hu.end()) expected += n * it->second;
  }
  EXPECT_EQ(joined.num_rows(), expected);
}

TEST_P(ExecutorProperties, HashJoinEqualsNestedLoopJoin) {
  Table hash = Run(MakeJoin(
      MakeScan("T", VersionRef::Current(), "t"),
      MakeScan("U", VersionRef::Current(), "u"),
      {{MakeColumnRef("t", "k"), MakeColumnRef("u", "k")}}));
  Table nested = Run(MakeJoin(
      MakeScan("T", VersionRef::Current(), "t"),
      MakeScan("U", VersionRef::Current(), "u"), {},
      MakeBinary(BinaryOp::kEq, MakeColumnRef("t", "k"),
                 MakeColumnRef("u", "k"))));
  EXPECT_TRUE(hash.SameContents(nested));
}

TEST_P(ExecutorProperties, GroupSumsAddUpToGlobalSum) {
  std::vector<AggSpec> per_group;
  per_group.push_back({AggFunc::kSum, MakeColumnRef("v"), false, "sum"});
  Table groups = Run(MakeAggregate(MakeScan("T"), {MakeColumnRef("s")},
                                   {"s"}, per_group));
  std::vector<AggSpec> global;
  global.push_back({AggFunc::kSum, MakeColumnRef("v"), false, "sum"});
  Table total = Run(MakeAggregate(MakeScan("T"), {}, {}, global));
  double group_total = 0;
  for (const Row& row : groups.rows()) group_total += row[1].double_value();
  EXPECT_NEAR(group_total, total.row(0)[0].double_value(), 1e-6);
}

TEST_P(ExecutorProperties, OrderByIsSortedPermutation) {
  Table sorted = Run(MakeOrderBy(MakeScan("T"), {MakeColumnRef("v")}, {false}));
  EXPECT_EQ(sorted.num_rows(), T().num_rows());
  EXPECT_TRUE(sorted.SameContents(T()));
  size_t v = sorted.schema().IndexOf("v").value();
  for (size_t i = 1; i < sorted.num_rows(); ++i) {
    EXPECT_LE(sorted.row(i - 1)[v].double_value(),
              sorted.row(i)[v].double_value());
  }
}

TEST_P(ExecutorProperties, LimitIsPrefix) {
  Table limited = Run(MakeLimit(MakeScan("T"), 7));
  EXPECT_EQ(limited.num_rows(), std::min<size_t>(7, T().num_rows()));
  for (size_t i = 0; i < limited.num_rows(); ++i) {
    EXPECT_TRUE(RowsEqual(limited.row(i), T().row(i)));
  }
}

TEST_P(ExecutorProperties, LineageCoversEveryOutputRow) {
  auto plan = MakeProject(
      MakeFilter(MakeScan("T"), MakeBinary(BinaryOp::kGt, MakeColumnRef("v"),
                                           MakeLiteral(Value::Double(0)))),
      {MakeColumnRef("k")}, {"k"});
  CatalogSchemaResolver resolver(&catalog_);
  Binder binder(&resolver, &udfs_);
  ASSERT_TRUE(binder.Bind(plan.get()).ok());
  Executor exec(&catalog_, &udfs_);
  ExecOptions opts;
  opts.capture_lineage = true;
  auto result = exec.Execute(*plan, opts).value();
  ASSERT_EQ(result->lineage.size(), result->table.num_rows());
  for (const auto& entries : result->lineage) {
    EXPECT_FALSE(entries.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorProperties,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// ------------------------------------------------------------------- nfa

using NfaProperties = SeededTest;

TEST_P(NfaProperties, RandomStreamsKeepTableConsistent) {
  // Reference model of the drag pattern: C holds one row per DOWN plus one
  // per MOVE since the last DOWN; an alphabet event that cannot extend the
  // match clears it; UP commits.
  Rng rng(seed());
  Catalog catalog;
  UdfRegistry udfs = UdfRegistry::WithBuiltins();
  EventRecognizer recognizer(&catalog, &udfs);
  auto program = ParseProgram(
      "C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U "
      "RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy), "
      "(M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(
      recognizer.DefinePattern("C", program.value().statements[0].event).ok());
  auto table = catalog.Get("C").value();

  bool active = false;
  size_t expected_rows = 0;
  size_t commits = 0;

  for (int step = 0; step < 400; ++step) {
    int which = static_cast<int>(rng.UniformInt(0, 3));
    InputEvent event;
    switch (which) {
      case 0:
        event = InputEvent::MouseDown(step, rng.Uniform(0, 100),
                                      rng.Uniform(0, 100));
        break;
      case 1:
        event = InputEvent::MouseMove(step, rng.Uniform(0, 100),
                                      rng.Uniform(0, 100));
        break;
      case 2:
        event = InputEvent::MouseUp(step, rng.Uniform(0, 100),
                                    rng.Uniform(0, 100));
        break;
      default:
        event = InputEvent::KeyPress(step, "x");
        break;
    }
    auto outcomes = recognizer.Feed(event).value();
    // Reference transition.
    switch (which) {
      case 0:
        if (!active) {
          active = true;
          expected_rows = 1;  // the D tuple
        } else {
          active = false;  // reject: DOWN cannot extend DOWN...MOVE*
          expected_rows = 0;
        }
        break;
      case 1:
        if (active) ++expected_rows;
        break;
      case 2:
        if (active) {
          ++commits;
          active = false;
          // Committed rows stay until the next interaction starts.
        }
        // UP with no match is filtered; the table keeps its committed
        // contents.
        break;
      default:
        break;  // key press: filtered
    }
    if (active) {
      EXPECT_EQ(table->current().num_rows(), expected_rows)
          << "step " << step << " event " << which;
    } else if (which == 0) {
      // A DOWN that rejected an in-flight match leaves the table cleared.
      EXPECT_EQ(table->current().num_rows(), expected_rows)
          << "step " << step;
    }
    (void)outcomes;
  }
  EXPECT_GT(commits, 0u);  // random streams should commit at least once
}

INSTANTIATE_TEST_SUITE_P(Seeds, NfaProperties,
                         ::testing::Values(3, 7, 31, 127, 8191));

// --------------------------------------------------------------- wavelet

using WaveletProperties = SeededTest;

TEST_P(WaveletProperties, RoundTripEnergyAndMonotoneQuality) {
  Rng rng(seed());
  size_t n = static_cast<size_t>(rng.UniformInt(1, 300));
  std::vector<double> data;
  for (size_t i = 0; i < n; ++i) data.push_back(rng.Uniform(-100, 100));

  // Round trip.
  std::vector<double> coeffs = HaarForward(data);
  std::vector<double> back = HaarInverse(coeffs);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], data[i], 1e-8);

  // Energy preservation (orthonormality); data is zero-padded so the
  // padded energy equals the original energy.
  double e1 = 0, e2 = 0;
  for (double v : data) e1 += v * v;
  for (double v : coeffs) e2 += v * v;
  EXPECT_NEAR(e1, e2, 1e-6 * std::max(1.0, e1));

  // Quality curve: monotone, ends at exactly 1.
  ProgressiveEncoding enc(data);
  std::vector<double> curve = enc.UtilityCurve();
  for (size_t k = 1; k < curve.size(); ++k) {
    EXPECT_GE(curve[k], curve[k - 1] - 1e-9);
  }
  EXPECT_NEAR(curve.back(), 1.0, 1e-9);

  // Full prefix decodes to the exact data.
  std::vector<double> full = enc.DecodePrefix(enc.num_coefficients());
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(full[i], data[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaveletProperties,
                         ::testing::Values(1, 9, 42, 1000, 31337));

// ------------------------------------------------------------------ cube

using CubeProperties = SeededTest;

TEST_P(CubeProperties, MatchesDirectScanForRandomSelections) {
  Rng rng(seed());
  Table fact(Schema({{"a", ValueType::kInt64},
                     {"b", ValueType::kInt64},
                     {"c", ValueType::kString},
                     {"m", ValueType::kDouble}}));
  size_t rows = static_cast<size_t>(rng.UniformInt(50, 400));
  const char* cats[] = {"x", "y", "z"};
  for (size_t i = 0; i < rows; ++i) {
    fact.AppendUnchecked({Value::Int(rng.UniformInt(0, 5)),
                          Value::Int(rng.UniformInt(0, 8)),
                          Value::String(cats[rng.UniformInt(0, 2)]),
                          Value::Double(rng.Uniform(0, 10))});
  }
  CrossfilterCube cube =
      CrossfilterCube::Build(fact, {"a", "b", "c"}, "m").value();

  for (int trial = 0; trial < 5; ++trial) {
    // Random selection on 'b'.
    ValueSet sel;
    for (int64_t v = 0; v <= 8; ++v) {
      if (rng.Bernoulli(0.4)) sel.insert(Value::Int(v));
    }
    Table filtered = cube.FilteredGroupSums("a", "b", sel).value();
    std::map<int64_t, double> direct;
    for (const Row& row : fact.rows()) {
      if (sel.count(row[1]) == 0) continue;
      direct[row[0].int_value()] += row[3].double_value();
    }
    for (const Row& row : filtered.rows()) {
      double expected = 0;
      auto it = direct.find(row[0].int_value());
      if (it != direct.end()) expected = it->second;
      EXPECT_NEAR(row[1].double_value(), expected,
                  1e-6 * std::max(1.0, std::abs(expected)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CubeProperties,
                         ::testing::Values(4, 16, 64, 256));

// ------------------------------------------------------------- cc policy

using PolicyProperties = SeededTest;

TEST_P(PolicyProperties, RenderedPlusDroppedAccountsForAllResponses) {
  Rng rng(seed());
  for (CcPolicy policy : AllCcPolicies()) {
    ResponseCoordinator coordinator(policy);
    const size_t n = 30;
    for (size_t i = 0; i < n; ++i) coordinator.OnRequest(i);
    // Random arrival order.
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    for (size_t i = n - 1; i > 0; --i) {
      std::swap(order[i],
                order[static_cast<size_t>(rng.UniformInt(0, (int64_t)i))]);
    }
    std::vector<size_t> rendered;
    for (size_t id : order) {
      for (size_t r : coordinator.OnResponse(id)) rendered.push_back(r);
    }
    EXPECT_EQ(coordinator.rendered_count() + coordinator.dropped_count(), n)
        << CcPolicyToString(policy);
    EXPECT_EQ(rendered.size(), coordinator.rendered_count());
    switch (policy) {
      case CcPolicy::kNoCC:
      case CcPolicy::kMvcc:
        EXPECT_EQ(rendered.size(), n);
        break;
      case CcPolicy::kSerial: {
        // Everything renders, in exact request order.
        ASSERT_EQ(rendered.size(), n);
        for (size_t i = 0; i < n; ++i) EXPECT_EQ(rendered[i], i);
        break;
      }
      case CcPolicy::kDiscard: {
        // Rendered ids strictly increase.
        for (size_t i = 1; i < rendered.size(); ++i) {
          EXPECT_LT(rendered[i - 1], rendered[i]);
        }
        break;
      }
      case CcPolicy::kMostRecent:
        ASSERT_EQ(rendered.size(), 1u);
        EXPECT_EQ(rendered[0], n - 1);
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyProperties,
                         ::testing::Values(2, 12, 92, 365));

}  // namespace
}  // namespace dvms
