#include "core/dvms.h"
#include "parser/parser.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

class EngineFeaturesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Dvms::Options options;
    options.canvas_width = 100;
    options.canvas_height = 100;
    engine_ = std::make_unique<Dvms>(options);
    ASSERT_TRUE(engine_
                    ->CreateBaseTable("Sales",
                                      Schema({{"productId", ValueType::kInt64},
                                              {"region", ValueType::kString},
                                              {"revenue", ValueType::kDouble}}))
                    .ok());
    std::vector<Row> rows = {
        {Value::Int(1), Value::String("east"), Value::Double(100)},
        {Value::Int(2), Value::String("west"), Value::Double(200)},
        {Value::Int(3), Value::String("east"), Value::Double(300)},
        {Value::Int(4), Value::String("west"), Value::Double(400)},
    };
    ASSERT_TRUE(engine_->Insert("Sales", rows).ok());
  }

  std::unique_ptr<Dvms> engine_;
};

TEST_F(EngineFeaturesTest, DeleteWithPredicate) {
  ASSERT_TRUE(engine_
                  ->LoadProgram(
                      "big = SELECT productId FROM Sales WHERE revenue > 150;")
                  .ok());
  EXPECT_EQ(engine_->GetTable("big").value()->num_rows(), 3u);
  auto removed =
      engine_->Delete("Sales", ParseExpression("revenue >= 300").value());
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed.value(), 2u);
  EXPECT_EQ(engine_->GetTable("Sales").value()->num_rows(), 2u);
  // The dependent view updated too: only product 2 (200) remains big.
  EXPECT_EQ(engine_->GetTable("big").value()->num_rows(), 1u);
}

TEST_F(EngineFeaturesTest, DeleteAllRows) {
  auto removed = engine_->Delete("Sales", nullptr);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed.value(), 4u);
  EXPECT_EQ(engine_->GetTable("Sales").value()->num_rows(), 0u);
}

TEST_F(EngineFeaturesTest, DeleteRejectsViews) {
  ASSERT_TRUE(
      engine_->LoadProgram("v = SELECT productId FROM Sales;").ok());
  EXPECT_FALSE(engine_->Delete("v", nullptr).ok());
  EXPECT_FALSE(engine_->Delete("missing", nullptr).ok());
}

TEST_F(EngineFeaturesTest, DeleteStatementThroughProgram) {
  ASSERT_TRUE(
      engine_->LoadProgram("DELETE FROM Sales WHERE region = 'east';").ok());
  EXPECT_EQ(engine_->GetTable("Sales").value()->num_rows(), 2u);
}

TEST_F(EngineFeaturesTest, HavingFiltersGroups) {
  Table t = engine_
                ->Query("SELECT region, SUM(revenue) AS total FROM Sales "
                        "GROUP BY region HAVING SUM(revenue) > 450")
                .value();
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.At(0, "region").value().string_value(), "west");
}

TEST_F(EngineFeaturesTest, HavingWithHiddenAggregate) {
  // The HAVING aggregate is not in the select list.
  Table t = engine_
                ->Query("SELECT region FROM Sales "
                        "GROUP BY region HAVING COUNT(*) >= 2 AND "
                        "MIN(revenue) < 150")
                .value();
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.At(0, "region").value().string_value(), "east");
  // The hidden aggregate columns are projected away.
  EXPECT_EQ(t.schema().num_columns(), 1u);
}

TEST_F(EngineFeaturesTest, HavingReferencingGroupExpr) {
  Table t = engine_
                ->Query("SELECT region, COUNT(*) AS n FROM Sales "
                        "GROUP BY region HAVING region = 'west'")
                .value();
  ASSERT_EQ(t.num_rows(), 1u);
}

TEST_F(EngineFeaturesTest, SelectDistinct) {
  Table t = engine_->Query("SELECT DISTINCT region FROM Sales").value();
  EXPECT_EQ(t.num_rows(), 2u);
  Table all = engine_->Query("SELECT region FROM Sales").value();
  EXPECT_EQ(all.num_rows(), 4u);
}

TEST_F(EngineFeaturesTest, SelectDistinctWithOrderBy) {
  Table t = engine_
                ->Query("SELECT DISTINCT region FROM Sales ORDER BY region DESC")
                .value();
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.row(0)[0].string_value(), "west");
}

TEST_F(EngineFeaturesTest, UndoRedoRoundTrip) {
  const char* program = R"(
    C = EVENT MOUSE_DOWN AS D, MOUSE_UP AS U RETURN (D.t, D.x, D.y);
    clicks = SELECT COUNT(*) AS n FROM C;
  )";
  ASSERT_TRUE(engine_->LoadProgram(program).ok());
  auto clicks = [this]() {
    return engine_->GetTable("clicks").value()->row(0)[0].int_value();
  };
  EXPECT_EQ(clicks(), 0);

  // Interaction 1 commits one click.
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseDown(0, 10, 10)).ok());
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseUp(1, 10, 10)).ok());
  EXPECT_EQ(clicks(), 1);

  // Undo restores the pre-interaction state (empty C); views follow.
  ASSERT_TRUE(engine_->Undo().ok());
  EXPECT_EQ(clicks(), 0);
  EXPECT_TRUE(engine_->CanRedo());

  // Redo returns to the post-interaction state.
  ASSERT_TRUE(engine_->Redo().ok());
  EXPECT_EQ(clicks(), 1);
  EXPECT_FALSE(engine_->CanRedo());
  EXPECT_FALSE(engine_->Redo().ok());
}

TEST_F(EngineFeaturesTest, UndoDepthLimitedByHistory) {
  ASSERT_TRUE(
      engine_->LoadProgram("v = SELECT productId FROM Sales;").ok());
  // Only the initial commit exists: one Undo step back to the empty
  // pre-insert version may or may not exist depending on history; drain
  // until exhausted and expect a clean error after.
  size_t undone = 0;
  while (engine_->CanUndo() && undone < 32) {
    ASSERT_TRUE(engine_->Undo().ok());
    ++undone;
  }
  EXPECT_FALSE(engine_->Undo().ok());
}

TEST_F(EngineFeaturesTest, DumpStateListsRelations) {
  ASSERT_TRUE(engine_
                  ->LoadProgram(
                      "C = EVENT MOUSE_DOWN AS D, MOUSE_UP AS U RETURN (D.t);"
                      "v = SELECT productId FROM Sales;")
                  .ok());
  std::string state = engine_->DumpState();
  EXPECT_NE(state.find("Sales [BASE] 4 rows"), std::string::npos);
  EXPECT_NE(state.find("C [EVENT]"), std::string::npos);
  EXPECT_NE(state.find("v [VIEW]"), std::string::npos);
  EXPECT_NE(state.find("patterns:"), std::string::npos);
}

TEST_F(EngineFeaturesTest, ExplainViewShowsPlanAndDeps) {
  ASSERT_TRUE(engine_
                  ->LoadProgram(
                      "v = SELECT productId FROM Sales WHERE revenue > 150;")
                  .ok());
  std::string explained = engine_->ExplainView("v").value();
  EXPECT_NE(explained.find("Scan Sales"), std::string::npos);
  EXPECT_NE(explained.find("Filter"), std::string::npos);
  EXPECT_NE(explained.find("reads (current): Sales"), std::string::npos);
  EXPECT_FALSE(engine_->ExplainView("nope").ok());
}

TEST_F(EngineFeaturesTest, NewScaleUdfs) {
  Table t = engine_
                ->Query("SELECT log_scale(100, 1, 10000, 0, 100) AS lg, "
                        "sqrt_scale(25, 0, 100, 0, 100) AS sq, "
                        "lerp_color(0.5, '#000000', '#ff0000') AS c "
                        "FROM Sales LIMIT 1")
                .value();
  EXPECT_DOUBLE_EQ(t.At(0, "lg").value().double_value(), 50.0);
  EXPECT_DOUBLE_EQ(t.At(0, "sq").value().double_value(), 50.0);
  EXPECT_EQ(t.At(0, "c").value().string_value(), "#800000");
}

TEST_F(EngineFeaturesTest, LogScaleRejectsNonPositiveDomain) {
  auto r = engine_->Query(
      "SELECT log_scale(revenue, 0, 100, 0, 10) AS x FROM Sales");
  EXPECT_FALSE(r.ok());
}

TEST_F(EngineFeaturesTest, LerpColorEndpointsAndClamping) {
  Table t = engine_
                ->Query("SELECT lerp_color(0, '#102030', '#405060') AS a, "
                        "lerp_color(1, '#102030', '#405060') AS b, "
                        "lerp_color(2.5, '#102030', '#405060') AS c "
                        "FROM Sales LIMIT 1")
                .value();
  EXPECT_EQ(t.At(0, "a").value().string_value(), "#102030");
  EXPECT_EQ(t.At(0, "b").value().string_value(), "#405060");
  EXPECT_EQ(t.At(0, "c").value().string_value(), "#405060");
}

}  // namespace
}  // namespace dvms
