// Storage fault-domain coverage: the FaultEnv decorator (spec parsing,
// deterministic schedules, error tagging), the shared ReadFully/WriteFully
// retry helpers, the fsyncgate regression (a failed WAL fsync is never
// followed by an acknowledged commit on the affected segment without
// re-establishing durability by rewrite), degraded read-only mode under
// simulated ENOSPC (reads keep serving, mutations reject with
// kStorageDegraded, a bounded-backoff probe auto-recovers), replica
// behaviour while the primary's disk is full, and a seeded chaos
// differential proving no acknowledged commit is ever silently lost under
// full-kind injection. The integrity scrubber has its own file
// (scrub_test.cc).

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/fault.h"
#include "core/dvms.h"
#include "core/session.h"
#include "durability/wal.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static int counter = 0;
    path_ = fs::path(::testing::TempDir()) /
            ("dvms_" + tag + "_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  fs::path path_;
};

uint32_t OpBit(IoOp op) { return 1u << static_cast<uint32_t>(op); }
uint32_t KindBit(IoErrorKind kind) {
  return 1u << static_cast<uint32_t>(kind);
}

std::unique_ptr<Dvms> MakeEngine(const std::string& data_dir) {
  Dvms::Options options;
  options.canvas_width = 64;
  options.canvas_height = 64;
  options.num_threads = 1;
  options.data_dir = data_dir;
  options.wal_fsync = "always";  // acknowledged == synced
  options.snapshot_interval = 0;
  return std::make_unique<Dvms>(options);
}

Status Seed(Dvms& engine) {
  Schema schema({{"id", ValueType::kInt64}, {"v", ValueType::kDouble}});
  DVMS_RETURN_IF_ERROR(engine.CreateBaseTable("Pts", schema));
  std::vector<Row> rows;
  for (int64_t i = 0; i < 8; ++i) {
    rows.push_back({Value::Int(i), Value::Double((i * 37) % 101)});
  }
  return engine.Insert("Pts", std::move(rows));
}

std::set<int64_t> Ids(Dvms& engine) {
  std::set<int64_t> out;
  Result<Table> table = engine.Query("SELECT id FROM Pts ORDER BY id");
  EXPECT_TRUE(table.ok()) << table.status().message();
  if (!table.ok()) return out;
  for (const Row& row : table.value().rows()) {
    out.insert(row[0].int_value());
  }
  return out;
}

// ---- Spec parsing ----

TEST(EnvFaultSpecTest, ParsesSeedAndRate) {
  Result<IoFaultConfig> cfg = ParseIoFaultSpec("42:0.05");
  ASSERT_TRUE(cfg.ok()) << cfg.status().message();
  EXPECT_EQ(cfg.value().seed, 42u);
  EXPECT_DOUBLE_EQ(cfg.value().rate, 0.05);
  for (size_t i = 0; i < kNumIoOps; ++i) {
    EXPECT_TRUE(cfg.value().OpEnabled(static_cast<IoOp>(i)));
  }
  for (size_t i = 0; i < kNumIoErrorKinds; ++i) {
    EXPECT_TRUE(cfg.value().KindEnabled(static_cast<IoErrorKind>(i)));
  }
}

TEST(EnvFaultSpecTest, OpTokensRestrictOpsOnly) {
  Result<IoFaultConfig> cfg = ParseIoFaultSpec("7:1.0:write,fsync");
  ASSERT_TRUE(cfg.ok()) << cfg.status().message();
  EXPECT_TRUE(cfg.value().OpEnabled(IoOp::kWrite));
  EXPECT_TRUE(cfg.value().OpEnabled(IoOp::kFsync));
  EXPECT_FALSE(cfg.value().OpEnabled(IoOp::kOpen));
  EXPECT_FALSE(cfg.value().OpEnabled(IoOp::kRename));
  // Kind class untouched by op tokens.
  EXPECT_TRUE(cfg.value().KindEnabled(IoErrorKind::kEio));
  EXPECT_TRUE(cfg.value().KindEnabled(IoErrorKind::kEnospc));
}

TEST(EnvFaultSpecTest, KindTokensRestrictKindsOnly) {
  Result<IoFaultConfig> cfg = ParseIoFaultSpec("3:0.5:enospc");
  ASSERT_TRUE(cfg.ok()) << cfg.status().message();
  EXPECT_TRUE(cfg.value().KindEnabled(IoErrorKind::kEnospc));
  EXPECT_FALSE(cfg.value().KindEnabled(IoErrorKind::kEio));
  EXPECT_FALSE(cfg.value().KindEnabled(IoErrorKind::kFsyncFail));
  EXPECT_TRUE(cfg.value().OpEnabled(IoOp::kWrite));
  EXPECT_TRUE(cfg.value().OpEnabled(IoOp::kRead));
}

TEST(EnvFaultSpecTest, MalformedSpecsAreRejected) {
  EXPECT_FALSE(ParseIoFaultSpec("").ok());
  EXPECT_FALSE(ParseIoFaultSpec("notanumber:0.5").ok());
  EXPECT_FALSE(ParseIoFaultSpec("1").ok());
  EXPECT_FALSE(ParseIoFaultSpec("1:2.5").ok());       // rate out of range
  EXPECT_FALSE(ParseIoFaultSpec("1:0.5:bogus").ok());  // unknown token
}

// ---- Deterministic schedules + error tagging ----

TEST(EnvFaultTest, ScheduleIsDeterministicAcrossReset) {
  TempDir dir("envdet");
  IoFaultConfig cfg;
  cfg.seed = 1234;
  cfg.rate = 0.3;
  cfg.op_mask = OpBit(IoOp::kWrite);
  cfg.kind_mask = KindBit(IoErrorKind::kEio);
  FaultEnv env(env::Posix(), cfg);

  auto run = [&]() {
    std::vector<bool> outcomes;
    const std::string path = dir.str() + "/det.bin";
    Result<int> fd = env.Open(path, O_CREAT | O_TRUNC | O_WRONLY, 0644);
    EXPECT_TRUE(fd.ok());
    char byte = 'x';
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(env.Write(fd.value(), &byte, 1, path).ok());
    }
    env.Close(fd.value());
    return outcomes;
  };

  std::vector<bool> first = run();
  uint64_t first_injections = env.injections();
  EXPECT_GT(first_injections, 0u);
  EXPECT_LT(first_injections, 64u);
  env.Reset();
  EXPECT_EQ(env.injections(), 0u);
  std::vector<bool> second = run();
  EXPECT_EQ(first, second);  // same seed, same per-op indices, same schedule
  EXPECT_EQ(env.injections(), first_injections);
}

TEST(EnvFaultTest, InjectedErrorsAreTaggedAndClassified) {
  IoFaultConfig cfg;
  cfg.seed = 9;
  cfg.rate = 1.0;
  cfg.op_mask = OpBit(IoOp::kWrite);
  cfg.kind_mask = KindBit(IoErrorKind::kEnospc);
  FaultEnv env(env::Posix(), cfg);
  char byte = 'x';
  Result<size_t> wrote = env.Write(-1, &byte, 1, "/fault/probe");
  ASSERT_FALSE(wrote.ok());
  const Status& st = wrote.status();
  EXPECT_TRUE(env::IsInjectedIoFault(st)) << st.message();
  EXPECT_TRUE(env::IsOutOfSpace(st)) << st.message();
  EXPECT_TRUE(env::IsEnvIoError(st)) << st.message();
  EXPECT_FALSE(env::IsNotFound(st));
}

TEST(EnvFaultTest, DisarmStopsInjectionRearmResumes) {
  IoFaultConfig cfg;
  cfg.seed = 5;
  cfg.rate = 1.0;
  cfg.op_mask = OpBit(IoOp::kFsync);
  FaultEnv env(env::Posix(), cfg);
  EXPECT_FALSE(env.Fsync(-1, "x").ok());
  env.Disarm();
  // With injection off the call reaches the real fsync(-1) — EBADF, which
  // must NOT carry the injection tag.
  Status real = env.Fsync(-1, "x");
  ASSERT_FALSE(real.ok());
  EXPECT_FALSE(env::IsInjectedIoFault(real));
  env.Rearm();
  Status again = env.Fsync(-1, "x");
  ASSERT_FALSE(again.ok());
  EXPECT_TRUE(env::IsInjectedIoFault(again));
}

TEST(EnvFaultTest, WriteFullyAbsorbsShortWrites) {
  TempDir dir("shortw");
  IoFaultConfig cfg;
  cfg.seed = 2;
  cfg.rate = 1.0;
  cfg.op_mask = OpBit(IoOp::kWrite);
  cfg.kind_mask = KindBit(IoErrorKind::kShortWrite);
  cfg.max_injections = 3;  // three short landings, then clean writes
  FaultEnv env(env::Posix(), cfg);
  const std::string path = dir.str() + "/short.bin";
  Result<int> fd = env.Open(path, O_CREAT | O_TRUNC | O_WRONLY, 0644);
  ASSERT_TRUE(fd.ok());
  std::string payload(1000, 'q');
  int fd_value = fd.value();
  ASSERT_TRUE(
      env::WriteFully(&env, fd_value, payload.data(), payload.size(), path)
          .ok());
  env.Close(fd_value);
  EXPECT_EQ(env.injections(), 3u);
  EXPECT_EQ(fs::file_size(path), payload.size());
}

TEST(EnvFaultTest, ReadFullyReportsCleanEofVsPartialRead) {
  TempDir dir("readf");
  const std::string path = dir.str() + "/r.bin";
  Env* env = env::Posix();
  {
    Result<int> fd = env->Open(path, O_CREAT | O_TRUNC | O_WRONLY, 0644);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(env::WriteFully(env, fd.value(), "abcde", 5, path).ok());
    env->Close(fd.value());
  }
  Result<int> fd = env->Open(path, O_RDONLY, 0);
  ASSERT_TRUE(fd.ok());
  char buf[8];
  size_t got = 0;
  ASSERT_TRUE(env::ReadFully(env, fd.value(), buf, 5, path, &got).ok());
  EXPECT_EQ(got, 5u);  // full object
  ASSERT_TRUE(env::ReadFully(env, fd.value(), buf, 8, path, &got).ok());
  EXPECT_EQ(got, 0u);  // clean EOF boundary
  ASSERT_TRUE(env->Seek(fd.value(), 2, path).ok());
  ASSERT_TRUE(env::ReadFully(env, fd.value(), buf, 8, path, &got).ok());
  EXPECT_EQ(got, 3u);  // torn object: partial read short of the request
  env->Close(fd.value());
}

// ---- fsyncgate regression ----

// A failed WAL fsync may have dropped the dirty pages, so the engine must
// (a) report the triggering mutation as failed, (b) re-establish a durable
// log by rotating to a fresh segment — never by retrying fsync on the old
// fd — and (c) acknowledge later commits only against the rewritten log.
// Restarting must recover exactly the acknowledged set.
TEST(EnvFaultTest, FailedFsyncNeverAcknowledgesWithoutRotation) {
  TempDir dir("fsyncgate");
  auto engine = MakeEngine(dir.str());
  ASSERT_TRUE(engine->recovery_status().ok());
  ASSERT_TRUE(Seed(*engine).ok());

  IoFaultConfig cfg;
  cfg.seed = 77;
  cfg.rate = 1.0;
  cfg.op_mask = OpBit(IoOp::kFsync);
  cfg.kind_mask = KindBit(IoErrorKind::kFsyncFail);
  cfg.max_injections = 1;  // exactly one failed fsync
  FaultEnv fault_env(env::Posix(), cfg);
  std::set<int64_t> acknowledged = Ids(*engine);
  {
    ScopedEnv scoped(&fault_env);
    Status st = engine->Insert(
        "Pts", {{Value::Int(100), Value::Double(1.0)}});
    ASSERT_FALSE(st.ok());  // the un-durable mutation must not be acked
    EXPECT_EQ(fault_env.injections(), 1u);
    EXPECT_GE(engine->durability_stats().fsync_rotations, 1u);
    // The log re-established durability by rewrite; the next commit is
    // acknowledged against the fresh segment.
    ASSERT_TRUE(engine->Insert(
                          "Pts", {{Value::Int(200), Value::Double(2.0)}})
                    .ok());
    acknowledged.insert(200);
    EXPECT_EQ(Ids(*engine), acknowledged);  // 100 rolled back, 200 applied
  }

  engine.reset();
  auto recovered = MakeEngine(dir.str());
  ASSERT_TRUE(recovered->recovery_status().ok());
  EXPECT_EQ(Ids(*recovered), acknowledged);
}

// ---- Degraded read-only mode ----

TEST(DegradedModeTest, EnospcDegradesToReadOnlyAndProbeRecovers) {
  TempDir dir("degraded");
  auto engine = MakeEngine(dir.str());
  ASSERT_TRUE(engine->recovery_status().ok());
  ASSERT_TRUE(Seed(*engine).ok());
  std::set<int64_t> before = Ids(*engine);

  IoFaultConfig cfg;
  cfg.seed = 11;
  cfg.rate = 1.0;
  cfg.op_mask = OpBit(IoOp::kWrite);
  cfg.kind_mask = KindBit(IoErrorKind::kEnospc);
  FaultEnv fault_env(env::Posix(), cfg);
  ScopedEnv scoped(&fault_env);

  // First mutation observes the full disk and flips the engine degraded.
  Status st = engine->Insert("Pts", {{Value::Int(300), Value::Double(3.0)}});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kStorageDegraded) << st.message();
  EXPECT_TRUE(engine->storage_degraded());
  Dvms::StorageStats stats = engine->storage_stats();
  EXPECT_EQ(stats.degraded_entries, 1u);
  EXPECT_FALSE(stats.degraded_reason.empty());

  // Reads — direct, session snapshot, and the system relation — keep
  // serving while every mutation path rejects.
  EXPECT_EQ(Ids(*engine), before);
  {
    Session session(engine.get());
    Result<Table> via_session = session.Query("SELECT id FROM Pts");
    ASSERT_TRUE(via_session.ok()) << via_session.status().message();
    EXPECT_EQ(via_session.value().num_rows(), before.size());
    Result<Table> storage = session.Query(
        "SELECT name, value FROM dvms_storage WHERE name = 'degraded'");
    ASSERT_TRUE(storage.ok()) << storage.status().message();
    ASSERT_EQ(storage.value().num_rows(), 1u);
    EXPECT_EQ(storage.value().row(0)[1].int_value(), 1);
  }
  Status rejected =
      engine->Insert("Pts", {{Value::Int(301), Value::Double(3.1)}});
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kStorageDegraded);
  EXPECT_NE(rejected.message().find("degraded read-only"), std::string::npos);

  // "The disk frees up": disarm injection and retry until the backoff
  // probe (1 ms floor) re-enables writes.
  fault_env.Disarm();
  bool recovered = false;
  for (int i = 0; i < 4000 && !recovered; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    recovered =
        engine->Insert("Pts", {{Value::Int(400), Value::Double(4.0)}}).ok();
  }
  ASSERT_TRUE(recovered);
  EXPECT_FALSE(engine->storage_degraded());
  stats = engine->storage_stats();
  EXPECT_EQ(stats.degraded_exits, 1u);
  EXPECT_GT(stats.space_probes, 0u);
  EXPECT_TRUE(stats.degraded_reason.empty());
  before.insert(400);
  EXPECT_EQ(Ids(*engine), before);

  // The recovered log is coherent: a restart sees exactly the
  // acknowledged rows.
  engine.reset();
  auto restarted = MakeEngine(dir.str());
  ASSERT_TRUE(restarted->recovery_status().ok());
  EXPECT_EQ(Ids(*restarted), before);
}

TEST(DegradedModeTest, LogicalDurabilityFaultsDoNotDegrade) {
  // FaultSite::kDurabilityIo models a pre-sync transient — rollbackable,
  // NOT an out-of-space condition — so it must never flip the engine into
  // degraded mode.
  TempDir dir("logical");
  auto engine = MakeEngine(dir.str());
  ASSERT_TRUE(engine->recovery_status().ok());
  ASSERT_TRUE(Seed(*engine).ok());
  FaultConfig config;
  config.seed = 3;
  config.rate = 1.0;
  ScopedFaultInjector scoped(config);
  Status st = engine->Insert("Pts", {{Value::Int(500), Value::Double(5.0)}});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.code(), StatusCode::kStorageDegraded);
  EXPECT_FALSE(engine->storage_degraded());
}

// ---- Replication under a full disk ----

Dvms::Options ReplicaOptions(const std::string& primary_dir) {
  Dvms::Options options;
  options.canvas_width = 64;
  options.canvas_height = 64;
  options.num_threads = 1;
  options.replica_of = primary_dir;
  options.replica_poll_ms = 1;
  return options;
}

void AwaitReplicaRows(Dvms& replica, size_t want) {
  for (int i = 0; i < 20000; ++i) {
    Result<Table> table = replica.Query("SELECT id FROM Pts");
    if (table.ok() && table.value().num_rows() >= want) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "replica never caught up to " << want << " rows";
}

TEST(DegradedModeTest, ReplicaKeepsServingWhilePrimaryIsDegraded) {
  TempDir dir("repl_degraded");
  auto primary = MakeEngine(dir.str());
  ASSERT_TRUE(primary->recovery_status().ok());
  ASSERT_TRUE(Seed(*primary).ok());
  ASSERT_TRUE(primary->FlushWal().ok());

  Dvms replica(ReplicaOptions(dir.str()));
  ASSERT_TRUE(replica.recovery_status().ok());
  AwaitReplicaRows(replica, 8);
  std::set<int64_t> stale = Ids(replica);

  IoFaultConfig cfg;
  cfg.seed = 21;
  cfg.rate = 1.0;
  cfg.op_mask = OpBit(IoOp::kWrite);
  cfg.kind_mask = KindBit(IoErrorKind::kEnospc);
  FaultEnv fault_env(env::Posix(), cfg);
  {
    ScopedEnv scoped(&fault_env);
    Status st =
        primary->Insert("Pts", {{Value::Int(600), Value::Double(6.0)}});
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kStorageDegraded);
    // The replica's view is stale-but-consistent: exactly the acknowledged
    // prefix, never a torn suffix.
    EXPECT_EQ(Ids(replica), stale);

    // Disarm models the disk freeing; the primary recovers and the
    // replica tails the new commit.
    fault_env.Disarm();
    bool recovered = false;
    for (int i = 0; i < 4000 && !recovered; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      recovered =
          primary->Insert("Pts", {{Value::Int(601), Value::Double(6.1)}})
              .ok();
    }
    ASSERT_TRUE(recovered);
    ASSERT_TRUE(primary->FlushWal().ok());
    AwaitReplicaRows(replica, stale.size() + 1);
  }
}

TEST(DegradedModeTest, PromotionDuringEnospcServesReadsAndDegradesWrites) {
  TempDir dir("promote_enospc");
  auto primary = MakeEngine(dir.str());
  ASSERT_TRUE(primary->recovery_status().ok());
  ASSERT_TRUE(Seed(*primary).ok());
  ASSERT_TRUE(primary->FlushWal().ok());

  Dvms replica(ReplicaOptions(dir.str()));
  ASSERT_TRUE(replica.recovery_status().ok());
  AwaitReplicaRows(replica, 8);
  std::set<int64_t> inherited = Ids(replica);
  primary.reset();  // the old primary is gone; failover begins

  IoFaultConfig cfg;
  cfg.seed = 31;
  cfg.rate = 1.0;
  cfg.op_mask = OpBit(IoOp::kWrite);
  cfg.kind_mask = KindBit(IoErrorKind::kEnospc);
  FaultEnv fault_env(env::Posix(), cfg);
  ScopedEnv scoped(&fault_env);

  // Promotion itself is recovery work (fault-exempt); the storm hits the
  // first post-promotion mutation instead, which must degrade gracefully
  // while every read keeps serving the inherited state.
  ASSERT_TRUE(replica.Promote().ok());
  Status st = replica.Insert("Pts", {{Value::Int(700), Value::Double(7.0)}});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kStorageDegraded);
  EXPECT_TRUE(replica.storage_degraded());
  EXPECT_EQ(Ids(replica), inherited);

  fault_env.Disarm();
  bool recovered = false;
  for (int i = 0; i < 4000 && !recovered; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    recovered =
        replica.Insert("Pts", {{Value::Int(701), Value::Double(7.1)}}).ok();
  }
  ASSERT_TRUE(recovered);
  EXPECT_FALSE(replica.storage_degraded());
}

// ---- Seeded chaos differential ----

// Under full-kind injection the engine may fail mutations, degrade, or
// rotate segments — but it must never crash and never silently lose an
// acknowledged commit: after the storm, a clean restart recovers a
// superset of everything that was acknowledged.
TEST(EnvFaultChaosTest, AcknowledgedCommitsSurviveInjectionStorm) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    TempDir dir("chaos_" + std::to_string(seed));
    std::set<int64_t> acknowledged;
    {
      Dvms::Options options;
      options.canvas_width = 64;
      options.canvas_height = 64;
      options.num_threads = 1;
      options.data_dir = dir.str();
      options.wal_fsync = "always";
      options.snapshot_interval = 4;  // exercise the snapshot path too
      Dvms engine(options);
      ASSERT_TRUE(engine.recovery_status().ok());
      Schema schema({{"id", ValueType::kInt64}, {"v", ValueType::kDouble}});
      ASSERT_TRUE(engine.CreateBaseTable("Pts", schema).ok());

      IoFaultConfig cfg;
      cfg.seed = seed;
      cfg.rate = 0.25;
      cfg.op_mask = OpBit(IoOp::kWrite) | OpBit(IoOp::kFsync) |
                    OpBit(IoOp::kRename);
      FaultEnv fault_env(env::Posix(), cfg);
      {
        ScopedEnv scoped(&fault_env);
        for (int64_t i = 0; i < 40; ++i) {
          Status st = engine.Insert(
              "Pts", {{Value::Int(i), Value::Double(i * 0.5)}});
          if (st.ok()) acknowledged.insert(i);
        }
      }
    }
    Dvms::Options options;
    options.canvas_width = 64;
    options.canvas_height = 64;
    options.num_threads = 1;
    options.data_dir = dir.str();
    options.wal_fsync = "always";
    options.snapshot_interval = 0;
    Dvms recovered(options);
    ASSERT_TRUE(recovered.recovery_status().ok())
        << "seed " << seed << ": " << recovered.recovery_status().message();
    std::set<int64_t> persisted = Ids(recovered);
    for (int64_t id : acknowledged) {
      EXPECT_TRUE(persisted.count(id))
          << "seed " << seed << " lost acknowledged row " << id;
    }
  }
}

}  // namespace
}  // namespace dvms
