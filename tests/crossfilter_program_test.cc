// Integration test for the Figure 1 crossfilter program: the full DeVIL
// pipeline — brush events on the year chart, selection via a band lookup
// table, four pairs of linked group-by views, and rect-mark rendering.

#include "core/dvms.h"
#include "workload/tpch.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

class CrossfilterProgramTest : public ::testing::Test {
 protected:
  static constexpr double kYearX0 = 420, kYearX1 = 780;

  void SetUp() override {
    Dvms::Options options;
    options.canvas_width = 800;
    options.canvas_height = 600;
    engine_ = std::make_unique<Dvms>(options);

    TpchConfig tpch;
    tpch.num_rows = 2000;
    Table sales = GenerateTpchSales(tpch);
    ASSERT_TRUE(engine_->CreateBaseTable("Sales", sales.schema()).ok());
    ASSERT_TRUE(engine_->Insert("Sales", sales.rows()).ok());

    ASSERT_TRUE(engine_
                    ->CreateBaseTable("year_bands",
                                      Schema({{"year", ValueType::kInt64},
                                              {"x0", ValueType::kDouble},
                                              {"x1", ValueType::kDouble}}))
                    .ok());
    std::vector<Row> bands;
    double band = (kYearX1 - kYearX0) / 7.0;
    for (int y = 0; y < 7; ++y) {
      bands.push_back({Value::Int(1992 + y),
                       Value::Double(kYearX0 + y * band),
                       Value::Double(kYearX0 + (y + 1) * band)});
    }
    ASSERT_TRUE(engine_->Insert("year_bands", bands).ok());
    ASSERT_TRUE(engine_->CreateScale("chart_scale", 0, 1e8, 0, 240).ok());

    const char* program = R"(
      C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U
          WHERE D.x > 420 AND D.y < 280
          RETURN (D.t, D.x AS x, D.x AS x2),
                 (M.t, D.x AS x, M.x AS x2);
      C_RANGE = SELECT min2(x, x2) AS lo, max2(x, x2) AS hi
        FROM C ORDER BY t DESC LIMIT 1;
      selected_years = SELECT yb.year AS year
        FROM C_RANGE, year_bands AS yb
        WHERE yb.x1 >= C_RANGE.lo AND yb.x0 <= C_RANGE.hi;
      rev_region   = SELECT region, SUM(revenue) AS revenue FROM Sales
                     GROUP BY region;
      rev_region_f = SELECT region, SUM(revenue) AS revenue FROM Sales
                     WHERE year IN selected_years GROUP BY region;
      REGION_BARS = SELECT
          band_scale(r.revenue * 0, 5, 20.0, 380.0, 0.2) AS x,
          280.0 - linear_scale(r.revenue, s.domain_min, s.domain_max,
                               s.range_min, s.range_max) AS y,
          band_width(5, 20.0, 380.0, 0.2) AS width,
          linear_scale(r.revenue, s.domain_min, s.domain_max,
                       s.range_min, s.range_max) AS height,
          'green' AS fill
        FROM rev_region_f AS r, chart_scale AS s;
      P = render(SELECT * FROM REGION_BARS);
    )";
    ASSERT_TRUE(engine_->LoadProgram(program).ok());
  }

  void BrushYears(int first, int last) {
    double band = (kYearX1 - kYearX0) / 7.0;
    double lo = kYearX0 + (first - 1992) * band + 2;
    double hi = kYearX0 + (last - 1991) * band - 2;
    ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseDown(0, lo, 100)).ok());
    ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseMove(1, hi, 100)).ok());
    ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseUp(2, hi, 100)).ok());
  }

  std::unique_ptr<Dvms> engine_;
};

TEST_F(CrossfilterProgramTest, SelectionMapsPixelsToYears) {
  BrushYears(1997, 1998);
  const Table* years = engine_->GetTable("selected_years").value();
  ASSERT_EQ(years->num_rows(), 2u);
  EXPECT_EQ(years->row(0)[0].int_value(), 1997);
  EXPECT_EQ(years->row(1)[0].int_value(), 1998);
}

TEST_F(CrossfilterProgramTest, FilteredSumsAreSubsetOfTotals) {
  BrushYears(1995, 1996);
  Table totals = engine_->Query(
      "SELECT region, SUM(revenue) AS r FROM Sales GROUP BY region").value();
  const Table* filtered = engine_->GetTable("rev_region_f").value();
  ASSERT_EQ(filtered->num_rows(), totals.num_rows());
  for (size_t i = 0; i < totals.num_rows(); ++i) {
    double f = filtered->row(i)[1].double_value();
    double t = totals.row(i)[1].double_value();
    EXPECT_GT(f, 0);
    EXPECT_LT(f, t);
  }
}

TEST_F(CrossfilterProgramTest, FilteredSumsMatchDirectQuery) {
  BrushYears(1997, 1998);
  Table reference = engine_->Query(
      "SELECT region, SUM(revenue) AS revenue FROM Sales "
      "WHERE year IN selected_years GROUP BY region").value();
  const Table* filtered = engine_->GetTable("rev_region_f").value();
  ASSERT_EQ(filtered->num_rows(), reference.num_rows());
  for (size_t i = 0; i < reference.num_rows(); ++i) {
    EXPECT_NEAR(filtered->row(i)[1].double_value(),
                reference.row(i)[1].double_value(),
                1e-6 * reference.row(i)[1].double_value());
  }
}

TEST_F(CrossfilterProgramTest, BrushOutsideYearChartIsFiltered) {
  // The spatial gate (D.x > 420 AND D.y < 280) keeps brushes elsewhere
  // from starting the interaction.
  ASSERT_TRUE(engine_->PushEvent(InputEvent::MouseDown(0, 100, 100)).ok());
  EXPECT_EQ(engine_->stats().transactions_started, 0u);
  EXPECT_EQ(engine_->GetTable("selected_years").value()->num_rows(), 0u);
}

TEST_F(CrossfilterProgramTest, NewBrushReplacesSelection) {
  BrushYears(1992, 1993);
  EXPECT_EQ(engine_->GetTable("selected_years").value()->num_rows(), 2u);
  BrushYears(1998, 1998);
  const Table* years = engine_->GetTable("selected_years").value();
  ASSERT_EQ(years->num_rows(), 1u);
  EXPECT_EQ(years->row(0)[0].int_value(), 1998);
}

TEST_F(CrossfilterProgramTest, BarsRender) {
  BrushYears(1997, 1998);
  EXPECT_GT(engine_->pixels().CountColor(ParseColor("green").value()), 100u);
}

}  // namespace
}  // namespace dvms
