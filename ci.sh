#!/usr/bin/env bash
# Tier-1 CI: Release build + full test suite, the serial-vs-parallel
# benchmark comparison (emitted as BENCH_parallel.json), then a
# ThreadSanitizer build re-running every test with 4 morsel workers.
set -euo pipefail
cd "$(dirname "$0")"
JOBS="${JOBS:-$(nproc)}"

# Leg 1: Release build + tests.
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

# Serial vs 4-thread latency on the Figure 1 / Figure 2 workloads. Each
# bench appends JSON object lines; wrap them into one JSON array.
# --benchmark_filter=__none__ skips the google-benchmark loops — the
# comparison sections run unconditionally before them.
BENCH_LINES="$PWD/build/bench_lines.jsonl"
rm -f "$BENCH_LINES"
DVMS_BENCH_JSON="$BENCH_LINES" ./build/bench/bench_fig1_crossfilter \
  --benchmark_filter=__none__
DVMS_BENCH_JSON="$BENCH_LINES" ./build/bench/bench_fig2_brushing \
  --benchmark_filter=__none__
{
  printf '[\n'
  sed -e 's/^/  /' -e '$!s/$/,/' "$BENCH_LINES"
  printf ']\n'
} > BENCH_parallel.json
echo "wrote BENCH_parallel.json:"
cat BENCH_parallel.json

# Leg 2: ThreadSanitizer build; DVMS_THREADS=4 forces real morsel
# parallelism through every test regardless of host core count.
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDVMS_SANITIZE=thread
cmake --build build-tsan -j "$JOBS"
(cd build-tsan && DVMS_THREADS=4 ctest --output-on-failure -j "$JOBS")

echo "ci.sh: all legs passed"
