#!/usr/bin/env bash
# Tier-1 CI: Release build + full test suite, the serial-vs-parallel
# benchmark comparison (emitted as BENCH_parallel.json), the undo-log /
# chaos-survival comparison (BENCH_faults.json), a ThreadSanitizer build
# re-running every test with 4 morsel workers, and an ASan+UBSan leg
# running the chaos/fuzz suites under heavy fault injection.
set -euo pipefail
cd "$(dirname "$0")"
JOBS="${JOBS:-$(nproc)}"

# Leg 1: Release build + tests. The chaos / crash-injection suites carry
# the `slow` ctest label; `ctest -LE slow` is the fast local loop, CI runs
# everything.
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

# Serial vs 4-thread latency on the Figure 1 / Figure 2 workloads. Each
# bench appends JSON object lines; wrap them into one JSON array.
# --benchmark_filter=__none__ skips the google-benchmark loops — the
# comparison sections run unconditionally before them.
BENCH_LINES="$PWD/build/bench_lines.jsonl"
rm -f "$BENCH_LINES"
DVMS_BENCH_JSON="$BENCH_LINES" ./build/bench/bench_fig1_crossfilter \
  --benchmark_filter=__none__
DVMS_BENCH_JSON="$BENCH_LINES" ./build/bench/bench_fig2_brushing \
  --benchmark_filter=__none__
{
  printf '[\n'
  sed -e 's/^/  /' -e '$!s/$/,/' "$BENCH_LINES"
  printf ']\n'
} > BENCH_parallel.json
echo "wrote BENCH_parallel.json:"
cat BENCH_parallel.json

# Columnar kernels vs the row interpreter on the Figure 1 chart queries,
# plus the snapshot-size comparison. Gates: bit-identical results with a
# >= 2x vectorized speedup, and the columnar snapshot encoding must be
# smaller than the legacy row format (every line carries a "pass" field).
COLUMNAR_LINES="$PWD/build/bench_columnar_lines.jsonl"
rm -f "$COLUMNAR_LINES"
DVMS_BENCH_JSON="$COLUMNAR_LINES" ./build/bench/bench_columnar \
  --benchmark_filter=__none__
{
  printf '[\n'
  sed -e 's/^/  /' -e '$!s/$/,/' "$COLUMNAR_LINES"
  printf ']\n'
} > BENCH_columnar.json
echo "wrote BENCH_columnar.json:"
cat BENCH_columnar.json
if grep -q '"pass": false' BENCH_columnar.json; then
  echo "columnar speedup or snapshot-size gate failed" >&2; exit 1
fi

# Undo-log overhead (< 10% budget on the fault-free fig2 workload) and
# chaos survival under injected faults.
FAULT_LINES="$PWD/build/bench_fault_lines.jsonl"
rm -f "$FAULT_LINES"
DVMS_BENCH_JSON="$FAULT_LINES" ./build/bench/bench_faults \
  --benchmark_filter=__none__
{
  printf '[\n'
  sed -e 's/^/  /' -e '$!s/$/,/' "$FAULT_LINES"
  printf ']\n'
} > BENCH_faults.json
echo "wrote BENCH_faults.json:"
cat BENCH_faults.json

# Interaction-log throughput per DVMS_WAL_FSYNC group-commit mode and
# cold-start recovery time (log replay vs snapshot + suffix).
RECOVERY_LINES="$PWD/build/bench_recovery_lines.jsonl"
rm -f "$RECOVERY_LINES"
DVMS_BENCH_JSON="$RECOVERY_LINES" ./build/bench/bench_recovery \
  --benchmark_filter=__none__
{
  printf '[\n'
  sed -e 's/^/  /' -e '$!s/$/,/' "$RECOVERY_LINES"
  printf ']\n'
} > BENCH_recovery.json
echo "wrote BENCH_recovery.json:"
cat BENCH_recovery.json

# Observability overhead: the tracing-disabled guard must bound under 2%
# of the fig2 brushing workload (the "pass" field in BENCH_obs.json).
OBS_LINES="$PWD/build/bench_obs_lines.jsonl"
rm -f "$OBS_LINES"
DVMS_BENCH_JSON="$OBS_LINES" ./build/bench/bench_obs \
  --benchmark_filter=__none__
{
  printf '[\n'
  sed -e 's/^/  /' -e '$!s/$/,/' "$OBS_LINES"
  printf ']\n'
} > BENCH_obs.json
echo "wrote BENCH_obs.json:"
cat BENCH_obs.json
grep -q '"pass": true' BENCH_obs.json || {
  echo "observability overhead budget exceeded" >&2; exit 1; }

# Resource-governor overhead: an armed-but-untriggered governor (deadline
# + memory budget with roomy limits) must stay under 2% of the unarmed
# engine on the fig2 workload; the same binary reports deadline-abort
# latency and the abort/rollback exercise.
GOV_LINES="$PWD/build/bench_governor_lines.jsonl"
rm -f "$GOV_LINES"
DVMS_BENCH_JSON="$GOV_LINES" ./build/bench/bench_governor \
  --benchmark_filter=__none__
{
  printf '[\n'
  sed -e 's/^/  /' -e '$!s/$/,/' "$GOV_LINES"
  printf ']\n'
} > BENCH_governor.json
echo "wrote BENCH_governor.json:"
cat BENCH_governor.json
grep -q '"pass": true' BENCH_governor.json || {
  echo "governor overhead budget exceeded" >&2; exit 1; }

# Concurrent-session read throughput: serial vs 2/4/8 reader sessions and
# reads under a continuous writer. The gate is 1-core-safe: the best
# concurrent throughput must be >= 85% of serial (no-regression), with the
# scalability shape recorded per thread count.
SESS_LINES="$PWD/build/bench_sessions_lines.jsonl"
rm -f "$SESS_LINES"
DVMS_BENCH_JSON="$SESS_LINES" ./build/bench/bench_sessions \
  --benchmark_filter=__none__
{
  printf '[\n'
  sed -e 's/^/  /' -e '$!s/$/,/' "$SESS_LINES"
  printf ']\n'
} > BENCH_sessions.json
echo "wrote BENCH_sessions.json:"
cat BENCH_sessions.json
if grep -q '"pass": false' BENCH_sessions.json; then
  echo "concurrent session reads regressed below serial" >&2; exit 1
fi

# Replication: tail-apply throughput + steady-state lag, failover promotion
# time, and tailing under injected replication faults. Gates are
# 1-core-safe: the replica must converge to the primary's final LSN (zero
# lag after quiesce), promotion must yield a writable engine, and faults
# may only slow the tail, never break convergence.
REPL_LINES="$PWD/build/bench_replication_lines.jsonl"
rm -f "$REPL_LINES"
DVMS_BENCH_JSON="$REPL_LINES" ./build/bench/bench_replication \
  --benchmark_filter=__none__
{
  printf '[\n'
  sed -e 's/^/  /' -e '$!s/$/,/' "$REPL_LINES"
  printf ']\n'
} > BENCH_replication.json
echo "wrote BENCH_replication.json:"
cat BENCH_replication.json
if grep -q '"pass": false' BENCH_replication.json; then
  echo "replication diverged, stalled, or failed to promote" >&2; exit 1
fi

# Integrity-scrubber cost: a 20ms background scrub cadence must stay under
# 2% of the scrubber-off durable workload ("pass" in BENCH_scrub.json);
# the same binary records per-pass latency and a detection/quarantine
# smoke on a flipped byte in a sealed segment.
SCRUB_LINES="$PWD/build/bench_scrub_lines.jsonl"
rm -f "$SCRUB_LINES"
DVMS_BENCH_JSON="$SCRUB_LINES" ./build/bench/bench_scrub \
  --benchmark_filter=__none__
{
  printf '[\n'
  sed -e 's/^/  /' -e '$!s/$/,/' "$SCRUB_LINES"
  printf ']\n'
} > BENCH_scrub.json
echo "wrote BENCH_scrub.json:"
cat BENCH_scrub.json
if grep -q '"pass": false' BENCH_scrub.json; then
  echo "scrubber overhead budget exceeded or detection failed" >&2; exit 1
fi

# Cluster routing: the healthy routed-read path must stay within 5% of
# direct engine reads, a mid-stream primary kill must lose zero
# acknowledged commits (the blackout window is recorded), and hedged-read
# accounting must balance exactly (won + lost == launched).
CLUSTER_LINES="$PWD/build/bench_cluster_lines.jsonl"
rm -f "$CLUSTER_LINES"
DVMS_BENCH_JSON="$CLUSTER_LINES" ./build/bench/bench_cluster \
  --benchmark_filter=__none__
{
  printf '[\n'
  sed -e 's/^/  /' -e '$!s/$/,/' "$CLUSTER_LINES"
  printf ']\n'
} > BENCH_cluster.json
echo "wrote BENCH_cluster.json:"
cat BENCH_cluster.json
if grep -q '"pass": false' BENCH_cluster.json; then
  echo "cluster routing overhead, failover, or hedge accounting regressed" >&2
  exit 1
fi

# Env-fault chaos sweep: seeded disk-fault injection (DVMS_IO_FAULTS)
# driven through the storage Env layer over the durability and replication
# workloads. Injected EIO/ENOSPC/short-write/fsync-fail may fail
# individual operations or degrade the engine to read-only — never crash
# the process. Recovery, rollback, and replica-apply paths run
# fault-exempt by design, so every run must terminate cleanly.
for seed in 1 2 3; do
  DVMS_IO_FAULTS="${seed}:0.005" ./build/bench/bench_recovery \
    --benchmark_filter=__none__ >/dev/null
  DVMS_IO_FAULTS="${seed}:0.01:write,fsync" ./build/bench/bench_replication \
    --benchmark_filter=__none__ >/dev/null
  DVMS_IO_FAULTS="${seed}:0.02" ./build/bench/bench_scrub \
    --benchmark_filter=__none__ >/dev/null
  # Routed writes under seeded disk faults: retries, degraded-mode
  # backoff, breaker trips, poisoned-primary condemnation, and failover
  # all fire along this leg — the process must still terminate cleanly.
  DVMS_IO_FAULTS="${seed}:0.01:write,fsync" ./build/bench/bench_cluster \
    --benchmark_filter=__none__ >/dev/null
done
echo "env-fault chaos sweep passed"

# Leg 2: ThreadSanitizer build; DVMS_THREADS=4 forces real morsel
# parallelism through every test regardless of host core count — including
# the linearizability stress harness (1/2/4/8 reader sessions racing the
# writer) and the session/snapshot-isolation suites, which is where reader
# concurrency races would surface.
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDVMS_SANITIZE=thread
cmake --build build-tsan -j "$JOBS"
(cd build-tsan && DVMS_THREADS=4 ctest --output-on-failure -j "$JOBS")

# Leg 3: AddressSanitizer + UndefinedBehaviorSanitizer chaos leg — the
# chaos differential, crash-injection/recovery, durability codec,
# scheduler-degradation, observability/EXPLAIN, and fuzz suites, then the
# fault workload driven by a process-wide DVMS_FAULTS spec: any leak, UB,
# or use-after-rollback in the recovery paths fails the build.
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDVMS_SANITIZE=address,undefined
cmake --build build-asan -j "$JOBS"
(cd build-asan && ctest --output-on-failure -j "$JOBS" \
  -R 'Chaos|Fault|Scheduler|Fuzz|UndoRedoBoundary|Crash|Durability|Recovery|Wal|Snapshot|Crc32c|Obs|Explain|Governor|QueryContext|Admission|Linearizability|Session|Replication|Replica|Env|Scrub|Degraded|Columnar|Cluster')
DVMS_FAULTS="7:0.01" ./build-asan/bench/bench_faults \
  --benchmark_filter=__none__ >/dev/null && echo "asan chaos leg passed"
# Governed-abort leg: deadline/cancel/memory-budget aborts and their
# rollbacks must be leak- and UB-free; DVMS_DEADLINE_MS additionally
# drives real deadline aborts through the env-resolved config path.
DVMS_DEADLINE_MS=50 ./build-asan/bench/bench_governor \
  --benchmark_filter=__none__ >/dev/null && echo "asan governor leg passed"
# EXPLAIN ANALYZE + dvms_metrics smoke with tracing force-enabled: the
# traced hot paths (registry, span ring, system-relation refresh) must be
# clean under ASan/UBSan too.
DVMS_TRACE=1 ./build-asan/bench/bench_obs \
  --benchmark_filter=__none__ >/dev/null && echo "asan obs smoke passed"

echo "ci.sh: all legs passed"
