// Ablation: incremental view maintenance strategy for crossfilter-style
// interactions (the design choice behind Figure 1's interactivity).
// Compares three ways to refresh the linked charts on a selection change:
//   1. full DeVIL view recomputation through the engine (group-by over the
//      fact table per chart),
//   2. a hand-rolled full scan (no engine overhead), and
//   3. the CrossfilterCube 2-D marginal index.

#include <cstdio>

#include "benchmark/benchmark.h"
#include "core/dvms.h"
#include "query/ivm.h"
#include "workload/tpch.h"

namespace {

using namespace dvms;

const std::vector<std::string> kDims = {"region", "year", "month", "dow"};

Table MakeFact(size_t rows) {
  TpchConfig config;
  config.num_rows = rows;
  return GenerateTpchSales(config);
}

ValueSet YearSelection() {
  ValueSet years;
  years.insert(Value::Int(1997));
  years.insert(Value::Int(1998));
  return years;
}

/// Strategies 1a/1b: the engine path — views defined in DeVIL, recomputed
/// when the selection relation changes, with the Online Optimizer off
/// (plan re-execution) or on (cube refresh).
void EngineBenchmark(benchmark::State& state, bool online_optimizer) {
  Dvms::Options options;
  options.auto_render = false;
  options.enable_online_optimizer = online_optimizer;
  Dvms engine(options);
  Table fact = MakeFact(static_cast<size_t>(state.range(0)));
  (void)engine.CreateBaseTable("Sales", fact.schema());
  (void)engine.Insert("Sales", fact.rows());
  (void)engine.CreateBaseTable("selected_years",
                               Schema({{"year", ValueType::kInt64}}));
  Status st = engine.LoadProgram(
      "r1 = SELECT region, SUM(revenue) AS revenue FROM Sales "
      "WHERE year IN selected_years GROUP BY region;"
      "r2 = SELECT month, SUM(revenue) AS revenue FROM Sales "
      "WHERE year IN selected_years GROUP BY month;"
      "r3 = SELECT dow, SUM(revenue) AS revenue FROM Sales "
      "WHERE year IN selected_years GROUP BY dow;");
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  int64_t year = 1992;
  for (auto _ : state) {
    // Change the selection and propagate.
    auto table = engine.catalog()->Get("selected_years").value();
    table->mutable_current().Clear();
    (void)table->Append({Value::Int(year)});
    (void)table->Append({Value::Int(year + 1)});
    year = year == 1997 ? 1992 : year + 1;
    (void)engine.maintainer()->OnChanged({"selected_years"});
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_EngineViewRecompute(benchmark::State& state) {
  EngineBenchmark(state, /*online_optimizer=*/false);
}
BENCHMARK(BM_EngineViewRecompute)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void BM_EngineWithOnlineOptimizer(benchmark::State& state) {
  EngineBenchmark(state, /*online_optimizer=*/true);
}
BENCHMARK(BM_EngineWithOnlineOptimizer)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

/// Strategy 2: a tight hand-rolled scan (upper bound for scan-based).
void BM_HandRolledFullScan(benchmark::State& state) {
  Table fact = MakeFact(static_cast<size_t>(state.range(0)));
  ValueSet years = YearSelection();
  size_t year_col = fact.schema().IndexOf("year").value();
  size_t measure = fact.schema().IndexOf("revenue").value();
  std::vector<size_t> dim_cols;
  for (const std::string& dim : kDims) {
    if (dim != "year") dim_cols.push_back(fact.schema().IndexOf(dim).value());
  }
  for (auto _ : state) {
    for (size_t dim_col : dim_cols) {
      std::unordered_map<Value, double, ValueHash, ValueEq> sums;
      for (const Row& row : fact.rows()) {
        if (years.count(row[year_col]) == 0) continue;
        sums[row[dim_col]] += row[measure].double_value();
      }
      benchmark::DoNotOptimize(sums);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HandRolledFullScan)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

/// Strategy 3: the crossfilter marginal cube.
void BM_CrossfilterCube(benchmark::State& state) {
  Table fact = MakeFact(static_cast<size_t>(state.range(0)));
  CrossfilterCube cube =
      CrossfilterCube::Build(fact, kDims, "revenue").value();
  ValueSet years = YearSelection();
  for (auto _ : state) {
    for (const std::string& dim : kDims) {
      if (dim == "year") continue;
      benchmark::DoNotOptimize(
          cube.FilteredGroupSums(dim, "year", years).value());
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CrossfilterCube)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

/// One-time cube construction cost (the tradeoff against strategy 3).
void BM_CrossfilterCubeBuild(benchmark::State& state) {
  Table fact = MakeFact(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CrossfilterCube::Build(fact, kDims, "revenue").value());
  }
}
BENCHMARK(BM_CrossfilterCubeBuild)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
