// Figure 1: revenue breakdown with crossfilter over TPC-H-shaped data.
//
// Reproduces the chart contents (filtered vs unfiltered partitions per
// dimension) and measures per-interaction latency two ways:
//   * baseline — full recomputation of every group-by-sum view from the
//     fact table on each selection change (what the generic ViewMaintainer
//     does), and
//   * crossfilter index — precomputed 2-D marginals (query/ivm.h), the
//     optimization real crossfilter implementations use.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "benchmark/benchmark.h"
#include "common/thread_pool.h"
#include "expr/eval.h"
#include "parser/parser.h"
#include "parser/planner.h"
#include "query/binder.h"
#include "query/executor.h"
#include "query/ivm.h"
#include "storage/catalog.h"
#include "workload/tpch.h"

namespace {

using namespace dvms;
using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

const std::vector<std::string> kDims = {"region", "year", "month", "dow"};

/// Full-scan reference: filtered group-by-sum of every chart.
std::vector<Table> FullRecompute(const Table& fact, const ValueSet& years) {
  std::vector<Table> charts;
  size_t year_col = fact.schema().IndexOf("year").value();
  size_t measure = fact.schema().IndexOf("revenue").value();
  for (const std::string& dim : kDims) {
    if (dim == "year") continue;
    size_t dim_col = fact.schema().IndexOf(dim).value();
    std::unordered_map<Value, double, ValueHash, ValueEq> sums;
    for (const Row& row : fact.rows()) {
      if (years.count(row[year_col]) == 0) continue;
      sums[row[dim_col]] += row[measure].double_value();
    }
    Table chart(Schema({{"value", ValueType::kNull},
                        {"total", ValueType::kDouble}}));
    std::vector<std::pair<Value, double>> sorted(sums.begin(), sums.end());
    std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
      return a.first.Compare(b.first) < 0;
    });
    for (auto& [v, s] : sorted) chart.AppendUnchecked({v, Value::Double(s)});
    charts.push_back(std::move(chart));
  }
  return charts;
}

void PrintFigure1() {
  std::printf("=== Figure 1: crossfilter revenue breakdown ===\n\n");
  TpchConfig config;
  config.num_rows = 50000;
  Table fact = GenerateTpchSales(config);

  CrossfilterCube cube =
      CrossfilterCube::Build(fact, kDims, "revenue").value();
  ValueSet years;
  years.insert(Value::Int(1997));
  years.insert(Value::Int(1998));

  std::printf("selection: years {1997, 1998} over %zu rows\n\n",
              fact.num_rows());
  Table region_total = cube.GroupTotals("region").value();
  Table region_sel =
      cube.FilteredGroupSums("region", "year", years).value();
  std::printf("%-14s %16s %16s %8s\n", "region", "total revenue",
              "selected (green)", "share");
  for (size_t i = 0; i < region_total.num_rows(); ++i) {
    double total = region_total.row(i)[1].double_value();
    double sel = region_sel.row(i)[1].double_value();
    std::printf("%-14s %16.3e %16.3e %7.1f%%\n",
                region_total.row(i)[0].ToString().c_str(), total, sel,
                100.0 * sel / total);
  }

  // Correctness: the cube must agree with the full scan (up to FP
  // summation order).
  std::vector<Table> reference = FullRecompute(fact, years);
  bool ok = reference[0].num_rows() == region_sel.num_rows();
  for (size_t i = 0; ok && i < region_sel.num_rows(); ++i) {
    double a = reference[0].row(i)[1].double_value();
    double b = region_sel.row(i)[1].double_value();
    ok = reference[0].row(i)[0].Equals(region_sel.row(i)[0]) &&
         std::abs(a - b) <= 1e-6 * std::max(1.0, std::abs(a));
  }
  std::printf("\ncube vs full-scan agreement: %s\n", ok ? "OK" : "MISMATCH");

  // Latency sweep.
  std::printf("\nper-interaction latency (update all linked charts):\n");
  std::printf("%10s %18s %18s %14s %10s\n", "rows", "full recompute",
              "cube queries", "cube build", "speedup");
  for (size_t rows : {10000ul, 50000ul, 200000ul}) {
    TpchConfig c;
    c.num_rows = rows;
    Table f = GenerateTpchSales(c);

    Clock::time_point t0 = Clock::now();
    CrossfilterCube cb = CrossfilterCube::Build(f, kDims, "revenue").value();
    double build_ms = MsSince(t0);

    constexpr int kReps = 10;
    t0 = Clock::now();
    for (int r = 0; r < kReps; ++r) {
      auto charts = FullRecompute(f, years);
      benchmark::DoNotOptimize(charts);
    }
    double full_ms = MsSince(t0) / kReps;

    t0 = Clock::now();
    for (int r = 0; r < kReps; ++r) {
      for (const std::string& dim : kDims) {
        if (dim == "year") continue;
        auto chart = cb.FilteredGroupSums(dim, "year", years).value();
        benchmark::DoNotOptimize(chart);
      }
    }
    double cube_ms = MsSince(t0) / kReps;

    std::printf("%10zu %15.2f ms %15.4f ms %11.1f ms %9.0fx\n", rows, full_ms,
                cube_ms, build_ms, full_ms / cube_ms);
  }
  std::printf("\n");
}

/// Appends one JSON object line to the file named by DVMS_BENCH_JSON (if
/// set); ci.sh collects these lines into BENCH_parallel.json.
void AppendBenchJson(const char* bench, double serial_ms, double parallel_ms,
                     bool identical) {
  const char* path = std::getenv("DVMS_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fprintf(f,
               "{\"bench\": \"%s\", \"threads\": 4, \"serial_ms\": %.4f, "
               "\"parallel_ms\": %.4f, \"speedup\": %.2f, "
               "\"identical\": %s}\n",
               bench, serial_ms, parallel_ms, serial_ms / parallel_ms,
               identical ? "true" : "false");
  std::fclose(f);
}

/// Morsel-driven executor, serial vs 4 threads, over the Figure 1 charts
/// expressed as SQL. Results must be bit-identical (see ExecOptions).
void PrintParallelComparison() {
  std::printf("=== Morsel-parallel executor: serial vs 4 threads ===\n\n");
  TpchConfig config;
  config.num_rows = 50000;
  Table fact = GenerateTpchSales(config);
  Catalog catalog;
  UdfRegistry udfs = UdfRegistry::WithBuiltins();
  VersionedTable* table =
      catalog.CreateTable("Sales", fact.schema(), RelationKind::kBase).value();
  (void)table->SetCurrent(Table(fact));

  const char* queries[] = {
      "SELECT region, SUM(revenue) AS revenue FROM Sales "
      "WHERE year >= 1997 AND year <= 1998 GROUP BY region",
      "SELECT month, SUM(revenue) AS revenue FROM Sales "
      "WHERE year >= 1997 AND year <= 1998 GROUP BY month",
      "SELECT dow, SUM(revenue) AS revenue FROM Sales "
      "WHERE year >= 1997 AND year <= 1998 GROUP BY dow",
      "SELECT region, revenue FROM Sales ORDER BY revenue DESC",
  };
  std::vector<PlanPtr> plans;
  for (const char* sql : queries) {
    SelectStmt stmt = ParseSelect(sql).value();
    CatalogSchemaResolver resolver(&catalog);
    Planner planner(&resolver);
    PlanPtr plan = planner.PlanSelect(stmt).value();
    Binder binder(&resolver, &udfs);
    (void)binder.Bind(plan.get());
    plans.push_back(std::move(plan));
  }

  ThreadPool pool(4);
  Executor exec(&catalog, &udfs);
  auto run_all = [&](size_t threads) {
    std::vector<Table> out;
    for (const PlanPtr& plan : plans) {
      ExecOptions opts;
      opts.num_threads = threads;
      opts.pool = &pool;
      out.push_back(
          std::move(exec.Execute(*plan, opts).value()->table));
    }
    return out;
  };

  constexpr int kReps = 10;
  std::vector<Table> serial_out = run_all(1);
  Clock::time_point t0 = Clock::now();
  for (int r = 0; r < kReps; ++r) benchmark::DoNotOptimize(run_all(1));
  double serial_ms = MsSince(t0) / kReps;
  std::vector<Table> parallel_out = run_all(4);
  t0 = Clock::now();
  for (int r = 0; r < kReps; ++r) benchmark::DoNotOptimize(run_all(4));
  double parallel_ms = MsSince(t0) / kReps;

  bool identical = serial_out.size() == parallel_out.size();
  for (size_t q = 0; identical && q < serial_out.size(); ++q) {
    identical = serial_out[q].num_rows() == parallel_out[q].num_rows();
    for (size_t i = 0; identical && i < serial_out[q].num_rows(); ++i) {
      for (size_t c = 0; identical && c < serial_out[q].row(i).size(); ++c) {
        identical = serial_out[q].row(i)[c].Equals(parallel_out[q].row(i)[c]);
      }
    }
  }
  std::printf("4 chart queries over %zu rows: serial %.2f ms, "
              "4 threads %.2f ms (%.2fx, %zu hw cores), results %s\n\n",
              fact.num_rows(), serial_ms, parallel_ms,
              serial_ms / parallel_ms, ThreadPool::DefaultThreadCount(),
              identical ? "identical" : "MISMATCH");
  AppendBenchJson("fig1_crossfilter_queries", serial_ms, parallel_ms,
                  identical);
}

void BM_CrossfilterCubeQuery(benchmark::State& state) {
  TpchConfig config;
  config.num_rows = static_cast<size_t>(state.range(0));
  Table fact = GenerateTpchSales(config);
  CrossfilterCube cube =
      CrossfilterCube::Build(fact, kDims, "revenue").value();
  ValueSet years;
  years.insert(Value::Int(1997));
  years.insert(Value::Int(1998));
  for (auto _ : state) {
    for (const std::string& dim : kDims) {
      if (dim == "year") continue;
      benchmark::DoNotOptimize(
          cube.FilteredGroupSums(dim, "year", years).value());
    }
  }
}
BENCHMARK(BM_CrossfilterCubeQuery)->Arg(10000)->Arg(100000);

void BM_CrossfilterFullScan(benchmark::State& state) {
  TpchConfig config;
  config.num_rows = static_cast<size_t>(state.range(0));
  Table fact = GenerateTpchSales(config);
  ValueSet years;
  years.insert(Value::Int(1997));
  years.insert(Value::Int(1998));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FullRecompute(fact, years));
  }
}
BENCHMARK(BM_CrossfilterFullScan)->Arg(10000)->Arg(100000);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure1();
  PrintParallelComparison();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
