// Figure 1: revenue breakdown with crossfilter over TPC-H-shaped data.
//
// Reproduces the chart contents (filtered vs unfiltered partitions per
// dimension) and measures per-interaction latency two ways:
//   * baseline — full recomputation of every group-by-sum view from the
//     fact table on each selection change (what the generic ViewMaintainer
//     does), and
//   * crossfilter index — precomputed 2-D marginals (query/ivm.h), the
//     optimization real crossfilter implementations use.

#include <chrono>
#include <cmath>
#include <cstdio>

#include "benchmark/benchmark.h"
#include "expr/eval.h"
#include "query/ivm.h"
#include "workload/tpch.h"

namespace {

using namespace dvms;
using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

const std::vector<std::string> kDims = {"region", "year", "month", "dow"};

/// Full-scan reference: filtered group-by-sum of every chart.
std::vector<Table> FullRecompute(const Table& fact, const ValueSet& years) {
  std::vector<Table> charts;
  size_t year_col = fact.schema().IndexOf("year").value();
  size_t measure = fact.schema().IndexOf("revenue").value();
  for (const std::string& dim : kDims) {
    if (dim == "year") continue;
    size_t dim_col = fact.schema().IndexOf(dim).value();
    std::unordered_map<Value, double, ValueHash, ValueEq> sums;
    for (const Row& row : fact.rows()) {
      if (years.count(row[year_col]) == 0) continue;
      sums[row[dim_col]] += row[measure].double_value();
    }
    Table chart(Schema({{"value", ValueType::kNull},
                        {"total", ValueType::kDouble}}));
    std::vector<std::pair<Value, double>> sorted(sums.begin(), sums.end());
    std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
      return a.first.Compare(b.first) < 0;
    });
    for (auto& [v, s] : sorted) chart.AppendUnchecked({v, Value::Double(s)});
    charts.push_back(std::move(chart));
  }
  return charts;
}

void PrintFigure1() {
  std::printf("=== Figure 1: crossfilter revenue breakdown ===\n\n");
  TpchConfig config;
  config.num_rows = 50000;
  Table fact = GenerateTpchSales(config);

  CrossfilterCube cube =
      CrossfilterCube::Build(fact, kDims, "revenue").value();
  ValueSet years;
  years.insert(Value::Int(1997));
  years.insert(Value::Int(1998));

  std::printf("selection: years {1997, 1998} over %zu rows\n\n",
              fact.num_rows());
  Table region_total = cube.GroupTotals("region").value();
  Table region_sel =
      cube.FilteredGroupSums("region", "year", years).value();
  std::printf("%-14s %16s %16s %8s\n", "region", "total revenue",
              "selected (green)", "share");
  for (size_t i = 0; i < region_total.num_rows(); ++i) {
    double total = region_total.row(i)[1].double_value();
    double sel = region_sel.row(i)[1].double_value();
    std::printf("%-14s %16.3e %16.3e %7.1f%%\n",
                region_total.row(i)[0].ToString().c_str(), total, sel,
                100.0 * sel / total);
  }

  // Correctness: the cube must agree with the full scan (up to FP
  // summation order).
  std::vector<Table> reference = FullRecompute(fact, years);
  bool ok = reference[0].num_rows() == region_sel.num_rows();
  for (size_t i = 0; ok && i < region_sel.num_rows(); ++i) {
    double a = reference[0].row(i)[1].double_value();
    double b = region_sel.row(i)[1].double_value();
    ok = reference[0].row(i)[0].Equals(region_sel.row(i)[0]) &&
         std::abs(a - b) <= 1e-6 * std::max(1.0, std::abs(a));
  }
  std::printf("\ncube vs full-scan agreement: %s\n", ok ? "OK" : "MISMATCH");

  // Latency sweep.
  std::printf("\nper-interaction latency (update all linked charts):\n");
  std::printf("%10s %18s %18s %14s %10s\n", "rows", "full recompute",
              "cube queries", "cube build", "speedup");
  for (size_t rows : {10000ul, 50000ul, 200000ul}) {
    TpchConfig c;
    c.num_rows = rows;
    Table f = GenerateTpchSales(c);

    Clock::time_point t0 = Clock::now();
    CrossfilterCube cb = CrossfilterCube::Build(f, kDims, "revenue").value();
    double build_ms = MsSince(t0);

    constexpr int kReps = 10;
    t0 = Clock::now();
    for (int r = 0; r < kReps; ++r) {
      auto charts = FullRecompute(f, years);
      benchmark::DoNotOptimize(charts);
    }
    double full_ms = MsSince(t0) / kReps;

    t0 = Clock::now();
    for (int r = 0; r < kReps; ++r) {
      for (const std::string& dim : kDims) {
        if (dim == "year") continue;
        auto chart = cb.FilteredGroupSums(dim, "year", years).value();
        benchmark::DoNotOptimize(chart);
      }
    }
    double cube_ms = MsSince(t0) / kReps;

    std::printf("%10zu %15.2f ms %15.4f ms %11.1f ms %9.0fx\n", rows, full_ms,
                cube_ms, build_ms, full_ms / cube_ms);
  }
  std::printf("\n");
}

void BM_CrossfilterCubeQuery(benchmark::State& state) {
  TpchConfig config;
  config.num_rows = static_cast<size_t>(state.range(0));
  Table fact = GenerateTpchSales(config);
  CrossfilterCube cube =
      CrossfilterCube::Build(fact, kDims, "revenue").value();
  ValueSet years;
  years.insert(Value::Int(1997));
  years.insert(Value::Int(1998));
  for (auto _ : state) {
    for (const std::string& dim : kDims) {
      if (dim == "year") continue;
      benchmark::DoNotOptimize(
          cube.FilteredGroupSums(dim, "year", years).value());
    }
  }
}
BENCHMARK(BM_CrossfilterCubeQuery)->Arg(10000)->Arg(100000);

void BM_CrossfilterFullScan(benchmark::State& state) {
  TpchConfig config;
  config.num_rows = static_cast<size_t>(state.range(0));
  Table fact = GenerateTpchSales(config);
  ValueSet years;
  years.insert(Value::Int(1997));
  years.insert(Value::Int(1998));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FullRecompute(fact, years));
  }
}
BENCHMARK(BM_CrossfilterFullScan)->Arg(10000)->Arg(100000);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure1();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
