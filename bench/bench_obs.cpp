// PR-4 observability overhead: the tracing layer's cost on the PR-1
// parallel brushing workload. Three numbers matter:
//   1. baseline_ms  — the instrumented build with tracing DISABLED (the
//      shipping default; every site is one relaxed atomic load).
//   2. traced_ms    — the same workload with DVMS_TRACE-equivalent tracing
//      enabled (registry locks, clock reads, span ring).
//   3. disabled_ns  — microbenchmarked per-site cost of the disabled guard,
//      multiplied by a deliberately overcounted site-hit estimate to bound
//      the disabled-path overhead as a percentage of the workload.
// The acceptance bar is disabled overhead < 2%; ci.sh records the JSON
// lines into BENCH_obs.json.

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "benchmark/benchmark.h"
#include "common/rng.h"
#include "core/dvms.h"
#include "core/session.h"
#include "obs/trace.h"

namespace {

using namespace dvms;
using Clock = std::chrono::steady_clock;

const char* kProgram = R"(
  C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U
      RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
             (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);
  BBOX = SELECT x AS x0, y AS y0, x + dx AS x1, y + dy AS y1
    FROM C ORDER BY t DESC LIMIT 1;
  SPLOT_POINTS = SELECT 3 AS radius, 'gray' AS fill,
      linear_scale(Sales.revenue, 0, 100, 0, 400) AS center_x,
      linear_scale(Sales.profit, 0, 100, 0, 400) AS center_y,
      productId
    FROM Sales;
  selected = SELECT SP.productId AS productId
    FROM BBOX, SPLOT_POINTS@vnow-1 AS SP
    WHERE in_rectangle(SP.center_x, SP.center_y,
                       BBOX.x0, BBOX.y0, BBOX.x1, BBOX.y1);
  P = render(SELECT * FROM SPLOT_POINTS);
)";

std::unique_ptr<Dvms> MakeEngine(size_t points) {
  Dvms::Options options;
  options.canvas_width = 400;
  options.canvas_height = 400;
  options.auto_render = true;
  auto engine = std::make_unique<Dvms>(options);
  (void)engine->CreateBaseTable("Sales",
                                Schema({{"productId", ValueType::kInt64},
                                        {"profit", ValueType::kDouble},
                                        {"revenue", ValueType::kDouble}}));
  Rng rng(11);
  std::vector<Row> rows;
  for (size_t i = 0; i < points; ++i) {
    rows.push_back({Value::Int(static_cast<int64_t>(i)),
                    Value::Double(rng.Uniform(0, 100)),
                    Value::Double(rng.Uniform(0, 100))});
  }
  (void)engine->Insert("Sales", rows);
  if (!engine->LoadProgram(kProgram).ok()) return nullptr;
  return engine;
}

/// One fig2-style interaction: a 20-move drag, maintenance + render per
/// event. Returns milliseconds.
double RunDrag(Dvms& engine, int64_t t0) {
  Clock::time_point start = Clock::now();
  (void)engine.PushEvent(InputEvent::MouseDown(t0, 10, 10));
  for (int m = 1; m <= 20; ++m) {
    (void)engine.PushEvent(
        InputEvent::MouseMove(t0 + m, 10.0 + m * 15, 10.0 + m * 15));
  }
  (void)engine.PushEvent(InputEvent::MouseUp(t0 + 21, 310, 310));
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Best-of-N drags against a fresh engine, tracing on or off.
double MeasureWorkloadMs(size_t points, bool traced, int reps) {
  obs::SetEnabled(traced);
  auto engine = MakeEngine(points);
  if (engine == nullptr) return -1;
  double best = 1e300;
  int64_t t = 0;
  for (int r = 0; r < reps; ++r) {
    double ms = RunDrag(*engine, t);
    if (ms < best) best = ms;
    t += 100;
  }
  obs::SetEnabled(false);
  return best;
}

/// Per-call cost of the disabled guard: Count + Observe + an inert Span.
double MeasureDisabledNsPerSite() {
  obs::SetEnabled(false);
  constexpr int kCalls = 2'000'000;
  Clock::time_point start = Clock::now();
  for (int i = 0; i < kCalls; ++i) {
    obs::Count("bench.disabled");
    obs::Observe("bench.disabled_h", 1.0);
    obs::Span span("bench.disabled_span");
    benchmark::DoNotOptimize(i);
  }
  double ns =
      std::chrono::duration<double, std::nano>(Clock::now() - start).count();
  return ns / (kCalls * 3.0);
}

/// Deliberate overcount of instrumentation hits in one traced workload:
/// every counter increment (row-valued counters count each ROW as a hit,
/// a large overestimate) plus every span.
double CountSiteHits(size_t points) {
  obs::ResetForTesting();
  obs::SetEnabled(true);
  auto engine = MakeEngine(points);
  if (engine == nullptr) return -1;
  (void)RunDrag(*engine, 0);
  double hits = 0;
  for (const obs::MetricRow& m : obs::SnapshotMetrics()) hits += m.count;
  hits += static_cast<double>(obs::SnapshotSpans().size());
  obs::SetEnabled(false);
  obs::ResetForTesting();
  return hits;
}

void AppendJsonLine(const char* fmt, ...) {
  const char* path = std::getenv("DVMS_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  va_list args;
  va_start(args, fmt);
  std::vfprintf(f, fmt, args);
  va_end(args);
  std::fputc('\n', f);
  std::fclose(f);
}

void PrintObsOverhead() {
  std::printf("=== Observability overhead (fig2 brushing workload) ===\n\n");
  constexpr size_t kPoints = 5000;
  constexpr int kReps = 5;
  (void)MeasureWorkloadMs(kPoints, false, 2);  // warm-up (allocators, pool)
  const double baseline_ms = MeasureWorkloadMs(kPoints, false, kReps);
  const double traced_ms = MeasureWorkloadMs(kPoints, true, kReps);
  const double disabled_ns = MeasureDisabledNsPerSite();
  const double hits = CountSiteHits(kPoints);
  // Upper bound: even if every row-hit were a full guard check, the
  // disabled path costs hits * disabled_ns out of the whole workload.
  const double disabled_pct =
      100.0 * (hits * disabled_ns) / (baseline_ms * 1e6);
  const double traced_pct = 100.0 * (traced_ms - baseline_ms) / baseline_ms;

  std::printf("%zu points, 22-event drag, best of %d:\n", kPoints, kReps);
  std::printf("  tracing off:        %8.2f ms\n", baseline_ms);
  std::printf("  tracing on:         %8.2f ms  (%+.1f%%)\n", traced_ms,
              traced_pct);
  std::printf("  disabled guard:     %8.2f ns/site\n", disabled_ns);
  std::printf("  site hits (overcounted): %.0f\n", hits);
  std::printf("  disabled overhead bound: %.4f%%  (budget 2%%)\n\n",
              disabled_pct);

  AppendJsonLine(
      "{\"bench\": \"obs_overhead\", \"points\": %zu, "
      "\"baseline_ms\": %.4f, \"traced_ms\": %.4f, "
      "\"traced_overhead_pct\": %.2f, \"disabled_ns_per_site\": %.2f, "
      "\"site_hits_overcounted\": %.0f, "
      "\"disabled_overhead_pct_bound\": %.4f, \"pass\": %s}",
      kPoints, baseline_ms, traced_ms, traced_pct, disabled_ns, hits,
      disabled_pct, disabled_pct < 2.0 ? "true" : "false");
}

void PrintExplainAnalyze() {
  std::printf("=== EXPLAIN ANALYZE of the brushing hit-test ===\n\n");
  obs::SetEnabled(false);
  auto engine = MakeEngine(5000);
  if (engine == nullptr) return;
  (void)engine->PushEvent(InputEvent::MouseDown(0, 10, 10));
  (void)engine->PushEvent(InputEvent::MouseMove(1, 200, 200));
  // Through a read session: EXPLAIN ANALYZE is a read and takes the same
  // lock-free snapshot path as any other session query.
  Session session(engine.get());
  auto report = session.Query(
      "EXPLAIN ANALYZE SELECT SP.productId AS productId "
      "FROM BBOX, SPLOT_POINTS@vnow-1 AS SP "
      "WHERE in_rectangle(SP.center_x, SP.center_y, "
      "BBOX.x0, BBOX.y0, BBOX.x1, BBOX.y1)");
  if (!report.ok()) {
    std::printf("explain failed: %s\n", report.status().message().c_str());
    return;
  }
  const Table& t = report.value();
  std::printf("%-12s %-24s %8s %8s %10s\n", "operator", "detail", "rows",
              "morsels", "total_us");
  for (size_t r = 0; r < t.num_rows(); ++r) {
    std::string indent(
        static_cast<size_t>(t.At(r, "depth").value().int_value()) * 2, ' ');
    std::printf("%-12s %-24s %8lld %8lld %10lld\n",
                (indent + t.At(r, "operator").value().string_value()).c_str(),
                t.At(r, "detail").value().string_value().c_str(),
                static_cast<long long>(t.At(r, "rows").value().int_value()),
                static_cast<long long>(t.At(r, "morsels").value().int_value()),
                static_cast<long long>(
                    t.At(r, "total_us").value().int_value()));
  }
  std::printf("\n");
}

void BM_CountDisabled(benchmark::State& state) {
  obs::SetEnabled(false);
  for (auto _ : state) {
    obs::Count("bm.disabled");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountDisabled);

void BM_CountEnabled(benchmark::State& state) {
  obs::ResetForTesting();
  obs::SetEnabled(true);
  for (auto _ : state) {
    obs::Count("bm.enabled");
  }
  obs::SetEnabled(false);
  obs::ResetForTesting();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountEnabled);

void BM_SpanEnabled(benchmark::State& state) {
  obs::ResetForTesting();
  obs::SetEnabled(true);
  for (auto _ : state) {
    obs::Span span("bm.span");
  }
  obs::SetEnabled(false);
  obs::ResetForTesting();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanEnabled);

}  // namespace

int main(int argc, char** argv) {
  PrintObsOverhead();
  PrintExplainAnalyze();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
