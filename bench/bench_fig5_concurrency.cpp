// Figure 5: average completion time of the threshold task by
// concurrency-control policy, under no delay and under random delay
// (exponential, mean 2.5 s) — plus the harder trend task the paper says
// amplifies the effects.
//
// Expected shape (paper): with no delay all policies are close and MVCC is
// slightly slower; under delay No CC and Most Recent are slowest (users
// serialize their own input), Serial and Discard improve, MVCC is fastest.

#include <cstdio>

#include "benchmark/benchmark.h"
#include "common/rng.h"
#include "concurrency/small_multiples.h"
#include "concurrency/study.h"
#include "render/pixels.h"
#include "render/rasterizer.h"

namespace {

using namespace dvms;

void PrintFigure5() {
  constexpr size_t kParticipants = 400;
  std::printf(
      "=== Figure 5: threshold-task completion time by policy x delay ===\n");
  std::printf("(simulated participants: %zu per cell; 12 facets; hover 250 "
              "ms; read 400 ms)\n\n",
              kParticipants);
  for (JudgmentTask task : {JudgmentTask::kThreshold, JudgmentTask::kTrend}) {
    std::printf("%s task:\n", JudgmentTaskToString(task));
    std::printf("  %-12s %18s %24s\n", "policy", "no delay",
                "random delay (mean 2.5s)");
    for (CcPolicy policy : AllCcPolicies()) {
      StudyConfig config;
      config.policy = policy;
      config.task = task;
      config.seed = 1234;
      config.mean_delay_ms = 0;
      StudyAggregate no_delay = RunStudy(config, kParticipants);
      config.mean_delay_ms = 2500;
      StudyAggregate delayed = RunStudy(config, kParticipants);
      std::printf("  %-12s %10.1f s (sd %4.1f) %12.1f s (sd %4.1f)\n",
                  CcPolicyToString(policy),
                  no_delay.mean_completion_ms / 1000.0,
                  no_delay.stddev_ms / 1000.0,
                  delayed.mean_completion_ms / 1000.0,
                  delayed.stddev_ms / 1000.0);
    }
    std::printf("\n");
  }

  // The wider latency-profile sweep the paper's "larger scale study"
  // section calls for: the MVCC advantage grows with mean delay.
  std::printf("latency-profile sweep (threshold task, mean completion s):\n");
  std::printf("  %-12s", "policy");
  const double kDelays[] = {0, 500, 1000, 2500, 5000};
  for (double d : kDelays) std::printf(" %8.1fs", d / 1000.0);
  std::printf("\n");
  for (CcPolicy policy : AllCcPolicies()) {
    std::printf("  %-12s", CcPolicyToString(policy));
    for (double d : kDelays) {
      StudyConfig config;
      config.policy = policy;
      config.mean_delay_ms = d;
      config.seed = 77;
      std::printf(" %9.1f",
                  RunStudy(config, kParticipants).mean_completion_ms / 1000.0);
    }
    std::printf("\n");
  }
  std::printf("\n");

  // The paper's behavioural observation: concurrency-friendly policies let
  // users issue more concurrent requests.
  std::printf("requests issued / dropped under delay (threshold task):\n");
  for (CcPolicy policy : AllCcPolicies()) {
    StudyConfig config;
    config.policy = policy;
    config.mean_delay_ms = 2500;
    config.seed = 99;
    StudyAggregate a = RunStudy(config, kParticipants);
    std::printf("  %-12s %5.1f issued, %4.1f dropped\n",
                CcPolicyToString(policy), a.mean_requests, a.mean_dropped);
  }
  std::printf("\n");
}

void PrintFigure4() {
  // Figure 4(b): under MVCC, hovering several facets while responses are in
  // flight yields one chart copy per request, laid out as small multiples.
  Rng rng(4);
  std::vector<ChartCopy> copies;
  const char* months[] = {"jan", "feb", "mar", "apr", "may", "jun"};
  for (const char* month : months) {
    ChartCopy copy;
    copy.label = month;
    for (int b = 0; b < 6; ++b) copy.values.push_back(rng.Uniform(5, 50));
    copies.push_back(std::move(copy));
  }
  SmallMultiplesConfig config;
  config.columns = 3;
  Table marks = LayoutSmallMultiples(copies, config);
  PixelBuffer buf(420, 220);
  buf.Clear(RGBA{255, 255, 255, 255});
  if (RenderMarks(marks, &buf).ok()) {
    (void)buf.WritePpm("fig4_mvcc_small_multiples.ppm");
    std::printf("Figure 4(b): %zu in-flight requests rendered as %zu chart "
                "copies (%zu bars) -> fig4_mvcc_small_multiples.ppm\n\n",
                copies.size(), copies.size(), marks.num_rows());
  }
}

void BM_SimulateParticipant(benchmark::State& state) {
  StudyConfig config;
  config.policy = static_cast<CcPolicy>(state.range(0));
  config.mean_delay_ms = 2500;
  uint64_t seed = 1;
  for (auto _ : state) {
    config.seed = seed++;
    benchmark::DoNotOptimize(SimulateParticipant(config));
  }
}
BENCHMARK(BM_SimulateParticipant)->DenseRange(0, 4);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure5();
  PrintFigure4();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
