// §3.1: provenance for visualization interactions. Compares the two
// lineage strategies the paper discusses:
//   * eager — capture row-level lineage during every view recompute (pay
//     at maintenance time, trace cheaply), and
//   * lazy  — re-execute the view plan with lineage capture only when a
//     trace runs (no maintenance overhead, traces cost more).
// Also measures materialized backward-index size, the cost the paper warns
// "can be substantial".

#include <chrono>
#include <cstdio>

#include "benchmark/benchmark.h"
#include "common/rng.h"
#include "core/dvms.h"
#include "parser/parser.h"

namespace {

using namespace dvms;
using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::unique_ptr<Dvms> MakeEngine(size_t rows, bool eager) {
  Dvms::Options options;
  options.capture_lineage = eager;
  options.auto_render = false;
  auto engine = std::make_unique<Dvms>(options);
  (void)engine->CreateBaseTable("Sales",
                                Schema({{"productId", ValueType::kInt64},
                                        {"profit", ValueType::kDouble},
                                        {"revenue", ValueType::kDouble}}));
  Rng rng(23);
  std::vector<Row> data;
  for (size_t i = 0; i < rows; ++i) {
    data.push_back({Value::Int(static_cast<int64_t>(i)),
                    Value::Double(rng.Uniform(0, 100)),
                    Value::Double(rng.Uniform(0, 100))});
  }
  (void)engine->Insert("Sales", data);
  (void)engine->LoadProgram(
      "marks = SELECT productId, revenue, profit FROM Sales "
      "WHERE revenue > 25;");
  return engine;
}

void PrintSection31() {
  std::printf("=== Section 3.1: eager vs lazy lineage ===\n\n");
  std::printf("%10s | %13s %13s | %13s %13s | %12s\n", "rows",
              "maint (off)", "maint (eager)", "trace (lazy)", "trace (eager)",
              "index cells");
  for (size_t rows : {1000ul, 10000ul, 50000ul}) {
    double maintain_off = 0, maintain_eager = 0;
    double trace_lazy = 0, trace_eager = 0;
    size_t index_cells = 0;
    for (int mode = 0; mode < 2; ++mode) {
      bool eager = mode == 1;
      auto engine = MakeEngine(rows, eager);
      // Maintenance cost: recompute the view repeatedly.
      constexpr int kReps = 5;
      Clock::time_point t0 = Clock::now();
      for (int r = 0; r < kReps; ++r) {
        (void)engine->maintainer()->RecomputeView("marks");
      }
      double maintain_ms = MsSince(t0) / kReps;
      // Trace cost: backward-trace 64 mark rows to Sales.
      std::set<RowId> probe;
      size_t view_rows = engine->GetTable("marks").value()->num_rows();
      for (size_t i = 0; i < 64 && i < view_rows; ++i) probe.insert(i * 7 % view_rows);
      TraceEngine::Mode trace_mode =
          eager ? TraceEngine::Mode::kEager : TraceEngine::Mode::kLazy;
      t0 = Clock::now();
      for (int r = 0; r < kReps; ++r) {
        auto traced = engine->traces()->TraceViewRows(
            "marks", VersionRef::Current(), probe, "Sales", trace_mode);
        benchmark::DoNotOptimize(traced);
      }
      double trace_ms = MsSince(t0) / kReps;
      if (eager) {
        maintain_eager = maintain_ms;
        trace_eager = trace_ms;
        auto index = BackwardLineageIndex::Build(engine->traces(), "marks",
                                                 view_rows, "Sales",
                                                 trace_mode);
        if (index.ok()) index_cells = index.value().SizeEntries();
      } else {
        maintain_off = maintain_ms;
        trace_lazy = trace_ms;
      }
    }
    std::printf("%10zu | %10.2f ms %10.2f ms | %10.2f ms %10.2f ms | %12zu\n",
                rows, maintain_off, maintain_eager, trace_lazy, trace_eager,
                index_cells);
  }

  // End-to-end: the DeVIL 4 linked-brushing program whose interaction IS a
  // backward trace.
  std::printf("\nDeVIL 4 (provenance-based brushing) interaction latency:\n");
  const char* program = R"(
    C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U
        RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
               (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);
    SPLOT = SELECT 3 AS radius, 'gray' AS fill,
        linear_scale(Sales.revenue, 0, 100, 0, 400) AS center_x,
        linear_scale(Sales.profit, 0, 100, 0, 400) AS center_y
      FROM Sales;
    BBOX = SELECT x AS x0, y AS y0, x + dx AS x1, y + dy AS y1
      FROM C ORDER BY t DESC LIMIT 1;
    B = BACKWARD TRACE FROM SPLOT@vnow-1 AS SP, BBOX
      WHERE in_rectangle(SP.center_x, SP.center_y,
                         BBOX.x0, BBOX.y0, BBOX.x1, BBOX.y1)
      TO Sales;
  )";
  for (size_t rows : {1000ul, 10000ul}) {
    for (bool eager : {false, true}) {
      Dvms::Options options;
      options.capture_lineage = eager;
      options.auto_render = false;
      Dvms engine(options);
      (void)engine.CreateBaseTable("Sales",
                                   Schema({{"productId", ValueType::kInt64},
                                           {"profit", ValueType::kDouble},
                                           {"revenue", ValueType::kDouble}}));
      Rng rng(5);
      std::vector<Row> data;
      for (size_t i = 0; i < rows; ++i) {
        data.push_back({Value::Int(static_cast<int64_t>(i)),
                        Value::Double(rng.Uniform(0, 100)),
                        Value::Double(rng.Uniform(0, 100))});
      }
      (void)engine.Insert("Sales", data);
      Status st = engine.LoadProgram(program);
      if (!st.ok()) {
        std::printf("  program: %s\n", st.ToString().c_str());
        continue;
      }
      Clock::time_point t0 = Clock::now();
      (void)engine.PushEvent(InputEvent::MouseDown(0, 50, 50));
      for (int m = 1; m <= 10; ++m) {
        (void)engine.PushEvent(
            InputEvent::MouseMove(m, 50.0 + m * 20, 50.0 + m * 20));
      }
      (void)engine.PushEvent(InputEvent::MouseUp(11, 250, 250));
      double ms = MsSince(t0) / 12.0;
      std::printf("  %6zu rows, %-5s lineage: %7.2f ms/event, |B| = %zu\n",
                  rows, eager ? "eager" : "lazy",
                  ms, engine.GetTable("B").value()->num_rows());
    }
  }
  std::printf("\n");
}

void BM_BackwardTraceLazy(benchmark::State& state) {
  auto engine = MakeEngine(static_cast<size_t>(state.range(0)), false);
  std::set<RowId> probe = {0, 1, 2, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->traces()->TraceViewRows(
        "marks", VersionRef::Current(), probe, "Sales",
        TraceEngine::Mode::kLazy));
  }
}
BENCHMARK(BM_BackwardTraceLazy)->Arg(1000)->Arg(10000);

void BM_BackwardTraceEager(benchmark::State& state) {
  auto engine = MakeEngine(static_cast<size_t>(state.range(0)), true);
  std::set<RowId> probe = {0, 1, 2, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->traces()->TraceViewRows(
        "marks", VersionRef::Current(), probe, "Sales",
        TraceEngine::Mode::kEager));
  }
}
BENCHMARK(BM_BackwardTraceEager)->Arg(1000)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  PrintSection31();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
