// Durability cost and recovery speed: (1) interaction throughput with the
// interaction log at each DVMS_WAL_FSYNC group-commit setting — off / batch
// / always — against the no-durability engine, and (2) cold-start recovery
// time for a logged interaction session, replayed from the log alone and
// from a snapshot plus log suffix.

#include <unistd.h>

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "benchmark/benchmark.h"
#include "common/rng.h"
#include "core/dvms.h"

namespace {

using namespace dvms;
using Clock = std::chrono::steady_clock;
namespace fs = std::filesystem;

const char* kProgram = R"(
  C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U
      RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
             (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);
  BBOX = SELECT x AS x0, y AS y0, x + dx AS x1, y + dy AS y1
    FROM C ORDER BY t DESC LIMIT 1;
  SPLOT_POINTS = SELECT 3 AS radius, 'gray' AS fill,
      linear_scale(Sales.revenue, 0, 100, 0, 400) AS center_x,
      linear_scale(Sales.profit, 0, 100, 0, 400) AS center_y,
      productId
    FROM Sales;
  selected = SELECT SP.productId AS productId
    FROM BBOX, SPLOT_POINTS@vnow-1 AS SP
    WHERE in_rectangle(SP.center_x, SP.center_y,
                       BBOX.x0, BBOX.y0, BBOX.x1, BBOX.y1);
  P = render(SELECT * FROM SPLOT_POINTS);
)";

/// A scratch durability directory, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static int counter = 0;
    path_ = fs::temp_directory_path() /
            ("dvms_bench_" + tag + "_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

std::unique_ptr<Dvms> MakeEngine(size_t points, const std::string& data_dir,
                                 const std::string& fsync,
                                 size_t snapshot_interval = 0) {
  Dvms::Options options;
  options.canvas_width = 400;
  options.canvas_height = 400;
  options.num_threads = 1;
  options.data_dir = data_dir;
  options.wal_fsync = fsync;
  options.snapshot_interval = snapshot_interval;
  auto engine = std::make_unique<Dvms>(options);
  (void)engine->CreateBaseTable("Sales",
                                Schema({{"productId", ValueType::kInt64},
                                        {"profit", ValueType::kDouble},
                                        {"revenue", ValueType::kDouble}}));
  Rng rng(11);
  std::vector<Row> rows;
  for (size_t i = 0; i < points; ++i) {
    rows.push_back({Value::Int(static_cast<int64_t>(i)),
                    Value::Double(rng.Uniform(0, 100)),
                    Value::Double(rng.Uniform(0, 100))});
  }
  (void)engine->Insert("Sales", rows);
  if (!engine->LoadProgram(kProgram).ok()) return nullptr;
  return engine;
}

/// One drag interaction plus an insert: 23 logged mutation units.
size_t DriveRound(Dvms* engine, int64_t t_base) {
  (void)engine->PushEvent(InputEvent::MouseDown(t_base, 10, 10));
  for (int m = 1; m <= 20; ++m) {
    (void)engine->PushEvent(
        InputEvent::MouseMove(t_base + m, 10.0 + m * 15, 10.0 + m * 15));
  }
  (void)engine->PushEvent(InputEvent::MouseUp(t_base + 21, 310, 310));
  (void)engine->Insert(
      "Sales", {{Value::Int(t_base + 1000000), Value::Double(50),
                 Value::Double(50)}});
  return 23;
}

void AppendJsonLine(const char* fmt, ...) {
  const char* path = std::getenv("DVMS_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  va_list args;
  va_start(args, fmt);
  std::vfprintf(f, fmt, args);
  va_end(args);
  std::fputc('\n', f);
  std::fclose(f);
}

/// Interaction throughput per fsync mode. "none" is the no-durability
/// engine — the logging ceiling.
void PrintFsyncModeThroughput() {
  std::printf("=== Interaction log throughput by DVMS_WAL_FSYNC ===\n\n");
  constexpr size_t kPoints = 5000;
  constexpr int kRounds = 8;

  struct Arm {
    const char* mode;
    bool durable;
  };
  for (const Arm& arm : {Arm{"none", false}, Arm{"off", true},
                         Arm{"batch", true}, Arm{"always", true}}) {
    TempDir dir(std::string("fsync_") + arm.mode);
    auto engine =
        MakeEngine(kPoints, arm.durable ? dir.str() : "", arm.mode);
    if (engine == nullptr) {
      std::printf("program failed to load\n");
      return;
    }
    (void)DriveRound(engine.get(), 0);  // warmup
    size_t ops = 0;
    Clock::time_point t0 = Clock::now();
    for (int round = 1; round <= kRounds; ++round) {
      ops += DriveRound(engine.get(), round * 100);
    }
    double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    double ops_per_sec = static_cast<double>(ops) / secs;
    uint64_t fsyncs = engine->durability_stats().fsyncs;
    std::printf("  %-7s %10.0f ops/sec  (%zu ops, %llu fsyncs)\n", arm.mode,
                ops_per_sec, ops, static_cast<unsigned long long>(fsyncs));
    AppendJsonLine(
        "{\"bench\": \"recovery_fsync_throughput\", \"mode\": \"%s\", "
        "\"ops\": %zu, \"ops_per_sec\": %.1f, \"fsyncs\": %llu}",
        arm.mode, ops, ops_per_sec,
        static_cast<unsigned long long>(fsyncs));
  }
  std::printf("\n");
}

/// Cold-start recovery latency: pure log replay vs snapshot + suffix.
void PrintRecoveryTime() {
  std::printf("=== Cold-start recovery time ===\n\n");
  constexpr size_t kPoints = 5000;
  constexpr int kRounds = 8;

  struct Arm {
    const char* label;
    size_t snapshot_interval;  // 0 = log replay only
  };
  for (const Arm& arm :
       {Arm{"log_replay", 0}, Arm{"snapshot_plus_suffix", 64}}) {
    TempDir dir(std::string("recover_") + arm.label);
    size_t ops = 0;
    {
      auto engine =
          MakeEngine(kPoints, dir.str(), "off", arm.snapshot_interval);
      if (engine == nullptr) return;
      for (int round = 0; round < kRounds; ++round) {
        ops += DriveRound(engine.get(), round * 100);
      }
    }
    Clock::time_point t0 = Clock::now();
    auto recovered = std::make_unique<Dvms>([&] {
      Dvms::Options options;
      options.canvas_width = 400;
      options.canvas_height = 400;
      options.num_threads = 1;
      options.data_dir = dir.str();
      options.wal_fsync = "off";
      options.snapshot_interval = arm.snapshot_interval;
      return options;
    }());
    double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    const DurabilityStats stats = recovered->durability_stats();
    bool ok = recovered->recovery_status().ok();
    std::printf(
        "  %-22s %8.2f ms  (%llu frames replayed, snapshot=%s) -> %s\n",
        arm.label, ms,
        static_cast<unsigned long long>(stats.frames_replayed),
        stats.recovered_from_snapshot ? "yes" : "no", ok ? "OK" : "FAILED");
    AppendJsonLine(
        "{\"bench\": \"recovery_cold_start\", \"arm\": \"%s\", "
        "\"logged_ops\": %zu, \"recovery_ms\": %.3f, "
        "\"frames_replayed\": %llu, \"from_snapshot\": %s, \"ok\": %s}",
        arm.label, ops, ms,
        static_cast<unsigned long long>(stats.frames_replayed),
        stats.recovered_from_snapshot ? "true" : "false",
        ok ? "true" : "false");
  }
  std::printf("\n");
}

void BM_PushEventDurable(benchmark::State& state) {
  static const char* kModes[] = {"off", "batch", "always"};
  const char* mode = kModes[state.range(0)];
  TempDir dir(std::string("bm_") + mode);
  auto engine = MakeEngine(2000, dir.str(), mode);
  (void)engine->PushEvent(InputEvent::MouseDown(0, 10, 10));
  int64_t t = 1;
  double x = 11;
  for (auto _ : state) {
    (void)engine->PushEvent(InputEvent::MouseMove(t++, x, x));
    x = x < 390 ? x + 1 : 11;
  }
  state.SetLabel(mode);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PushEventDurable)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  PrintFsyncModeThroughput();
  PrintRecoveryTime();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
