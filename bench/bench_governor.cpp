// Resource-governor cost and behavior: (1) the armed-but-untriggered
// overhead of per-request deadlines + memory budgets on the fault-free
// fig2 interaction workload — the budget is < 2% over the unarmed engine
// (the "pass" field BENCH_governor.json is gated on); (2) cooperative
// deadline-abort latency — how far past its 50 ms deadline a runaway
// cross join runs before the next checkpoint aborts it; (3) an abort /
// rollback exercise (deadline, cancel, memory budget) verifying the
// engine state is bit-identical to the pre-abort state each time.

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "benchmark/benchmark.h"
#include "common/rng.h"
#include "core/dvms.h"

namespace {

using namespace dvms;
using Clock = std::chrono::steady_clock;

const char* kProgram = R"(
  C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U
      RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
             (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);
  BBOX = SELECT x AS x0, y AS y0, x + dx AS x1, y + dy AS y1
    FROM C ORDER BY t DESC LIMIT 1;
  SPLOT_POINTS = SELECT 3 AS radius, 'gray' AS fill,
      linear_scale(Sales.revenue, 0, 100, 0, 400) AS center_x,
      linear_scale(Sales.profit, 0, 100, 0, 400) AS center_y,
      productId
    FROM Sales;
  selected = SELECT SP.productId AS productId
    FROM BBOX, SPLOT_POINTS@vnow-1 AS SP
    WHERE in_rectangle(SP.center_x, SP.center_y,
                       BBOX.x0, BBOX.y0, BBOX.x1, BBOX.y1);
  P = render(SELECT * FROM SPLOT_POINTS);
)";

std::unique_ptr<Dvms> MakeEngine(size_t points, bool armed) {
  Dvms::Options options;
  options.canvas_width = 400;
  options.canvas_height = 400;
  options.num_threads = 1;
  if (armed) {
    // Roomy limits: every checkpoint and charge runs, nothing triggers.
    options.deadline_ms = 1'000'000'000;
    options.mem_budget = INT64_MAX / 2;
  }
  auto engine = std::make_unique<Dvms>(options);
  (void)engine->CreateBaseTable("Sales",
                                Schema({{"productId", ValueType::kInt64},
                                        {"profit", ValueType::kDouble},
                                        {"revenue", ValueType::kDouble}}));
  Rng rng(11);
  std::vector<Row> rows;
  for (size_t i = 0; i < points; ++i) {
    rows.push_back({Value::Int(static_cast<int64_t>(i)),
                    Value::Double(rng.Uniform(0, 100)),
                    Value::Double(rng.Uniform(0, 100))});
  }
  (void)engine->Insert("Sales", rows);
  if (!engine->LoadProgram(kProgram).ok()) return nullptr;
  return engine;
}

double DriveWorkloadMs(Dvms* engine, int64_t t_base) {
  Clock::time_point t0 = Clock::now();
  (void)engine->PushEvent(InputEvent::MouseDown(t_base, 10, 10));
  for (int m = 1; m <= 20; ++m) {
    (void)engine->PushEvent(
        InputEvent::MouseMove(t_base + m, 10.0 + m * 15, 10.0 + m * 15));
  }
  (void)engine->PushEvent(InputEvent::MouseUp(t_base + 21, 310, 310));
  (void)engine->Insert(
      "Sales", {{Value::Int(t_base + 1000000), Value::Double(50),
                 Value::Double(50)}});
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

void AppendJsonLine(const char* fmt, ...) {
  const char* path = std::getenv("DVMS_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  va_list args;
  va_start(args, fmt);
  std::vfprintf(f, fmt, args);
  va_end(args);
  std::fputc('\n', f);
  std::fclose(f);
}

std::string Fingerprint(const Dvms& engine) {
  std::ostringstream out;
  for (const std::string& name : engine.catalog().Names()) {
    auto table = engine.GetTable(name);
    if (!table.ok()) continue;
    out << "== " << name << " ==\n";
    for (size_t r = 0; r < table.value()->num_rows(); ++r) {
      for (const Value& v : table.value()->row(r)) out << v.ToString() << "|";
      out << "\n";
    }
  }
  return out.str();
}

/// (1) Armed-but-untriggered overhead, budget < 2%.
void PrintArmedOverhead() {
  std::printf("=== Governor armed-but-untriggered overhead ===\n\n");
  constexpr size_t kPoints = 20000;
  constexpr int kRounds = 7;

  double unarmed_ms = 0, armed_ms = 0;
  // Interleave the arms so thermal / allocator drift hits both equally.
  for (int mode = 0; mode < 2; ++mode) {
    const bool armed = mode == 1;
    auto engine = MakeEngine(kPoints, armed);
    if (engine == nullptr) {
      std::printf("program failed to load\n");
      return;
    }
    (void)DriveWorkloadMs(engine.get(), 0);  // warmup
    double best = 0;
    for (int round = 0; round < kRounds; ++round) {
      double ms = DriveWorkloadMs(engine.get(), (round + 1) * 100);
      if (best == 0 || ms < best) best = ms;
    }
    (armed ? armed_ms : unarmed_ms) = best;
  }

  double overhead_pct = (armed_ms - unarmed_ms) / unarmed_ms * 100.0;
  bool pass = overhead_pct < 2.0;
  std::printf("%zu points, 22-event drag + insert, best of %d rounds:\n",
              kPoints, kRounds);
  std::printf("  governor unarmed: %8.2f ms\n", unarmed_ms);
  std::printf("  governor armed:   %8.2f ms  (deadline + budget, roomy)\n",
              armed_ms);
  std::printf("  overhead:         %8.2f %%  (budget < 2%%) -> %s\n\n",
              overhead_pct, pass ? "OK" : "OVER BUDGET");
  AppendJsonLine(
      "{\"bench\": \"governor_armed_overhead\", \"points\": %zu, "
      "\"unarmed_ms\": %.4f, \"armed_ms\": %.4f, "
      "\"overhead_pct\": %.2f, \"pass\": %s}",
      kPoints, unarmed_ms, armed_ms, overhead_pct, pass ? "true" : "false");
}

/// (2) Cooperative deadline-abort latency on a runaway statement: a cross
/// join over 4000 x 4000 pairs under a 50 ms deadline. The overrun past
/// the deadline is the checkpoint granularity — about one morsel / one
/// 1024-pair slice, i.e. milliseconds, not the seconds the join needs.
void PrintDeadlineAbortLatency() {
  std::printf("=== Deadline abort latency (50 ms deadline) ===\n\n");
  constexpr size_t kPoints = 4000;
  Dvms::Options options;
  options.canvas_width = 400;
  options.canvas_height = 400;
  options.num_threads = 1;
  options.deadline_ms = 50;
  Dvms engine(options);
  (void)engine.CreateBaseTable("Sales",
                               Schema({{"productId", ValueType::kInt64},
                                       {"profit", ValueType::kDouble},
                                       {"revenue", ValueType::kDouble}}));
  Rng rng(13);
  std::vector<Row> rows;
  for (size_t i = 0; i < kPoints; ++i) {
    rows.push_back({Value::Int(static_cast<int64_t>(i)),
                    Value::Double(rng.Uniform(0, 100)),
                    Value::Double(rng.Uniform(0, 100))});
  }
  // Seeding must beat the 50 ms deadline too — insert in small batches.
  for (size_t at = 0; at < rows.size(); at += 500) {
    std::vector<Row> batch(rows.begin() + at,
                           rows.begin() + std::min(at + 500, rows.size()));
    if (!engine.Insert("Sales", batch).ok()) {
      std::printf("seeding aborted by the 50 ms deadline; host too slow\n");
      return;
    }
  }

  Clock::time_point t0 = Clock::now();
  Status st = engine.Query(
                        "SELECT a.productId AS x FROM Sales AS a, Sales AS b "
                        "WHERE a.revenue + b.revenue < -1")
                  .status();
  double abort_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  bool aborted = st.code() == StatusCode::kDeadlineExceeded;
  std::printf("16M-pair cross join, 50 ms deadline:\n");
  std::printf("  returned after: %8.2f ms (%s)\n", abort_ms,
              aborted ? "kDeadlineExceeded" : st.message().c_str());
  std::printf("  overrun:        %8.2f ms past the deadline\n\n",
              abort_ms - 50.0);
  AppendJsonLine(
      "{\"bench\": \"governor_deadline_abort\", \"deadline_ms\": 50, "
      "\"abort_ms\": %.4f, \"aborted\": %s}",
      abort_ms, aborted ? "true" : "false");
}

/// (3) Abort + rollback exercise: deadline, cancel, and memory-budget
/// aborts each leave the engine bit-identical to its pre-abort state.
/// This section is also the ASan leg's governed-abort workload.
void PrintAbortRollbackExercise() {
  std::printf("=== Governed abort rollback exercise ===\n\n");
  Dvms::Options options;
  options.canvas_width = 400;
  options.canvas_height = 400;
  options.num_threads = 1;
  options.deadline_ms = 10'000;
  // Roomy enough for the program's own views over 5000 rows; the 25M-pair
  // cross join charges orders of magnitude more and must trip it.
  options.mem_budget = 32 * 1024 * 1024;
  {
    Dvms armed(options);
    (void)armed.CreateBaseTable("Sales",
                                Schema({{"productId", ValueType::kInt64},
                                        {"profit", ValueType::kDouble},
                                        {"revenue", ValueType::kDouble}}));
    Rng rng(11);
    std::vector<Row> rows;
    for (size_t i = 0; i < 5000; ++i) {
      rows.push_back({Value::Int(static_cast<int64_t>(i)),
                      Value::Double(rng.Uniform(0, 100)),
                      Value::Double(rng.Uniform(0, 100))});
    }
    (void)armed.Insert("Sales", rows);
    if (!armed.LoadProgram(kProgram).ok()) {
      std::printf("program failed to load\n");
      return;
    }
    const std::string before = Fingerprint(armed);

    // Memory-budget abort: 25M-pair cross join against a 1 MiB budget.
    Status mem = armed.Query(
                          "SELECT a.revenue AS x, b.revenue AS y "
                          "FROM Sales AS a, Sales AS b")
                     .status();
    // Cancel abort: raised from "another client", consumed by the insert.
    armed.RequestCancel();
    Status cancel = armed.Insert(
        "Sales", {{Value::Int(7000000), Value::Double(1), Value::Double(1)}});
    bool rolled_back = Fingerprint(armed) == before;
    size_t mem_aborts = armed.governor_stats().mem_aborts;
    size_t cancel_aborts = armed.governor_stats().cancel_aborts;
    std::printf("memory abort: %s; cancel abort: %s; state restored: %s\n\n",
                mem.ok() ? "MISSED" : "ok",
                cancel.ok() ? "MISSED" : "ok",
                rolled_back ? "bit-identical" : "DIVERGED");
    AppendJsonLine(
        "{\"bench\": \"governor_abort_rollback\", \"mem_aborts\": %zu, "
        "\"cancel_aborts\": %zu, \"rolled_back\": %s}",
        mem_aborts, cancel_aborts, rolled_back ? "true" : "false");
  }
}

void BM_PushEventGoverned(benchmark::State& state) {
  auto engine = MakeEngine(static_cast<size_t>(state.range(0)),
                           /*armed=*/state.range(1) != 0);
  (void)engine->PushEvent(InputEvent::MouseDown(0, 10, 10));
  int64_t t = 1;
  double x = 11;
  for (auto _ : state) {
    (void)engine->PushEvent(InputEvent::MouseMove(t++, x, x));
    x = x < 390 ? x + 1 : 11;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PushEventGoverned)->Args({10000, 0})->Args({10000, 1});

}  // namespace

int main(int argc, char** argv) {
  PrintArmedOverhead();
  PrintDeadlineAbortLatency();
  PrintAbortRollbackExercise();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
