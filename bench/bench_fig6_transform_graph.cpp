// Figure 6: interaction graphs derived from the SDSS SkyServer query log.
// Reproduces the paper's statistics on a synthetic log with the same
// structure: >99.1% of statements map to 6 templates, and the two most
// frequent interactions cover ~70% and ~12% of the sample.

#include <chrono>
#include <cstdio>

#include "benchmark/benchmark.h"
#include "precision/transform_graph.h"
#include "workload/sdss.h"

namespace {

using namespace dvms;

void PrintFigure6() {
  std::printf("=== Figure 6: SDSS transformation graph ===\n\n");
  SdssLogConfig config;
  config.num_sessions = 1500;  // ~30k queries; same structure as the
                               // 125,600-query real log
  auto t0 = std::chrono::steady_clock::now();
  SdssLog log = GenerateSdssLog(config);
  std::vector<TransformRule> rules = DefaultSdssRules();
  TransformGraph graph = BuildTransformGraph(log.sessions, rules);
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();

  std::printf("log: %zu queries in %zu sessions "
              "(parsed + diffed in %.0f ms)\n",
              log.total_queries, log.sessions.size(), ms);
  std::printf("templates: %zu; mapped fraction: %.2f%%   "
              "(paper: >99.1%% across 6 templates)\n",
              SdssTemplateCount(), 100.0 * graph.ParsedFraction());
  std::printf("graph: %zu vertices, %zu edges, %zu unmatched pairs\n\n",
              graph.queries.size(), graph.edges.size(),
              graph.unmatched_pairs);

  std::printf("edge types (8 hand-coded transformation rules):\n");
  auto counts = graph.InteractionCounts();
  for (const auto& [name, count] : counts) {
    std::printf("  %-24s %6zu (%.1f%%)\n", name.c_str(), count,
                100.0 * graph.CoverageOf(name));
  }
  if (counts.size() >= 2) {
    std::printf("\ntwo most frequent interactions cover %.0f%% and %.0f%% "
                "of the sample (paper: 70%% and 12%%)\n",
                100.0 * graph.CoverageOf(counts[0].first),
                100.0 * graph.CoverageOf(counts[1].first));
  }

  // Graph density: out-degree distribution summary.
  std::vector<size_t> degree(graph.queries.size(), 0);
  for (const auto& edge : graph.edges) ++degree[edge.from];
  size_t isolated = 0, max_degree = 0;
  for (size_t d : degree) {
    if (d == 0) ++isolated;
    max_degree = std::max(max_degree, d);
  }
  std::printf("density: %.3f edges/vertex, max out-degree %zu, "
              "%zu terminal vertices\n",
              static_cast<double>(graph.edges.size()) /
                  static_cast<double>(graph.queries.size()),
              max_degree, isolated);

  // A renderable sample of the graph (Figure 6 is this, drawn).
  std::string dot = graph.ToDot(400);
  FILE* f = std::fopen("fig6_transform_graph.dot", "w");
  if (f != nullptr) {
    std::fwrite(dot.data(), 1, dot.size(), f);
    std::fclose(f);
    std::printf("wrote fig6_transform_graph.dot (400-edge sample)\n");
  }
  std::printf("\n");
}

void BM_BuildTransformGraph(benchmark::State& state) {
  SdssLogConfig config;
  config.num_sessions = static_cast<size_t>(state.range(0));
  SdssLog log = GenerateSdssLog(config);
  std::vector<TransformRule> rules = DefaultSdssRules();
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildTransformGraph(log.sessions, rules));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(log.total_queries));
}
BENCHMARK(BM_BuildTransformGraph)->Arg(50)->Arg(200);

void BM_RuleMatchSinglePair(benchmark::State& state) {
  auto old_ast =
      ParseToAst("SELECT ra, dec FROM photoobj WHERE ra > 180.5 AND ra < 181")
          .value();
  auto new_ast =
      ParseToAst("SELECT ra, dec FROM photoobj WHERE ra > 181.5 AND ra < 182")
          .value();
  std::vector<TransformRule> rules = DefaultSdssRules();
  for (auto _ : state) {
    for (const TransformRule& rule : rules) {
      if (RuleMatches(rule, old_ast, new_ast)) break;
    }
  }
}
BENCHMARK(BM_RuleMatchSinglePair);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure6();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
