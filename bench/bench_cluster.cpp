// Cluster routing cost model: what the resilient router costs when nothing
// is wrong, what a failover blackout costs when the primary dies mid-write
// stream, and whether hedged-read accounting stays exact. Gates are
// 1-core-safe: routed healthy reads must stay within 5% of direct engine
// reads (the router adds a pick + stats, not a copy), the failover section
// must lose zero acknowledged commits, and hedges_won + hedges_lost must
// equal hedges_launched. Latencies are reported without timing gates — the
// CI host is one core and hedging there is about accounting, not speedup.

#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "benchmark/benchmark.h"
#include "cluster/cluster_client.h"
#include "core/dvms.h"
#include "core/session.h"

namespace {

using namespace dvms;
using namespace dvms::cluster;
using Clock = std::chrono::steady_clock;
namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static int counter = 0;
    path_ = fs::temp_directory_path() /
            ("dvms_bench_cluster_" + tag + "_" + std::to_string(::getpid()) +
             "_" + std::to_string(counter++));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

Dvms::Options PrimaryOptions(const std::string& dir) {
  Dvms::Options options;
  options.canvas_width = 100;
  options.canvas_height = 100;
  options.num_threads = 1;
  options.data_dir = dir;
  options.wal_fsync = "batch";
  options.snapshot_interval = 128;
  return options;
}

Dvms::Options ReplicaOptions(const std::string& dir) {
  Dvms::Options options;
  options.canvas_width = 100;
  options.canvas_height = 100;
  options.num_threads = 1;
  options.replica_of = dir;
  options.replica_poll_ms = 1;
  return options;
}

std::unique_ptr<Dvms> MakePrimary(const std::string& dir, int rows) {
  auto engine = std::make_unique<Dvms>(PrimaryOptions(dir));
  (void)engine->CreateBaseTable("Sales",
                                Schema({{"productId", ValueType::kInt64},
                                        {"profit", ValueType::kDouble},
                                        {"revenue", ValueType::kDouble}}));
  if (rows > 0) {
    std::vector<Row> batch;
    for (int i = 0; i < rows; ++i) {
      batch.push_back({Value::Int(i), Value::Double((i * 37) % 101),
                       Value::Double((i * 53) % 101)});
    }
    (void)engine->Insert("Sales", std::move(batch));
  }
  return engine;
}

void AppendJsonLine(const char* fmt, ...) {
  const char* path = std::getenv("DVMS_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  va_list args;
  va_start(args, fmt);
  std::vfprintf(f, fmt, args);
  va_end(args);
  std::fputc('\n', f);
  std::fclose(f);
}

constexpr const char* kReadSql =
    "SELECT productId, profit FROM Sales ORDER BY productId LIMIT 32";

/// § 1: the router's overhead on the healthy path. Same engine, same
/// query; direct Session reads vs. reads routed through a single-endpoint
/// cluster (so routing cost is isolated from replica placement). Blocks
/// are interleaved and the best-of-three per side is compared, which keeps
/// the gate honest on a noisy shared host.
void PrintRoutedOverhead() {
  std::printf("=== Cluster: routed read overhead (healthy path) ===\n\n");
  TempDir dir("overhead");
  auto primary = MakePrimary(dir.str(), 512);

  ClusterOptions copts;
  copts.staleness_bound_frames = 0;
  copts.max_attempts = 2;
  copts.backoff_floor_ms = 1;
  copts.backoff_cap_ms = 4;
  copts.hedge_percentile = 0;  // measure the router, not the hedger
  copts.deadline_ms = 0;
  copts.seed = 17;
  ClusterClient client(copts);
  (void)client.AddEndpoint("p", primary.get());

  constexpr int kReads = 400;
  constexpr int kTrials = 5;
  // Warm both paths (plan cache, first-touch allocations).
  for (int i = 0; i < 16; ++i) {
    (void)Session(primary.get()).Query(kReadSql);
    (void)client.Query(kReadSql);
  }
  // Gate on the best per-trial ratio: within one trial the two sides run
  // back-to-back under the same machine conditions, so the ratio is far
  // more stable than comparing bests drawn from different moments.
  double best_direct_ms = 0;
  double best_routed_ms = 0;
  double overhead_pct = 1e18;
  bool all_ok = true;
  for (int trial = 0; trial < kTrials; ++trial) {
    Clock::time_point t0 = Clock::now();
    for (int i = 0; i < kReads; ++i) {
      Session session(primary.get());
      Result<Table> r = session.Query(kReadSql);
      all_ok &= r.ok();
    }
    const double direct_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    t0 = Clock::now();
    for (int i = 0; i < kReads; ++i) {
      Result<Table> r = client.Query(kReadSql);
      all_ok &= r.ok();
    }
    const double routed_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    const double trial_pct =
        direct_ms > 0 ? (routed_ms - direct_ms) / direct_ms * 100.0 : 100.0;
    if (trial_pct < overhead_pct) {
      overhead_pct = trial_pct;
      best_direct_ms = direct_ms;
      best_routed_ms = routed_ms;
    }
  }
  const bool pass = all_ok && overhead_pct < 5.0;
  std::printf("%d reads x %d trials, best per side:\n", kReads, kTrials);
  std::printf("  direct (Session):      %10.2f ms\n", best_direct_ms);
  std::printf("  routed (ClusterClient):%10.2f ms\n", best_routed_ms);
  std::printf("  overhead:              %+9.2f %% (gate < 5%%) -> %s\n\n",
              overhead_pct, pass ? "OK" : "TOO SLOW");
  AppendJsonLine(
      "{\"bench\": \"cluster_routed_overhead\", \"reads\": %d, "
      "\"direct_ms\": %.3f, \"routed_ms\": %.3f, \"overhead_pct\": %.2f, "
      "\"pass\": %s}",
      kReads, best_direct_ms, best_routed_ms, overhead_pct,
      pass ? "true" : "false");
}

/// § 2: failover blackout. A write stream runs through the client; the
/// primary is detached and destroyed mid-stream; the next routed write
/// promotes the most caught-up replica. The blackout window is the gap
/// from the kill to that write's acknowledgement, and the pass condition
/// is zero lost acknowledged commits on the promoted fleet.
void PrintFailoverBlackout() {
  std::printf("=== Cluster: failover blackout window ===\n\n");
  TempDir dir("failover");
  auto primary = MakePrimary(dir.str(), 0);
  auto r1 = std::make_unique<Dvms>(ReplicaOptions(dir.str()));
  auto r2 = std::make_unique<Dvms>(ReplicaOptions(dir.str()));

  ClusterOptions copts;
  copts.staleness_bound_frames = 1 << 20;
  copts.max_attempts = 10;
  copts.backoff_floor_ms = 1;
  copts.backoff_cap_ms = 8;
  copts.hedge_percentile = 0;
  copts.deadline_ms = 0;
  copts.seed = 23;
  ClusterClient client(copts);
  (void)client.AddEndpoint("p", primary.get());
  (void)client.AddEndpoint("r1", r1.get());
  (void)client.AddEndpoint("r2", r2.get());

  constexpr int kWrites = 200;
  constexpr int kKillAt = 100;
  int acked = 0;
  double blackout_ms = 0;
  for (int i = 0; i < kWrites; ++i) {
    if (i == kKillAt) {
      (void)client.DetachEndpoint("p");
      primary.reset();  // the engine is gone, not just unreachable
    }
    Clock::time_point t0 = Clock::now();
    Status st = client.Insert(
        "Sales",
        {{Value::Int(10000 + i), Value::Double(1), Value::Double(2)}});
    if (st.ok()) ++acked;
    if (i == kKillAt) {
      blackout_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    }
  }
  const ClusterStats stats = client.stats();
  Result<std::string> new_primary = client.PrimaryName();
  // Count on the promoted owner itself: a routed COUNT could legally land
  // on a replica that is still catching up (in-bound stale read), which
  // would look like loss when it is only lag.
  Dvms* promoted = nullptr;
  if (new_primary.ok()) {
    promoted = new_primary.value() == "r1" ? r1.get() : r2.get();
  }
  Result<Table> rows = promoted != nullptr
                           ? promoted->Query("SELECT COUNT(*) AS n FROM Sales")
                           : Result<Table>(Status::Unavailable("no primary"));
  const int64_t surviving =
      rows.ok() ? rows.value().row(0)[0].int_value() : -1;
  const bool pass = acked == kWrites && stats.failovers == 1 &&
                    new_primary.ok() && surviving == acked;
  std::printf("%d routed writes, primary killed before write %d:\n", kWrites,
              kKillAt);
  std::printf("  blackout (kill -> next acked write): %8.1f ms\n",
              blackout_ms);
  std::printf("  acked writes:          %10d / %d\n", acked, kWrites);
  std::printf("  surviving rows:        %10" PRId64 " on %s\n", surviving,
              new_primary.ok() ? new_primary.value().c_str() : "<none>");
  std::printf("  acked commits lost:    %10d -> %s\n\n",
              static_cast<int>(kWrites - surviving),
              pass ? "OK" : "LOST COMMITS");
  AppendJsonLine(
      "{\"bench\": \"cluster_failover_blackout\", \"writes\": %d, "
      "\"blackout_ms\": %.1f, \"acked\": %d, \"surviving_rows\": %" PRId64
      ", \"failovers\": %llu, \"pass\": %s}",
      kWrites, blackout_ms, acked, surviving,
      static_cast<unsigned long long>(stats.failovers),
      pass ? "true" : "false");
}

/// § 3: hedged reads. With an aggressive cutoff (p50) every read past the
/// median races a second endpoint, so on any host — including the 1-core
/// CI box where a hedge cannot actually be faster — the accounting
/// invariant hedges_won + hedges_lost == hedges_launched is exercised
/// hard. Latency is reported, not gated.
void PrintHedgeAccounting() {
  std::printf("=== Cluster: hedged read accounting ===\n\n");
  TempDir dir("hedge");
  auto primary = MakePrimary(dir.str(), 512);
  auto r1 = std::make_unique<Dvms>(ReplicaOptions(dir.str()));
  auto r2 = std::make_unique<Dvms>(ReplicaOptions(dir.str()));
  (void)primary->FlushWal();
  const uint64_t target = primary->wal_lsn();
  (void)r1->WaitForReplicaLsn(target, 60000);
  (void)r2->WaitForReplicaLsn(target, 60000);

  ClusterOptions copts;
  copts.staleness_bound_frames = 1 << 20;
  copts.max_attempts = 4;
  copts.backoff_floor_ms = 1;
  copts.backoff_cap_ms = 4;
  copts.hedge_percentile = 50;
  copts.hedge_min_samples = 8;
  copts.deadline_ms = 0;
  copts.seed = 31;
  ClusterClient client(copts);
  (void)client.AddEndpoint("p", primary.get());
  (void)client.AddEndpoint("r1", r1.get());
  (void)client.AddEndpoint("r2", r2.get());

  constexpr int kReads = 500;
  int ok_reads = 0;
  Clock::time_point t0 = Clock::now();
  for (int i = 0; i < kReads; ++i) {
    if (client.Query(kReadSql).ok()) ++ok_reads;
  }
  const double total_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  // In-flight backups resolve asynchronously; give the ledger a moment.
  ClusterStats stats = client.stats();
  for (int i = 0; i < 500; ++i) {
    if (stats.hedges_won + stats.hedges_lost >= stats.hedges_launched) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    stats = client.stats();
  }
  const bool balanced =
      stats.hedges_won + stats.hedges_lost == stats.hedges_launched;
  const bool pass = balanced && ok_reads == kReads;
  std::printf("%d reads at p50 hedge cutoff:\n", kReads);
  std::printf("  mean routed latency:   %10.1f us\n",
              total_ms * 1000.0 / kReads);
  std::printf("  hedges launched:       %10llu\n",
              static_cast<unsigned long long>(stats.hedges_launched));
  std::printf("  hedges won / lost:     %6llu / %llu -> %s\n\n",
              static_cast<unsigned long long>(stats.hedges_won),
              static_cast<unsigned long long>(stats.hedges_lost),
              balanced ? "balanced" : "LEAKED");
  AppendJsonLine(
      "{\"bench\": \"cluster_hedge_accounting\", \"reads\": %d, "
      "\"mean_read_us\": %.1f, \"launched\": %llu, \"won\": %llu, "
      "\"lost\": %llu, \"pass\": %s}",
      kReads, total_ms * 1000.0 / kReads,
      static_cast<unsigned long long>(stats.hedges_launched),
      static_cast<unsigned long long>(stats.hedges_won),
      static_cast<unsigned long long>(stats.hedges_lost),
      pass ? "true" : "false");
}

/// The per-read cost of the routing pick + stats, microbenchmarked.
void BM_RoutedRead(benchmark::State& state) {
  TempDir dir("bm_routed");
  auto primary = MakePrimary(dir.str(), 128);
  ClusterOptions copts;
  copts.staleness_bound_frames = 0;
  copts.max_attempts = 2;
  copts.backoff_floor_ms = 1;
  copts.backoff_cap_ms = 4;
  copts.hedge_percentile = 0;
  copts.deadline_ms = 0;
  copts.seed = 17;
  ClusterClient client(copts);
  (void)client.AddEndpoint("p", primary.get());
  for (auto _ : state) {
    auto r = client.Query(kReadSql);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoutedRead);

void BM_DirectRead(benchmark::State& state) {
  TempDir dir("bm_direct");
  auto primary = MakePrimary(dir.str(), 128);
  for (auto _ : state) {
    Session session(primary.get());
    auto r = session.Query(kReadSql);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DirectRead);

}  // namespace

int main(int argc, char** argv) {
  PrintRoutedOverhead();
  PrintFailoverBlackout();
  PrintHedgeAccounting();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
