// Table 1: contents of the compound-event table C during a user drag,
// reproduced by feeding the paper's exact event sequence through the DeVIL
// 2 pattern. Also benchmarks event-recognizer throughput.

#include <cstdio>

#include "benchmark/benchmark.h"
#include "common/rng.h"
#include "events/recognizer.h"
#include "parser/parser.h"

namespace {

using namespace dvms;

const char* kDrag =
    "C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U "
    "WHERE FORALL m IN M m.y > 5 "
    "RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy), "
    "(M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);";

EventStmt ParseEvent(const std::string& source) {
  return ParseProgram(source).value().statements[0].event;
}

void PrintTable1() {
  std::printf("=== Table 1: contents of compound-event table C ===\n");
  std::printf("(DeVIL 2 pattern; paper's input sequence)\n\n");
  Catalog catalog;
  UdfRegistry udfs = UdfRegistry::WithBuiltins();
  EventRecognizer recognizer(&catalog, &udfs);
  if (!recognizer.DefinePattern("C", ParseEvent(kDrag)).ok()) return;

  std::vector<std::pair<InputEvent, const char*>> inputs = {
      {InputEvent::MouseDown(0, 5, 15), "MOUSE_DOWN(0,5,15)"},
      {InputEvent::MouseMove(1, 6, 17), "MOUSE_MOVE(1,6,17)"},
      {InputEvent::MouseMove(40, 10, 10), "MOUSE_MOVE(40,10,10)"},
      {InputEvent::MouseUp(41, 10, 10), "MOUSE_UP(41,10,10)"},
  };
  std::printf("%4s %4s %4s %4s %4s   %s\n", "t", "x", "y", "dx", "dy",
              "Input event");
  size_t printed = 0;
  for (const auto& [event, label] : inputs) {
    auto outcomes = recognizer.Feed(event).value();
    const Table& c = catalog.Get("C").value()->current();
    bool terminated = !outcomes.empty() &&
                      outcomes[0].action == MatchAction::kCommitted;
    if (c.num_rows() > printed) {
      for (size_t r = printed; r < c.num_rows(); ++r) {
        const Row& row = c.row(r);
        std::printf("%4s %4s %4s %4s %4s   %s\n", row[0].ToString().c_str(),
                    row[1].ToString().c_str(), row[2].ToString().c_str(),
                    row[3].ToString().c_str(), row[4].ToString().c_str(),
                    label);
      }
      printed = c.num_rows();
    } else {
      std::printf("%26s %s%s\n", "", label,
                  terminated ? " terminates the query" : " (no insertion)");
    }
  }
  std::printf("\n");
}

void BM_RecognizerDragThroughput(benchmark::State& state) {
  Catalog catalog;
  UdfRegistry udfs = UdfRegistry::WithBuiltins();
  EventRecognizer recognizer(&catalog, &udfs);
  (void)recognizer.DefinePattern("C", ParseEvent(kDrag));
  const int moves = static_cast<int>(state.range(0));
  int64_t t = 0;
  size_t events = 0;
  for (auto _ : state) {
    (void)recognizer.Feed(InputEvent::MouseDown(t++, 5, 15));
    for (int m = 0; m < moves; ++m) {
      (void)recognizer.Feed(InputEvent::MouseMove(t++, 6.0 + m, 15.0 + m));
    }
    (void)recognizer.Feed(InputEvent::MouseUp(t++, 6.0 + moves, 15.0 + moves));
    events += static_cast<size_t>(moves) + 2;
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
}
BENCHMARK(BM_RecognizerDragThroughput)->Arg(8)->Arg(64)->Arg(512);

void BM_RecognizerFiltersNonAlphabet(benchmark::State& state) {
  // Cost of filtering events that are not in the pattern alphabet.
  Catalog catalog;
  UdfRegistry udfs = UdfRegistry::WithBuiltins();
  EventRecognizer recognizer(&catalog, &udfs);
  (void)recognizer.DefinePattern("C", ParseEvent(kDrag));
  int64_t t = 0;
  for (auto _ : state) {
    (void)recognizer.Feed(InputEvent::KeyPress(t++, "a"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecognizerFiltersNonAlphabet);

}  // namespace

int main(int argc, char** argv) {
  PrintTable1();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
