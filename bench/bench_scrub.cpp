// Integrity-scrubber cost: (1) overhead of a background scrub cadence on
// the durable interaction workload from the recovery bench — the
// acceptance bar is < 2% versus the scrubber-off engine ("pass" in
// BENCH_scrub.json) — (2) the latency of one scrub pass over a directory
// of sealed segments + snapshots, and (3) a detection smoke: a flipped
// byte in a sealed segment must be found (and quarantined) by exactly one
// pass.

#include <unistd.h>

#include <chrono>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "benchmark/benchmark.h"
#include "core/dvms.h"
#include "durability/manager.h"

namespace {

using namespace dvms;
using Clock = std::chrono::steady_clock;
namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static int counter = 0;
    path_ = fs::temp_directory_path() /
            ("dvms_bench_" + tag + "_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

void AppendJsonLine(const char* fmt, ...) {
  const char* path = std::getenv("DVMS_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  va_list args;
  va_start(args, fmt);
  std::vfprintf(f, fmt, args);
  va_end(args);
  std::fputc('\n', f);
  std::fclose(f);
}

std::unique_ptr<Dvms> MakeEngine(const std::string& data_dir,
                                 int64_t scrub_ms,
                                 size_t snapshot_interval = 16) {
  Dvms::Options options;
  options.canvas_width = 64;
  options.canvas_height = 64;
  options.num_threads = 1;
  options.data_dir = data_dir;
  options.wal_fsync = "batch";
  options.snapshot_interval = snapshot_interval;
  options.scrub_ms = scrub_ms;
  auto engine = std::make_unique<Dvms>(options);
  if (!engine->recovery_status().ok()) return nullptr;
  Status created = engine->CreateBaseTable(
      "Sales", Schema({{"id", ValueType::kInt64}, {"v", ValueType::kDouble}}));
  if (!created.ok()) return nullptr;
  return engine;
}

/// One durable round: kOps single-row inserts with periodic automatic
/// snapshots, so the scrubber has live sealed segments to re-verify while
/// the workload runs.
constexpr int kOps = 1200;

double MeasureWorkloadMs(int64_t scrub_ms) {
  TempDir dir(scrub_ms > 0 ? "scrub_on" : "scrub_off");
  auto engine = MakeEngine(dir.str(), scrub_ms);
  if (engine == nullptr) return -1.0;
  Clock::time_point t0 = Clock::now();
  for (int64_t i = 0; i < kOps; ++i) {
    if (!engine->Insert("Sales", {{Value::Int(i), Value::Double(i * 0.5)}})
             .ok()) {
      return -1.0;
    }
  }
  (void)engine->FlushWal();
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

void PrintScrubOverhead() {
  std::printf("=== Scrubber overhead (durable insert workload) ===\n\n");
  constexpr int kReps = 5;
  constexpr int64_t kCadenceMs = 20;
  (void)MeasureWorkloadMs(0);  // warm-up (allocators, page cache)
  double base_ms = -1.0;
  double scrub_ms = -1.0;
  // Alternate arms; best-of-reps suppresses 1-core scheduling noise.
  for (int rep = 0; rep < kReps; ++rep) {
    double b = MeasureWorkloadMs(0);
    double s = MeasureWorkloadMs(kCadenceMs);
    if (b < 0 || s < 0) {
      std::printf("  workload failed\n");
      return;
    }
    if (base_ms < 0 || b < base_ms) base_ms = b;
    if (scrub_ms < 0 || s < scrub_ms) scrub_ms = s;
  }
  double overhead_pct = 100.0 * (scrub_ms - base_ms) / base_ms;
  if (overhead_pct < 0) overhead_pct = 0.0;
  const bool pass = overhead_pct < 2.0;
  std::printf("%d durable inserts, snapshot every 16, best of %d:\n", kOps,
              kReps);
  std::printf("  scrubber off:          %8.2f ms\n", base_ms);
  std::printf("  scrubber every %2lldms:   %8.2f ms  (%+.2f%%)\n",
              static_cast<long long>(kCadenceMs), scrub_ms, overhead_pct);
  std::printf("  budget: < 2%% -> %s\n\n", pass ? "PASS" : "FAIL");
  AppendJsonLine(
      "{\"bench\": \"scrub_overhead\", \"ops\": %d, "
      "\"cadence_ms\": %lld, \"baseline_ms\": %.3f, \"scrubbed_ms\": %.3f, "
      "\"overhead_pct\": %.3f, \"pass\": %s}",
      kOps, static_cast<long long>(kCadenceMs), base_ms, scrub_ms,
      overhead_pct, pass ? "true" : "false");
}

void PrintScrubPassLatency() {
  std::printf("=== Scrub pass latency ===\n\n");
  TempDir dir("scrub_pass");
  auto engine = MakeEngine(dir.str(), 0, /*snapshot_interval=*/0);
  if (engine == nullptr) return;
  // Build a directory with several sealed segments: each checkpoint seals
  // the current segment, and retention keeps the ones past the
  // second-newest snapshot.
  for (int64_t i = 0; i < 8; ++i) {
    for (int64_t j = 0; j < 50; ++j) {
      (void)engine->Insert(
          "Sales", {{Value::Int(i * 50 + j), Value::Double(j * 1.5)}});
    }
    (void)engine->Checkpoint();
  }
  (void)engine->ScrubNow();  // warm-up
  constexpr int kPasses = 20;
  Clock::time_point t0 = Clock::now();
  for (int i = 0; i < kPasses; ++i) {
    if (!engine->ScrubNow().ok()) return;
  }
  double ms_per_pass =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count() /
      kPasses;
  Dvms::StorageStats stats = engine->storage_stats();
  uint64_t per_pass_segments = stats.scrub_segments_scanned / stats.scrub_passes;
  uint64_t per_pass_snapshots =
      stats.scrub_snapshots_scanned / stats.scrub_passes;
  std::printf("  %.3f ms/pass  (%llu segments + %llu snapshots per pass)\n\n",
              ms_per_pass,
              static_cast<unsigned long long>(per_pass_segments),
              static_cast<unsigned long long>(per_pass_snapshots));
  AppendJsonLine(
      "{\"bench\": \"scrub_pass_latency\", \"ms_per_pass\": %.4f, "
      "\"segments_per_pass\": %llu, \"snapshots_per_pass\": %llu}",
      ms_per_pass, static_cast<unsigned long long>(per_pass_segments),
      static_cast<unsigned long long>(per_pass_snapshots));
}

void PrintDetectionSmoke() {
  std::printf("=== Detection smoke (one flipped byte per pass) ===\n\n");
  TempDir dir("scrub_detect");
  auto engine = MakeEngine(dir.str(), 0, /*snapshot_interval=*/0);
  if (engine == nullptr) return;
  for (int64_t round = 0; round < 2; ++round) {
    for (int64_t j = 0; j < 50; ++j) {
      (void)engine->Insert(
          "Sales", {{Value::Int(round * 50 + j), Value::Double(1.0)}});
    }
    (void)engine->Checkpoint();
  }
  Result<std::vector<uint64_t>> segs = ListWalSegments(dir.str());
  if (!segs.ok() || segs.value().size() < 2) return;
  const std::string sealed = WalSegmentPath(dir.str(), segs.value()[0]);
  {
    std::fstream f(sealed, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(fs::file_size(sealed) / 2));
    char byte = 0;
    f.read(&byte, 1);
    byte ^= 0x40;
    f.seekp(static_cast<std::streamoff>(fs::file_size(sealed) / 2));
    f.write(&byte, 1);
  }
  (void)engine->ScrubNow();
  Dvms::StorageStats stats = engine->storage_stats();
  const bool detected = stats.scrub_corruptions > 0;
  const bool quarantined = stats.scrub_quarantined > 0;
  std::printf("  flipped 1 byte -> detected=%s quarantined=%s\n\n",
              detected ? "yes" : "no", quarantined ? "yes" : "no");
  AppendJsonLine(
      "{\"bench\": \"scrub_detection\", \"detected\": %s, "
      "\"quarantined\": %s, \"pass\": %s}",
      detected ? "true" : "false", quarantined ? "true" : "false",
      detected && quarantined ? "true" : "false");
}

void BM_ScrubPass(benchmark::State& state) {
  TempDir dir("bm_scrub");
  auto engine = MakeEngine(dir.str(), 0, /*snapshot_interval=*/0);
  if (engine == nullptr) return;
  for (int64_t i = 0; i < 100; ++i) {
    (void)engine->Insert("Sales", {{Value::Int(i), Value::Double(1.0)}});
    if (i % 25 == 24) (void)engine->Checkpoint();
  }
  for (auto _ : state) {
    (void)engine->ScrubNow();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScrubPass);

}  // namespace

int main(int argc, char** argv) {
  PrintScrubOverhead();
  PrintScrubPassLatency();
  PrintDetectionSmoke();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
