// §3.3: improving near-interactive visualizations. Reproduces the
// section's quantitative claims:
//   * a simple kinematic model predicts the widget the user will interact
//     with in 200 ms at ~82% accuracy,
//   * progressively encoded (wavelet) tiles are renderable from any
//     prefix, with concave quality-vs-bytes curves, and
//   * bandwidth-bounded speculative streaming (rescheduled every 50 ms)
//     pushes request-response latencies from the near-interactive band
//     (150-700 ms) past the 100 ms interactivity threshold.

#include <cmath>
#include <cstdio>

#include "benchmark/benchmark.h"
#include "streaming/simulation.h"
#include "streaming/tiles.h"
#include "streaming/wavelet.h"
#include "workload/mouse.h"
#include "workload/tpch.h"

namespace {

using namespace dvms;

void PrintSection33() {
  std::printf("=== Section 3.3: speculative streaming ===\n\n");

  // 1. Predictor accuracy at several horizons.
  std::printf("widget predictor accuracy (synthetic pointing gestures, "
              "4x4 facet grid):\n");
  for (double horizon : {100.0, 200.0, 400.0}) {
    Rng rng(7);
    auto widgets = MakeWidgetGrid(4, 4, 20, 20, 140, 100, 16);
    MouseTraceConfig config;
    size_t correct = 0, total = 0;
    double cx = 10, cy = 10;
    for (int it = 0; it < 600; ++it) {
      size_t target = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(widgets.size()) - 1));
      MouseTrace trace =
          GenerateMouseTrace(widgets, target, cx, cy, config, &rng);
      IntentModel model(widgets);
      for (const MouseSample& s : trace.samples) {
        if (s.t_ms > trace.click_t_ms - horizon) break;
        model.Observe(s);
      }
      if (model.Top1(horizon) == target) ++correct;
      ++total;
      cx = trace.samples.back().x;
      cy = trace.samples.back().y;
    }
    std::printf("  horizon %3.0f ms: top-1 accuracy %.1f%%%s\n", horizon,
                100.0 * correct / total,
                horizon == 200.0 ? "   (paper reports 82% at 200 ms)" : "");
  }

  // 2. Progressive-encoding quality curve.
  std::printf("\nwavelet tile quality vs delivered prefix "
              "(256-value aggregate):\n");
  std::vector<double> payload;
  for (int i = 0; i < 256; ++i) {
    payload.push_back(50 + 20 * std::sin(i * 0.06) + 8 * std::sin(i * 0.23));
  }
  ProgressiveEncoding enc(payload);
  for (size_t k : {4ul, 8ul, 16ul, 32ul, 64ul, 128ul, 256ul}) {
    std::printf("  %4zu/%zu coeffs (%5.1f%% of bytes): quality %.3f\n", k,
                enc.num_coefficients(), 100.0 * k / enc.num_coefficients(),
                enc.PrefixQuality(k));
  }

  // 2b. The same property on real datacube slices (per-year monthly
  // revenue tiles from the TPC-H-shaped facts, via the crossfilter cube).
  {
    TpchConfig tpch;
    tpch.num_rows = 20000;
    Table fact = GenerateTpchSales(tpch);
    auto cube =
        CrossfilterCube::Build(fact, {"month", "year"}, "revenue").value();
    auto tiles = MakeTilesFromCube(cube, "month", "year").value();
    std::printf("\nreal datacube tiles (monthly revenue per year):\n");
    for (size_t t = 0; t < 2 && t < tiles.size(); ++t) {
      ProgressiveEncoding enc = EncodeTile(tiles[t]);
      std::printf("  %-10s quality after 1/4/8 of %zu coeffs: "
                  "%.2f / %.2f / %.2f\n",
                  tiles[t].id.c_str(), enc.num_coefficients(),
                  enc.PrefixQuality(1), enc.PrefixQuality(4),
                  enc.PrefixQuality(8));
    }
  }

  // 3. End-to-end latency comparison across bandwidths.
  std::printf("\nclient/server simulation (RTT 40 ms, 50 ms scheduler "
              "period, usable quality 0.9):\n");
  std::printf("  %12s | %14s | %22s | %10s | %8s\n", "bandwidth",
              "request-resp", "speculative (<100ms)", "quality@click",
              "top-1");
  for (double bw : {0.2, 0.6, 2.0}) {
    StreamingSimConfig config;
    config.bandwidth_coeffs_per_ms = bw;
    config.num_interactions = 200;
    StreamingSimResult r = SimulateStreaming(config);
    std::printf("  %7.1f KB/s | %11.0f ms | %8.1f ms (%5.1f%%) | %13.2f | %6.1f%%\n",
                bw * 8.0, r.mean_request_response_ms, r.mean_speculative_ms,
                100.0 * r.frac_speculative_under_100ms,
                r.mean_quality_at_click, 100.0 * r.top1_accuracy);
  }
  std::printf("\n");
}

void BM_IntentModelPredict(benchmark::State& state) {
  auto widgets = MakeWidgetGrid(4, 4, 20, 20, 140, 100, 16);
  IntentModel model(widgets);
  for (int i = 0; i < 6; ++i) model.Observe({i * 10.0, 10.0 + i * 8, 30.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.PredictWithin(200));
  }
}
BENCHMARK(BM_IntentModelPredict);

void BM_SchedulerTick(benchmark::State& state) {
  StreamScheduler scheduler(30);
  Rng rng(1);
  for (int i = 0; i < 16; ++i) {
    std::vector<double> payload;
    for (int k = 0; k < 256; ++k) payload.push_back(rng.Uniform(0, 100));
    ProgressiveEncoding enc(payload);
    StreamTile tile;
    tile.id = "t" + std::to_string(i);
    tile.utility = enc.UtilityCurve();
    scheduler.AddTile(std::move(tile));
  }
  for (auto _ : state) {
    auto sent = scheduler.TickDetailed().sent;
    if (sent.empty()) {
      state.PauseTiming();
      // All tiles drained: reinstall fresh ones.
      for (int i = 0; i < 16; ++i) {
        StreamTile tile;
        tile.id = "t" + std::to_string(i);
        tile.utility.assign(257, 0.0);
        for (int k = 0; k <= 256; ++k) tile.utility[k] = k / 256.0;
        scheduler.AddTile(std::move(tile));
      }
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_SchedulerTick);

void BM_HaarEncode256(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> payload;
  for (int i = 0; i < 256; ++i) payload.push_back(rng.Uniform(0, 100));
  for (auto _ : state) {
    benchmark::DoNotOptimize(HaarForward(payload));
  }
}
BENCHMARK(BM_HaarEncode256);

}  // namespace

int main(int argc, char** argv) {
  PrintSection33();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
