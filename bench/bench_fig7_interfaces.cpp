// Figure 7: original vs generated interfaces from the SkyServer query log.
// Sweeps the knapsack parameters (max_vis budget, penalty) and prints the
// synthesized widget sets — from a drastically simplified
// simplicity-preferring interface to a coverage-preferring one.

#include <cstdio>

#include "benchmark/benchmark.h"
#include "precision/interface_synth.h"
#include "workload/sdss.h"

namespace {

using namespace dvms;

TransformGraph BuildGraph() {
  SdssLogConfig config;
  config.num_sessions = 600;
  SdssLog log = GenerateSdssLog(config);
  return BuildTransformGraph(log.sessions, DefaultSdssRules());
}

void PrintFigure7() {
  std::printf("=== Figure 7: generated interfaces ===\n\n");
  TransformGraph graph = BuildGraph();
  std::printf("input: transformation graph with %zu edges\n\n",
              graph.edges.size());

  // The "original interface" reference point: every widget in the library
  // at once (the cluttered full SkyServer form).
  SynthesisConfig unlimited;
  unlimited.max_visual_complexity = 1e9;
  double full_vis = 0;
  for (const WidgetSpec& w : DefaultWidgetLibrary()) {
    full_vis += w.visual_complexity;
  }
  double full_objective =
      EvaluateInterface(graph, DefaultWidgetLibrary(), unlimited);
  std::printf("original (all %zu widgets): objective %.2f, visual "
              "complexity %.1f\n\n",
              DefaultWidgetLibrary().size(), full_objective, full_vis);

  std::printf("%8s %9s | %-52s %9s %9s\n", "max_vis", "penalty", "widgets",
              "objective", "coverage");
  for (double penalty : {10.0, 25.0}) {
    for (double max_vis : {2.0, 4.0, 6.0, 9.0, 12.0}) {
      SynthesisConfig config;
      config.penalty = penalty;
      config.max_visual_complexity = max_vis;
      SynthesizedInterface iface =
          SynthesizeInterface(graph, DefaultWidgetLibrary(), config);
      std::string names;
      for (const WidgetSpec& w : iface.widgets) {
        if (!names.empty()) names += " ";
        names += w.name;
      }
      if (names.empty()) names = "(empty)";
      std::printf("%8.1f %9.1f | %-52s %9.2f %8.1f%%\n", max_vis, penalty,
                  names.c_str(), iface.objective, 100.0 * iface.coverage);
    }
  }
  std::printf("\nreading: small budgets produce the simplicity-preferring "
              "interface of Fig. 7b;\nlarger budgets converge to the "
              "coverage-preferring interface of Fig. 7c, still far\nsimpler "
              "than the original form.\n\n");
}

void BM_SynthesizeInterface(benchmark::State& state) {
  TransformGraph graph = BuildGraph();
  SynthesisConfig config;
  config.max_visual_complexity = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SynthesizeInterface(graph, DefaultWidgetLibrary(), config));
  }
}
BENCHMARK(BM_SynthesizeInterface)->Arg(4)->Arg(12);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure7();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
