// Columnar storage and vectorized execution: the Figure 1 crossfilter
// chart queries over TPC-H-shaped data, executed twice through the same
// morsel-driven executor — once via the row-at-a-time interpreter
// (ExecOptions::vectorize = false, the pre-columnar baseline) and once via
// the typed column kernels. Results must be bit-identical; the vectorized
// path must clear a 2x speedup gate. The same binary compares snapshot
// encoding sizes: the columnar format (typed payloads + local dictionary)
// against the legacy row-wise format.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "benchmark/benchmark.h"
#include "common/thread_pool.h"
#include "durability/codec.h"
#include "parser/parser.h"
#include "parser/planner.h"
#include "query/binder.h"
#include "query/executor.h"
#include "storage/catalog.h"
#include "workload/tpch.h"

namespace {

using namespace dvms;
using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Appends one JSON object line to the file named by DVMS_BENCH_JSON (if
/// set); ci.sh collects these lines into BENCH_columnar.json.
void AppendBenchJson(const char* bench, double row_ms, double vec_ms,
                     bool identical, bool pass) {
  const char* path = std::getenv("DVMS_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fprintf(f,
               "{\"bench\": \"%s\", \"row_ms\": %.4f, \"vec_ms\": %.4f, "
               "\"speedup\": %.2f, \"identical\": %s, \"pass\": %s}\n",
               bench, row_ms, vec_ms, row_ms / vec_ms,
               identical ? "true" : "false", pass ? "true" : "false");
  std::fclose(f);
}

void AppendSnapshotJson(size_t columnar_bytes, size_t legacy_bytes,
                        bool pass) {
  const char* path = std::getenv("DVMS_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fprintf(f,
               "{\"bench\": \"snapshot_size\", \"columnar_bytes\": %zu, "
               "\"legacy_bytes\": %zu, \"reduction\": %.2f, \"pass\": %s}\n",
               columnar_bytes, legacy_bytes,
               1.0 - static_cast<double>(columnar_bytes) /
                         static_cast<double>(legacy_bytes),
               pass ? "true" : "false");
  std::fclose(f);
}

bool TablesEqual(const std::vector<Table>& a, const std::vector<Table>& b) {
  if (a.size() != b.size()) return false;
  for (size_t q = 0; q < a.size(); ++q) {
    if (a[q].num_rows() != b[q].num_rows()) return false;
    for (size_t i = 0; i < a[q].num_rows(); ++i) {
      const Row& ra = a[q].row(i);
      const Row& rb = b[q].row(i);
      if (ra.size() != rb.size()) return false;
      for (size_t c = 0; c < ra.size(); ++c) {
        if (ra[c].type() != rb[c].type()) return false;
        if (ra[c].Compare(rb[c]) != 0) return false;
      }
    }
  }
  return true;
}

/// The Figure 1 crossfilter charts as SQL: three filtered group-by-sum
/// views plus the ranked-detail sort, row path vs vectorized kernels.
void RunCrossfilterComparison() {
  std::printf("=== Columnar kernels vs row interpreter (Figure 1 charts) ===\n\n");
  TpchConfig config;
  config.num_rows = 50000;
  Table fact = GenerateTpchSales(config);
  Catalog catalog;
  UdfRegistry udfs = UdfRegistry::WithBuiltins();
  VersionedTable* table =
      catalog.CreateTable("Sales", fact.schema(), RelationKind::kBase).value();
  (void)table->SetCurrent(Table(fact));

  const char* queries[] = {
      "SELECT region, SUM(revenue) AS revenue FROM Sales "
      "WHERE year >= 1997 AND year <= 1998 GROUP BY region",
      "SELECT month, SUM(revenue) AS revenue FROM Sales "
      "WHERE year >= 1997 AND year <= 1998 GROUP BY month",
      "SELECT dow, SUM(revenue) AS revenue FROM Sales "
      "WHERE year >= 1997 AND year <= 1998 GROUP BY dow",
      "SELECT region, revenue FROM Sales ORDER BY revenue DESC",
  };
  std::vector<PlanPtr> plans;
  for (const char* sql : queries) {
    SelectStmt stmt = ParseSelect(sql).value();
    CatalogSchemaResolver resolver(&catalog);
    Planner planner(&resolver);
    PlanPtr plan = planner.PlanSelect(stmt).value();
    Binder binder(&resolver, &udfs);
    (void)binder.Bind(plan.get());
    plans.push_back(std::move(plan));
  }

  Executor exec(&catalog, &udfs);
  auto run_all = [&](bool vectorize) {
    std::vector<Table> out;
    for (const PlanPtr& plan : plans) {
      ExecOptions opts;
      opts.vectorize = vectorize;
      opts.num_threads = 1;
      out.push_back(std::move(exec.Execute(*plan, opts).value()->table));
    }
    return out;
  };

  // Warm both paths (row-view cache, dictionary) before timing.
  std::vector<Table> row_out = run_all(false);
  std::vector<Table> vec_out = run_all(true);
  bool identical = TablesEqual(row_out, vec_out);

  constexpr int kReps = 20;
  Clock::time_point t0 = Clock::now();
  for (int r = 0; r < kReps; ++r) benchmark::DoNotOptimize(run_all(false));
  double row_ms = MsSince(t0) / kReps;
  t0 = Clock::now();
  for (int r = 0; r < kReps; ++r) benchmark::DoNotOptimize(run_all(true));
  double vec_ms = MsSince(t0) / kReps;

  double speedup = row_ms / vec_ms;
  bool pass = identical && speedup >= 2.0;
  std::printf("4 chart queries over %zu rows: row path %.2f ms, "
              "vectorized %.2f ms (%.2fx), results %s\n\n",
              fact.num_rows(), row_ms, vec_ms, speedup,
              identical ? "identical" : "MISMATCH");
  AppendBenchJson("fig1_crossfilter_columnar", row_ms, vec_ms, identical,
                  pass);
}

/// Snapshot bytes for the same fact table, columnar vs legacy row format.
void RunSnapshotSizeComparison() {
  std::printf("=== Snapshot encoding: columnar vs legacy row format ===\n\n");
  TpchConfig config;
  config.num_rows = 50000;
  Table fact = GenerateTpchSales(config);

  BinaryWriter columnar;
  EncodeTable(fact, &columnar);
  BinaryWriter legacy;
  EncodeTableLegacy(fact, &legacy);

  // Decode sanity: the columnar bytes reproduce every row.
  BinaryReader r(columnar.data());
  auto decoded = DecodeTable(&r);
  bool roundtrip = decoded.ok() && decoded.value().SameContents(fact);

  bool pass = roundtrip && columnar.size() < legacy.size();
  std::printf("%zu rows: columnar %zu bytes, legacy %zu bytes "
              "(%.1f%% smaller), round-trip %s\n\n",
              fact.num_rows(), columnar.size(), legacy.size(),
              100.0 * (1.0 - static_cast<double>(columnar.size()) /
                                 static_cast<double>(legacy.size())),
              roundtrip ? "OK" : "MISMATCH");
  AppendSnapshotJson(columnar.size(), legacy.size(), pass);
}

void BM_VectorizedCrossfilterQuery(benchmark::State& state) {
  TpchConfig config;
  config.num_rows = static_cast<size_t>(state.range(0));
  Table fact = GenerateTpchSales(config);
  Catalog catalog;
  UdfRegistry udfs = UdfRegistry::WithBuiltins();
  VersionedTable* table =
      catalog.CreateTable("Sales", fact.schema(), RelationKind::kBase).value();
  (void)table->SetCurrent(Table(fact));
  SelectStmt stmt =
      ParseSelect(
          "SELECT region, SUM(revenue) AS revenue FROM Sales "
          "WHERE year >= 1997 AND year <= 1998 GROUP BY region")
          .value();
  CatalogSchemaResolver resolver(&catalog);
  Planner planner(&resolver);
  PlanPtr plan = planner.PlanSelect(stmt).value();
  Binder binder(&resolver, &udfs);
  (void)binder.Bind(plan.get());
  Executor exec(&catalog, &udfs);
  const bool vectorize = state.range(1) != 0;
  for (auto _ : state) {
    ExecOptions opts;
    opts.vectorize = vectorize;
    opts.num_threads = 1;
    benchmark::DoNotOptimize(exec.Execute(*plan, opts).value());
  }
}
BENCHMARK(BM_VectorizedCrossfilterQuery)
    ->Args({50000, 0})
    ->Args({50000, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  RunCrossfilterComparison();
  RunSnapshotSizeComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
