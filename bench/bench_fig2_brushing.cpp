// Figure 2: linked brushing end-to-end through the full DVMS engine —
// event recognition, view maintenance, versioned hit testing, and
// rasterization — with per-event latency as the dataset grows.

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "benchmark/benchmark.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/dvms.h"

namespace {

using namespace dvms;
using Clock = std::chrono::steady_clock;

const char* kProgram = R"(
  C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U
      RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
             (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);
  BBOX = SELECT x AS x0, y AS y0, x + dx AS x1, y + dy AS y1
    FROM C ORDER BY t DESC LIMIT 1;
  SPLOT_POINTS = SELECT 3 AS radius, 'gray' AS fill,
      linear_scale(Sales.revenue, 0, 100, 0, 400) AS center_x,
      linear_scale(Sales.profit, 0, 100, 0, 400) AS center_y,
      productId
    FROM Sales;
  selected = SELECT SP.productId AS productId
    FROM BBOX, SPLOT_POINTS@vnow-1 AS SP
    WHERE in_rectangle(SP.center_x, SP.center_y,
                       BBOX.x0, BBOX.y0, BBOX.x1, BBOX.y1);
  SPLOT_POINTS = SELECT 3 AS radius, 'gray' AS fill,
      linear_scale(Sales.revenue, 0, 100, 0, 400) AS center_x,
      linear_scale(Sales.profit, 0, 100, 0, 400) AS center_y,
      productId
    FROM Sales WHERE productId NOT IN selected
    UNION SELECT 3 AS radius, 'red' AS fill,
      linear_scale(Sales.revenue, 0, 100, 0, 400) AS center_x,
      linear_scale(Sales.profit, 0, 100, 0, 400) AS center_y,
      productId
    FROM Sales WHERE productId IN selected;
  P = render(SELECT * FROM SPLOT_POINTS);
)";

std::unique_ptr<Dvms> MakeEngine(size_t points, bool auto_render,
                                 size_t num_threads = 0) {
  Dvms::Options options;
  options.canvas_width = 400;
  options.canvas_height = 400;
  options.auto_render = auto_render;
  options.num_threads = num_threads;
  auto engine = std::make_unique<Dvms>(options);
  (void)engine->CreateBaseTable("Sales",
                                Schema({{"productId", ValueType::kInt64},
                                        {"profit", ValueType::kDouble},
                                        {"revenue", ValueType::kDouble}}));
  Rng rng(11);
  std::vector<Row> rows;
  for (size_t i = 0; i < points; ++i) {
    rows.push_back({Value::Int(static_cast<int64_t>(i)),
                    Value::Double(rng.Uniform(0, 100)),
                    Value::Double(rng.Uniform(0, 100))});
  }
  (void)engine->Insert("Sales", rows);
  if (!engine->LoadProgram(kProgram).ok()) return nullptr;
  return engine;
}

void PrintFigure2() {
  std::printf("=== Figure 2: linked brushing through the full engine ===\n\n");
  // Correctness of the three steps at a readable size.
  {
    auto engine = MakeEngine(200, /*auto_render=*/true);
    if (engine == nullptr) {
      std::printf("program failed to load\n");
      return;
    }
    (void)engine->PushEvent(InputEvent::MouseDown(0, 50, 50));
    (void)engine->PushEvent(InputEvent::MouseMove(1, 200, 200));
    size_t selected = engine->GetTable("selected").value()->num_rows();
    std::printf("step 1: brush (50,50)-(200,200) selects %zu of 200 points\n",
                selected);
    (void)engine->PushEvent(InputEvent::MouseDown(2, 51, 51));  // reject
    std::printf("step 2: rollback clears the selection (%zu selected, "
                "%zu aborts)\n\n",
                engine->GetTable("selected").value()->num_rows(),
                engine->stats().transactions_aborted);
  }

  std::printf("per-event latency during a 20-move drag "
              "(maintenance + render):\n");
  std::printf("%10s %16s %16s\n", "points", "with render", "without render");
  for (size_t points : {100ul, 1000ul, 5000ul, 20000ul}) {
    double with_render = 0, without_render = 0;
    for (int mode = 0; mode < 2; ++mode) {
      auto engine = MakeEngine(points, mode == 0);
      Clock::time_point t0 = Clock::now();
      (void)engine->PushEvent(InputEvent::MouseDown(0, 10, 10));
      for (int m = 1; m <= 20; ++m) {
        (void)engine->PushEvent(
            InputEvent::MouseMove(m, 10.0 + m * 15, 10.0 + m * 15));
      }
      (void)engine->PushEvent(InputEvent::MouseUp(21, 310, 310));
      double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count() /
          22.0;
      if (mode == 0) {
        with_render = ms;
      } else {
        without_render = ms;
      }
    }
    std::printf("%10zu %13.2f ms %13.2f ms\n", points, with_render,
                without_render);
  }
  std::printf("\n");
}

/// Appends one JSON object line to the file named by DVMS_BENCH_JSON (if
/// set); ci.sh collects these lines into BENCH_parallel.json.
void AppendBenchJson(const char* bench, double serial_ms, double parallel_ms,
                     bool identical) {
  const char* path = std::getenv("DVMS_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fprintf(f,
               "{\"bench\": \"%s\", \"threads\": 4, \"serial_ms\": %.4f, "
               "\"parallel_ms\": %.4f, \"speedup\": %.2f, "
               "\"identical\": %s}\n",
               bench, serial_ms, parallel_ms, serial_ms / parallel_ms,
               identical ? "true" : "false");
  std::fclose(f);
}

/// The same 20-move drag through two engines: fully serial vs a dedicated
/// 4-thread pool (morsel-parallel maintenance + band-parallel render).
/// Final pixels must match bit for bit.
void PrintParallelComparison() {
  std::printf("=== Engine parallelism: serial vs 4 threads ===\n\n");
  constexpr size_t kPoints = 20000;
  auto drive = [](Dvms* engine) {
    Clock::time_point t0 = Clock::now();
    (void)engine->PushEvent(InputEvent::MouseDown(0, 10, 10));
    for (int m = 1; m <= 20; ++m) {
      (void)engine->PushEvent(
          InputEvent::MouseMove(m, 10.0 + m * 15, 10.0 + m * 15));
    }
    (void)engine->PushEvent(InputEvent::MouseUp(21, 310, 310));
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
               .count() /
           22.0;
  };
  auto serial = MakeEngine(kPoints, /*auto_render=*/true, /*num_threads=*/1);
  auto parallel = MakeEngine(kPoints, /*auto_render=*/true, /*num_threads=*/4);
  double serial_ms = drive(serial.get());
  double parallel_ms = drive(parallel.get());
  bool identical = true;
  const PixelBuffer& a = serial->pixels();
  const PixelBuffer& b = parallel->pixels();
  for (size_t y = 0; identical && y < a.height(); ++y) {
    for (size_t x = 0; identical && x < a.width(); ++x) {
      identical = a.At(static_cast<int64_t>(x), static_cast<int64_t>(y)) ==
                  b.At(static_cast<int64_t>(x), static_cast<int64_t>(y));
    }
  }
  std::printf("per-event latency, %zu points: serial %.2f ms, 4 threads "
              "%.2f ms (%.2fx, %zu hw cores), pixels %s\n\n",
              kPoints, serial_ms, parallel_ms, serial_ms / parallel_ms,
              ThreadPool::DefaultThreadCount(),
              identical ? "identical" : "MISMATCH");
  AppendBenchJson("fig2_brushing_drag", serial_ms, parallel_ms, identical);
}

void BM_BrushMoveEvent(benchmark::State& state) {
  auto engine = MakeEngine(static_cast<size_t>(state.range(0)),
                           /*auto_render=*/false);
  (void)engine->PushEvent(InputEvent::MouseDown(0, 10, 10));
  int64_t t = 1;
  double x = 11;
  for (auto _ : state) {
    (void)engine->PushEvent(InputEvent::MouseMove(t++, x, x));
    x = x < 390 ? x + 1 : 11;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BrushMoveEvent)->Arg(1000)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure2();
  PrintParallelComparison();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
