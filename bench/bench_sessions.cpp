// Session read throughput, serial vs concurrent: the same fixed number of
// snapshot-isolated SELECTs executed by (a) one session on one thread and
// (b) 2/4/8 sessions on as many threads, against an engine whose intra-
// query pool is pinned to 1 worker so inter-session concurrency is the
// only variable. With the read path lock-free w.r.t. other readers, a
// multi-core host should scale; the BENCH_sessions.json gate is the
// 1-core-safe no-regression form — the best concurrent throughput must be
// >= 85% of serial — with the full scalability shape recorded per thread
// count. A writer-interference section measures read throughput while a
// background thread commits continuously (readers must keep completing —
// they never wait on the write mutex).

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "benchmark/benchmark.h"
#include "common/rng.h"
#include "core/dvms.h"
#include "core/session.h"

namespace {

using namespace dvms;
using Clock = std::chrono::steady_clock;

constexpr size_t kPoints = 20000;
constexpr int kTotalReads = 400;
const char* kReadQuery =
    "SELECT productId, revenue FROM Sales "
    "WHERE revenue < 50 ORDER BY revenue LIMIT 64";

std::unique_ptr<Dvms> MakeEngine() {
  Dvms::Options options;
  options.canvas_width = 400;
  options.canvas_height = 400;
  options.num_threads = 1;  // no intra-query parallelism: isolate sessions
  auto engine = std::make_unique<Dvms>(options);
  (void)engine->CreateBaseTable("Sales",
                                Schema({{"productId", ValueType::kInt64},
                                        {"profit", ValueType::kDouble},
                                        {"revenue", ValueType::kDouble}}));
  Rng rng(11);
  std::vector<Row> rows;
  for (size_t i = 0; i < kPoints; ++i) {
    rows.push_back({Value::Int(static_cast<int64_t>(i)),
                    Value::Double(rng.Uniform(0, 100)),
                    Value::Double(rng.Uniform(0, 100))});
  }
  (void)engine->Insert("Sales", rows);
  return engine;
}

void AppendJsonLine(const char* fmt, ...) {
  const char* path = std::getenv("DVMS_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  va_list args;
  va_start(args, fmt);
  std::vfprintf(f, fmt, args);
  va_end(args);
  std::fputc('\n', f);
  std::fclose(f);
}

/// Runs kTotalReads session queries split over `threads` sessions; returns
/// queries per second (0 on any failed read).
double ReadQps(Dvms* engine, int threads) {
  std::atomic<bool> ok{true};
  const int per_thread = kTotalReads / threads;
  Clock::time_point t0 = Clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([engine, per_thread, &ok] {
      Session session(engine);
      for (int i = 0; i < per_thread; ++i) {
        if (!session.Query(kReadQuery).ok()) {
          ok.store(false);
          return;
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  double sec = std::chrono::duration<double>(Clock::now() - t0).count();
  if (!ok.load() || sec <= 0) return 0;
  return static_cast<double>(per_thread * threads) / sec;
}

void PrintSerialVsConcurrent() {
  std::printf("=== Session reads: serial vs concurrent ===\n\n");
  auto engine = MakeEngine();
  (void)ReadQps(engine.get(), 1);  // warmup
  const double serial_qps = ReadQps(engine.get(), 1);
  double best_qps = 0;
  double qps_at[9] = {0};
  for (int threads : {2, 4, 8}) {
    qps_at[threads] = ReadQps(engine.get(), threads);
    if (qps_at[threads] > best_qps) best_qps = qps_at[threads];
  }
  // 1-core hosts cannot speed up; the gate is no-regression. Multi-core
  // scalability is recorded in the per-thread-count shape.
  const bool pass = best_qps >= serial_qps * 0.85;
  std::printf("%zu rows, %d reads total, engine pool pinned to 1 worker:\n",
              kPoints, kTotalReads);
  std::printf("  serial (1 session):    %10.0f q/s\n", serial_qps);
  for (int threads : {2, 4, 8}) {
    std::printf("  concurrent x%d:         %10.0f q/s  (%.2fx)\n", threads,
                qps_at[threads], qps_at[threads] / serial_qps);
  }
  std::printf("  gate: best concurrent >= 85%% of serial -> %s\n\n",
              pass ? "OK" : "REGRESSED");
  AppendJsonLine(
      "{\"bench\": \"sessions_concurrent_reads\", \"rows\": %zu, "
      "\"reads\": %d, \"serial_qps\": %.1f, \"qps_t2\": %.1f, "
      "\"qps_t4\": %.1f, \"qps_t8\": %.1f, \"best_speedup\": %.2f, "
      "\"pass\": %s}",
      kPoints, kTotalReads, serial_qps, qps_at[2], qps_at[4], qps_at[8],
      best_qps / serial_qps, pass ? "true" : "false");
}

/// Read throughput while a writer commits continuously: sessions never
/// wait on the write mutex, so reads keep completing at a useful rate and
/// every one sees a fully-committed epoch.
void PrintWriterInterference() {
  std::printf("=== Session reads under a continuous writer ===\n\n");
  auto engine = MakeEngine();
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int64_t id = 1'000'000;
    while (!stop.load()) {
      (void)engine->Insert("Sales", {{Value::Int(id++), Value::Double(1),
                                      Value::Double(1)}});
    }
  });
  const double qps = ReadQps(engine.get(), 4);
  stop.store(true);
  writer.join();
  const bool pass = qps > 0;
  std::printf("4 reader sessions vs 1 committing writer:\n");
  std::printf("  reads: %10.0f q/s (%s)\n\n", qps,
              pass ? "all snapshot-consistent" : "READS FAILED");
  AppendJsonLine(
      "{\"bench\": \"sessions_writer_interference\", "
      "\"reader_qps\": %.1f, \"pass\": %s}",
      qps, pass ? "true" : "false");
}

void BM_SessionQuery(benchmark::State& state) {
  auto engine = MakeEngine();
  Session session(engine.get());
  for (auto _ : state) {
    auto result = session.Query(kReadQuery);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SessionQuery);

}  // namespace

int main(int argc, char** argv) {
  PrintSerialVsConcurrent();
  PrintWriterInterference();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
