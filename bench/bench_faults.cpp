// Fault-injection cost and survival: (1) the undo-log overhead of
// transactional interaction rollback on a fault-free figure-1/figure-2
// interaction workload — the budget is < 10% over the rollback-disabled
// engine — and (2) a chaos survival run showing the engine converging to
// the bit-identical fault-free state under injected faults with bounded
// per-op retry.

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "benchmark/benchmark.h"
#include "common/fault.h"
#include "common/rng.h"
#include "core/dvms.h"

namespace {

using namespace dvms;
using Clock = std::chrono::steady_clock;

// The figure-2 linked-brushing program: event recognition, a versioned
// hit test, view maintenance over the scatterplot, and rasterization.
const char* kProgram = R"(
  C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U
      RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
             (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);
  BBOX = SELECT x AS x0, y AS y0, x + dx AS x1, y + dy AS y1
    FROM C ORDER BY t DESC LIMIT 1;
  SPLOT_POINTS = SELECT 3 AS radius, 'gray' AS fill,
      linear_scale(Sales.revenue, 0, 100, 0, 400) AS center_x,
      linear_scale(Sales.profit, 0, 100, 0, 400) AS center_y,
      productId
    FROM Sales;
  selected = SELECT SP.productId AS productId
    FROM BBOX, SPLOT_POINTS@vnow-1 AS SP
    WHERE in_rectangle(SP.center_x, SP.center_y,
                       BBOX.x0, BBOX.y0, BBOX.x1, BBOX.y1);
  P = render(SELECT * FROM SPLOT_POINTS);
)";

std::unique_ptr<Dvms> MakeEngine(size_t points, bool transactional,
                                 size_t num_threads = 1) {
  Dvms::Options options;
  options.canvas_width = 400;
  options.canvas_height = 400;
  options.num_threads = num_threads;
  options.transactional_rollback = transactional;
  auto engine = std::make_unique<Dvms>(options);
  (void)engine->CreateBaseTable("Sales",
                                Schema({{"productId", ValueType::kInt64},
                                        {"profit", ValueType::kDouble},
                                        {"revenue", ValueType::kDouble}}));
  Rng rng(11);
  std::vector<Row> rows;
  for (size_t i = 0; i < points; ++i) {
    rows.push_back({Value::Int(static_cast<int64_t>(i)),
                    Value::Double(rng.Uniform(0, 100)),
                    Value::Double(rng.Uniform(0, 100))});
  }
  (void)engine->Insert("Sales", rows);
  if (!engine->LoadProgram(kProgram).ok()) return nullptr;
  return engine;
}

/// One fig2-style interaction: a 20-move drag plus a mid-session insert.
double DriveWorkloadMs(Dvms* engine, int64_t t_base) {
  Clock::time_point t0 = Clock::now();
  (void)engine->PushEvent(InputEvent::MouseDown(t_base, 10, 10));
  for (int m = 1; m <= 20; ++m) {
    (void)engine->PushEvent(
        InputEvent::MouseMove(t_base + m, 10.0 + m * 15, 10.0 + m * 15));
  }
  (void)engine->PushEvent(InputEvent::MouseUp(t_base + 21, 310, 310));
  (void)engine->Insert(
      "Sales", {{Value::Int(t_base + 1000000), Value::Double(50),
                 Value::Double(50)}});
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

void AppendJsonLine(const char* fmt, ...) {
  const char* path = std::getenv("DVMS_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  va_list args;
  va_start(args, fmt);
  std::vfprintf(f, fmt, args);
  va_end(args);
  std::fputc('\n', f);
  std::fclose(f);
}

/// Undo-log overhead on the fault-free path: the transactional engine must
/// stay within 10% of the rollback-disabled engine on the same workload.
void PrintUndoLogOverhead() {
  std::printf("=== Undo-log overhead (fault-free fig2 workload) ===\n\n");
  constexpr size_t kPoints = 20000;
  constexpr int kRounds = 5;

  double baseline_ms = 0, transactional_ms = 0;
  // Interleave measurements so thermal / allocator drift hits both arms.
  for (int mode = 0; mode < 2; ++mode) {
    const bool transactional = mode == 1;
    auto engine = MakeEngine(kPoints, transactional);
    if (engine == nullptr) {
      std::printf("program failed to load\n");
      return;
    }
    (void)DriveWorkloadMs(engine.get(), 0);  // warmup
    double best = 0;
    for (int round = 0; round < kRounds; ++round) {
      double ms = DriveWorkloadMs(engine.get(), (round + 1) * 100);
      if (best == 0 || ms < best) best = ms;
    }
    (transactional ? transactional_ms : baseline_ms) = best;
  }

  double overhead_pct =
      (transactional_ms - baseline_ms) / baseline_ms * 100.0;
  bool within_budget = overhead_pct < 10.0;
  std::printf("%zu points, 22-event drag + insert, best of %d rounds:\n",
              kPoints, kRounds);
  std::printf("  rollback off: %8.2f ms\n", baseline_ms);
  std::printf("  rollback on:  %8.2f ms\n", transactional_ms);
  std::printf("  overhead:     %8.2f %%  (budget < 10%%) -> %s\n\n",
              overhead_pct, within_budget ? "OK" : "OVER BUDGET");
  AppendJsonLine(
      "{\"bench\": \"faults_undo_log_overhead\", \"points\": %zu, "
      "\"baseline_ms\": %.4f, \"transactional_ms\": %.4f, "
      "\"overhead_pct\": %.2f, \"within_budget\": %s}",
      kPoints, baseline_ms, transactional_ms, overhead_pct,
      within_budget ? "true" : "false");
}

/// Chaos survival: replay the workload under a 2% fault rate with bounded
/// per-op retry; the final pixels must match the fault-free engine's.
void PrintChaosSurvival() {
  std::printf("=== Chaos survival (2%% faults, bounded retry) ===\n\n");
  constexpr size_t kPoints = 5000;

  auto clean = MakeEngine(kPoints, /*transactional=*/true);
  if (clean == nullptr) return;
  (void)DriveWorkloadMs(clean.get(), 0);

  auto chaotic = MakeEngine(kPoints, /*transactional=*/true);
  FaultConfig config;
  config.seed = 2024;
  config.rate = 0.02;
  size_t rollbacks = 0, retried_ops = 0;
  {
    ScopedFaultInjector scoped(config);
    std::vector<InputEvent> trace;
    trace.push_back(InputEvent::MouseDown(0, 10, 10));
    for (int m = 1; m <= 20; ++m) {
      trace.push_back(
          InputEvent::MouseMove(m, 10.0 + m * 15, 10.0 + m * 15));
    }
    trace.push_back(InputEvent::MouseUp(21, 310, 310));
    for (const InputEvent& e : trace) {
      bool landed = false;
      for (int attempt = 0; attempt < 50 && !landed; ++attempt) {
        if (attempt == 1) ++retried_ops;
        landed = chaotic->PushEvent(e).ok();
      }
      if (!landed) {
        std::printf("op never landed within the retry bound\n");
        return;
      }
    }
    bool inserted = false;
    for (int attempt = 0; attempt < 50 && !inserted; ++attempt) {
      inserted = chaotic
                     ->Insert("Sales", {{Value::Int(1000000),
                                         Value::Double(50),
                                         Value::Double(50)}})
                     .ok();
    }
    rollbacks = chaotic->stats().interactions_rolled_back;
  }

  bool identical = chaotic->pixels().Equals(clean->pixels());
  std::printf("23 ops, %zu rolled back (%zu ops needed a retry); final "
              "pixels %s the fault-free run\n\n",
              rollbacks, retried_ops,
              identical ? "IDENTICAL to" : "DIVERGED from");
  AppendJsonLine(
      "{\"bench\": \"faults_chaos_survival\", \"points\": %zu, "
      "\"rollbacks\": %zu, \"identical\": %s}",
      kPoints, rollbacks, identical ? "true" : "false");
}

void BM_PushEventTransactional(benchmark::State& state) {
  auto engine = MakeEngine(static_cast<size_t>(state.range(0)),
                           /*transactional=*/state.range(1) != 0);
  (void)engine->PushEvent(InputEvent::MouseDown(0, 10, 10));
  int64_t t = 1;
  double x = 11;
  for (auto _ : state) {
    (void)engine->PushEvent(InputEvent::MouseMove(t++, x, x));
    x = x < 390 ? x + 1 : 11;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PushEventTransactional)
    ->Args({10000, 0})
    ->Args({10000, 1});

}  // namespace

int main(int argc, char** argv) {
  PrintUndoLogOverhead();
  PrintChaosSurvival();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
