// Replication cost model: how fast a replica applies a primary's committed
// WAL (vs the primary's own commit rate), the steady-state lag while both
// run, how long failover promotion takes, and whether injected tailer
// faults cost anything beyond lag. Gates are 1-core-safe: the replica must
// converge to the primary's final LSN (lag 0 after quiesce), promotion must
// yield a writable engine, and rate-0.2 replication faults must only slow
// the tail, never break convergence. The google-benchmark section measures
// the caught-up poll — the idle cost a replica pays per cadence tick.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "benchmark/benchmark.h"
#include "common/fault.h"
#include "common/rng.h"
#include "core/dvms.h"
#include "durability/tailer.h"
#include "durability/wal.h"

namespace {

using namespace dvms;
using Clock = std::chrono::steady_clock;
namespace fs = std::filesystem;

constexpr int kFrames = 400;  // committed ops per section

/// A fresh directory under the system temp root, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static int counter = 0;
    path_ = fs::temp_directory_path() /
            ("dvms_bench_repl_" + tag + "_" + std::to_string(::getpid()) +
             "_" + std::to_string(counter++));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

Dvms::Options PrimaryOptions(const std::string& dir) {
  Dvms::Options options;
  options.canvas_width = 100;
  options.canvas_height = 100;
  options.num_threads = 1;
  options.data_dir = dir;
  options.wal_fsync = "batch";  // group commit: realistic commit rate
  options.snapshot_interval = 128;
  return options;
}

Dvms::Options ReplicaOptions(const std::string& dir) {
  Dvms::Options options;
  options.canvas_width = 100;
  options.canvas_height = 100;
  options.num_threads = 1;
  options.replica_of = dir;
  options.replica_poll_ms = 1;
  return options;
}

std::unique_ptr<Dvms> MakePrimary(const std::string& dir) {
  auto engine = std::make_unique<Dvms>(PrimaryOptions(dir));
  (void)engine->CreateBaseTable("Sales",
                                Schema({{"productId", ValueType::kInt64},
                                        {"profit", ValueType::kDouble},
                                        {"revenue", ValueType::kDouble}}));
  return engine;
}

/// Commits `frames` single-row inserts and returns the commit rate in
/// frames/s (0 on any failure).
double DriveCommits(Dvms* primary, int frames, int64_t id_base) {
  Rng rng(17);
  Clock::time_point t0 = Clock::now();
  for (int i = 0; i < frames; ++i) {
    Status st = primary->Insert(
        "Sales", {{Value::Int(id_base + i), Value::Double(rng.Uniform(0, 100)),
                   Value::Double(rng.Uniform(0, 100))}});
    if (!st.ok()) return 0;
  }
  if (!primary->FlushWal().ok()) return 0;
  double sec = std::chrono::duration<double>(Clock::now() - t0).count();
  return sec > 0 ? frames / sec : 0;
}

void AppendJsonLine(const char* fmt, ...) {
  const char* path = std::getenv("DVMS_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  va_list args;
  va_start(args, fmt);
  std::vfprintf(f, fmt, args);
  va_end(args);
  std::fputc('\n', f);
  std::fclose(f);
}

/// Primary commits kFrames while the replica tails live; then the primary
/// quiesces and we time the replica draining to lag 0.
void PrintTailThroughput() {
  std::printf("=== Replication: tail throughput and steady-state lag ===\n\n");
  TempDir dir("tail");
  auto primary = MakePrimary(dir.str());
  auto replica = std::make_unique<Dvms>(ReplicaOptions(dir.str()));

  uint64_t max_live_lag = 0;
  std::atomic<bool> done{false};
  std::thread lag_probe([&] {
    // Sample live lag from the replica's own system relation while the
    // primary commits — the observability the operator would watch.
    while (!done.load()) {
      Dvms::ReplicationStats s = replica->replication_stats();
      if (s.lag_frames > max_live_lag) max_live_lag = s.lag_frames;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  const double primary_fps = DriveCommits(primary.get(), kFrames, 1000);
  done.store(true);
  lag_probe.join();

  const uint64_t target = primary->wal_lsn();
  Clock::time_point t0 = Clock::now();
  const uint64_t applied = replica->WaitForReplicaLsn(target, 60000);
  const double catchup_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  Dvms::ReplicationStats stats = replica->replication_stats();
  const double replica_fps =
      stats.frames_applied > 0 && primary_fps > 0
          ? static_cast<double>(stats.frames_applied) /
                (kFrames / primary_fps + catchup_ms / 1000.0)
          : 0;
  const bool pass =
      primary_fps > 0 && applied >= target && stats.lag_frames == 0;

  std::printf("%d committed frames (fsync=batch), replica polling at 1ms:\n",
              kFrames);
  std::printf("  primary commit rate:   %10.0f frames/s\n", primary_fps);
  std::printf("  replica apply rate:    %10.0f frames/s (%" PRIu64
              " frames via tail)\n",
              replica_fps, stats.frames_applied);
  std::printf("  max lag while live:    %10" PRIu64 " frames\n", max_live_lag);
  std::printf("  drain after quiesce:   %10.1f ms\n", catchup_ms);
  std::printf("  final lag:             %10" PRIu64 " frames -> %s\n\n",
              stats.lag_frames, pass ? "OK" : "DIVERGED");
  AppendJsonLine(
      "{\"bench\": \"replication_tail_throughput\", \"frames\": %d, "
      "\"primary_fps\": %.1f, \"replica_fps\": %.1f, \"max_live_lag\": %llu, "
      "\"catchup_ms\": %.1f, \"final_lag\": %llu, \"pass\": %s}",
      kFrames, primary_fps, replica_fps,
      static_cast<unsigned long long>(max_live_lag), catchup_ms,
      static_cast<unsigned long long>(stats.lag_frames),
      pass ? "true" : "false");
}

/// Failover: primary gone, replica promotes. Times the whole takeover —
/// seal the tail, re-open the log for append, re-render — and proves the
/// promoted engine accepts writes.
void PrintPromotionTime() {
  std::printf("=== Replication: failover promotion ===\n\n");
  TempDir dir("promote");
  uint64_t target = 0;
  {
    auto primary = MakePrimary(dir.str());
    if (DriveCommits(primary.get(), kFrames, 2000) == 0) return;
    target = primary->wal_lsn();
  }  // primary destroyed: simulated failure

  auto replica = std::make_unique<Dvms>(ReplicaOptions(dir.str()));
  replica->WaitForReplicaLsn(target, 60000);
  Clock::time_point t0 = Clock::now();
  Status promoted = replica->Promote();
  const double promote_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  const bool writable =
      promoted.ok() &&
      replica
          ->Insert("Sales",
                   {{Value::Int(1), Value::Double(1), Value::Double(1)}})
          .ok();
  const bool pass = promoted.ok() && writable;
  std::printf("replica at lsn %" PRIu64 ", primary dead:\n", target);
  std::printf("  promotion:             %10.1f ms\n", promote_ms);
  std::printf("  accepts writes:        %10s\n\n", pass ? "yes" : "NO");
  AppendJsonLine(
      "{\"bench\": \"replication_promotion\", \"frames\": %d, "
      "\"promote_ms\": %.1f, \"writable\": %s, \"pass\": %s}",
      kFrames, promote_ms, writable ? "true" : "false",
      pass ? "true" : "false");
}

/// Transient tailer faults (rate 0.2 at the replication site) cost lag and
/// retries only: the replica still converges to the identical LSN.
void PrintFaultedTail() {
  std::printf("=== Replication: tailing under injected faults ===\n\n");
  TempDir dir("faulted");
  auto primary = MakePrimary(dir.str());
  auto replica = std::make_unique<Dvms>(ReplicaOptions(dir.str()));

  uint64_t target = 0;
  uint64_t applied = 0;
  uint64_t poll_errors = 0;
  {
    FaultConfig config;
    config.seed = 20260808;
    config.rate = 0.2;
    config.site_mask = 1u << static_cast<uint32_t>(FaultSite::kReplication);
    ScopedFaultInjector faults(config);
    if (DriveCommits(primary.get(), kFrames, 3000) == 0) return;
    target = primary->wal_lsn();
    applied = replica->WaitForReplicaLsn(target, 60000);
    poll_errors = replica->replication_stats().poll_errors;
  }
  const bool converged = applied >= target;
  const bool pass = converged;  // faults may only slow the tail, not stop it
  std::printf("%d frames with 20%% of tailer reads failing:\n", kFrames);
  std::printf("  poll errors absorbed:  %10llu\n",
              static_cast<unsigned long long>(poll_errors));
  std::printf("  converged to lsn %" PRIu64 ":  %10s\n\n", target,
              pass ? "yes" : "NO");
  AppendJsonLine(
      "{\"bench\": \"replication_faulted_tail\", \"frames\": %d, "
      "\"fault_rate\": 0.2, \"poll_errors\": %llu, \"converged\": %s, "
      "\"pass\": %s}",
      kFrames, static_cast<unsigned long long>(poll_errors),
      converged ? "true" : "false", pass ? "true" : "false");
}

/// The per-tick cost of a caught-up replica: one Poll() that finds nothing.
void BM_CaughtUpPoll(benchmark::State& state) {
  TempDir dir("poll");
  {
    auto primary = MakePrimary(dir.str());
    (void)DriveCommits(primary.get(), 64, 4000);
  }
  RecoveredLog log = ReadLogReadOnly(dir.str()).value();
  uint64_t end = log.has_snapshot ? log.snapshot_lsn : 0;
  if (!log.frames.empty()) end = log.frames.back().lsn;
  WalTailer tailer(dir.str(), end);
  for (auto _ : state) {
    auto polled = tailer.Poll();
    benchmark::DoNotOptimize(polled);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CaughtUpPoll);

}  // namespace

int main(int argc, char** argv) {
  PrintTailThroughput();
  PrintPromotionTime();
  PrintFaultedTail();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
